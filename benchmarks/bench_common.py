"""Shared helpers for the experiment benchmarks.

Every ``bench_eXX_*.py`` file regenerates one experiment of EXPERIMENTS.md.
The helpers here keep the individual files small: build the column, build the
workload, run a set of strategies through the adaptive-indexing benchmark
harness, and print the rows/series the experiment reports.

Scale knobs
-----------
The default sizes keep ``pytest benchmarks/ --benchmark-only`` at a few
minutes.  Set the environment variable ``REPRO_BENCH_SCALE`` to a float to
scale the column sizes and query counts up (e.g. ``REPRO_BENCH_SCALE=8`` for
paper-like sizes) or down.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.benchmark import AdaptiveIndexingBenchmark, BenchmarkResult
from repro.workloads.generators import (
    RangeQuery,
    WorkloadSpec,
    generate_column_data,
)

#: scale factor applied to column sizes and query counts
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: default column size (rows) for the single-column experiments
COLUMN_SIZE = int(100_000 * SCALE)

#: default number of queries per workload
QUERY_COUNT = max(50, int(500 * SCALE))

#: key domain shared by column data and workloads
DOMAIN_HIGH = 1_000_000.0

#: the strategy set most experiments compare
CORE_STRATEGIES = ["scan", "sort-first", "full-index", "cracking", "adaptive-merging"]

#: the full adaptive family for the hybrid experiments
HYBRID_STRATEGIES = [
    "cracking",
    "adaptive-merging",
    "hybrid-crack-crack",
    "hybrid-crack-sort",
    "hybrid-crack-radix",
    "hybrid-sort-sort",
    "hybrid-radix-radix",
]


def make_column(size: int = None, distribution: str = "uniform", seed: int = 0) -> np.ndarray:
    """Base column used by the single-column experiments."""
    return generate_column_data(
        size or COLUMN_SIZE, 0, DOMAIN_HIGH, distribution=distribution, seed=seed
    )


def make_spec(
    query_count: int = None,
    selectivity: float = 0.01,
    seed: int = 1,
) -> WorkloadSpec:
    """Workload specification over the shared key domain."""
    return WorkloadSpec(
        domain_low=0.0,
        domain_high=DOMAIN_HIGH,
        query_count=query_count or QUERY_COUNT,
        selectivity=selectivity,
        seed=seed,
    )


def run_comparison(
    values: np.ndarray,
    queries: Sequence[RangeQuery],
    strategies: Iterable[str],
    options: Optional[Dict[str, dict]] = None,
    cost_model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
) -> BenchmarkResult:
    """Run ``strategies`` over the workload and return the benchmark result."""
    harness = AdaptiveIndexingBenchmark(values, queries, cost_model=cost_model)
    return harness.run(strategies, options=options)


def print_summary(title: str, result: BenchmarkResult) -> None:
    """Print the per-strategy summary table of one experiment."""
    print(f"\n=== {title} ===")
    print(
        f"column size = {result.column_size}, queries = {result.query_count}, "
        f"scan cost = {result.scan_cost:.0f}, full-index cost = {result.full_index_cost:.0f}"
    )
    header = (
        f"{'strategy':24s} {'first-query/scan':>16s} {'converged@':>11s} "
        f"{'total cost':>14s} {'total seconds':>14s} {'aux bytes':>12s}"
    )
    print(header)
    print("-" * len(header))
    for row in result.summary_table():
        converged = row["convergence_query"]
        print(
            f"{row['strategy']:24s} "
            f"{row['first_query_overhead_vs_scan']:>16.2f} "
            f"{str(converged if converged is not None else '-'):>11s} "
            f"{row['total_logical_cost']:>14.0f} "
            f"{row['total_seconds']:>14.4f} "
            f"{row['auxiliary_bytes']:>12d}"
        )


def print_series(
    title: str,
    series: Dict[str, List[float]],
    sample_points: Sequence[int] = (0, 1, 2, 5, 10, 20, 50, 100, 200, 499, 999),
) -> None:
    """Print per-query (or cumulative) cost series sampled at a few query indexes."""
    print(f"\n--- {title} ---")
    names = sorted(series)
    length = min(len(values) for values in series.values())
    points = [p for p in sample_points if p < length]
    header = f"{'query':>6s} " + " ".join(f"{name:>22s}" for name in names)
    print(header)
    for point in points:
        row = f"{point:>6d} " + " ".join(f"{series[name][point]:>22.0f}" for name in names)
        print(row)


def tail_mean(series: List[float], fraction: float = 0.1) -> float:
    """Mean of the last ``fraction`` of a per-query cost series."""
    count = max(1, int(len(series) * fraction))
    return float(np.mean(series[-count:]))


def stats_snapshot(column, *attributes: str) -> Dict[str, int]:
    """Atomically read a strategy's shared statistics counters.

    Statistics like ``merges_performed`` / ``partition_splits`` are declared
    ``@guarded_by(..., "_stats_lock")``: with a parallel fan-out column (or
    the concurrent-session experiments) pool workers update them under the
    object's stats lock, so reading them bare from the driver thread is a
    data race — individually torn reads, and multi-attribute snapshots that
    mix states from two different moments.  This helper takes the object's
    ``_stats_lock`` (when it has one) around *all* requested reads, so the
    returned dict is one consistent snapshot.

    Objects without a ``_stats_lock`` are plain single-threaded structures
    (e.g. :class:`UpdatableCrackedColumn`); their attributes are read
    directly — the single benchmark driver thread is the only writer.
    """
    lock = getattr(column, "_stats_lock", None)
    if lock is None:
        return {name: getattr(column, name) for name in attributes}
    with lock:
        return {name: getattr(column, name) for name in attributes}
