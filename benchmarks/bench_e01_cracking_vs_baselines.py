"""E1 — per-query response time: cracking vs scan vs sort-first vs full index.

Source: database cracking, CIDR 2007 (the canonical per-query response-time
figure the tutorial presents first).  Expected shape: the scan baseline is
flat and high; sort-first pays an enormous first query and is then at index
cost; cracking starts at roughly scan cost (plus a small copy overhead) and
its per-query cost drops towards index cost as more queries arrive; the
a-priori full index is flat and low (its build cost was paid offline).
"""

import pytest

from bench_common import (
    CORE_STRATEGIES,
    make_column,
    make_spec,
    print_series,
    print_summary,
    run_comparison,
    tail_mean,
)
from repro.workloads.generators import random_workload


def run_experiment():
    values = make_column()
    queries = random_workload(make_spec(selectivity=0.01))
    return run_comparison(values, queries, CORE_STRATEGIES)


@pytest.mark.benchmark(group="e01-cracking-vs-baselines")
def test_e01_per_query_response(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_summary("E1: per-query response, random workload", result)
    print_series("per-query logical cost", result.per_query_costs())

    runs = result.runs
    per_query = result.per_query_costs()
    # scan: flat, no initialization overhead, never converges
    assert runs["scan"].initialization_overhead == pytest.approx(1.0, rel=0.3)
    assert runs["scan"].convergence_query is None
    # sort-first: by far the largest first query, then immediately cheap
    assert runs["sort-first"].initialization_overhead > runs["cracking"].initialization_overhead
    assert runs["sort-first"].convergence_query in (0, 1)
    # cracking: modest first-query overhead (copy + first crack), and its
    # steady-state cost falls far below the scan cost
    assert 1.0 < runs["cracking"].initialization_overhead < runs["sort-first"].initialization_overhead
    assert tail_mean(per_query["cracking"]) < result.scan_cost / 10
    # the offline full index is the cheapest per query throughout
    assert tail_mean(per_query["full-index"]) <= tail_mean(per_query["cracking"])
