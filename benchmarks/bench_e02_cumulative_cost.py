"""E2 — cumulative cost crossover: when does adaptive indexing pay off?

Source: database cracking, CIDR 2007 (cumulative-cost figure).  Expected
shape: cracking's cumulative cost crosses below the scan baseline after a
handful of queries, and stays below the sort-first baseline until sort-first
amortises its huge first query over many queries (if at all within the
workload).
"""

import pytest

from bench_common import (
    make_column,
    make_spec,
    print_series,
    print_summary,
    run_comparison,
)
from repro.workloads.generators import random_workload
from repro.workloads.metrics import cost_crossover


def run_experiment():
    values = make_column()
    queries = random_workload(make_spec(selectivity=0.01))
    return run_comparison(values, queries, ["scan", "sort-first", "cracking"])


@pytest.mark.benchmark(group="e02-cumulative-cost")
def test_e02_cumulative_crossover(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    cumulative = result.cumulative_costs()
    print_summary("E2: cumulative cost, random workload", result)
    print_series("cumulative logical cost", cumulative)

    crossover_vs_scan = cost_crossover(cumulative["cracking"], cumulative["scan"])
    crossover_vs_sort = cost_crossover(cumulative["cracking"], cumulative["sort-first"])
    print(
        f"\ncracking beats scan cumulatively from query {crossover_vs_scan}; "
        f"cracking is below sort-first from query {crossover_vs_sort}"
    )
    # cracking's cumulative cost drops below scanning within a handful of queries
    assert crossover_vs_scan is not None and crossover_vs_scan <= 5
    # and it is below the sort-first baseline from the very first query
    assert crossover_vs_sort == 0
    # over the full workload, cracking is the cheapest of the three or close
    # to sort-first (which amortises eventually)
    assert cumulative["cracking"][-1] < cumulative["scan"][-1]
