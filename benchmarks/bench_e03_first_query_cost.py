"""E3 — benchmark metric 1: initialization cost of the first query.

Source: Benchmarking adaptive indexing, TPCTC 2010 (metric 1).  Expected
shape: scan ≈ 1x (no index is ever built); plain cracking a small factor
above the scan (cracker-column copy plus one crack); the hybrids with lazy
initial partitions close to cracking; adaptive merging and hybrid sort-sort
noticeably higher (run generation sorts every partition); sort-first the
highest (a complete sort on query one).
"""

import pytest

from bench_common import (
    make_column,
    make_spec,
    print_summary,
    run_comparison,
)
from repro.workloads.generators import random_workload

STRATEGIES = [
    "scan",
    "cracking",
    "stochastic-cracking",
    "hybrid-crack-crack",
    "hybrid-crack-sort",
    "hybrid-sort-sort",
    "adaptive-merging",
    "sort-first",
]


def run_experiment():
    values = make_column()
    queries = random_workload(make_spec(query_count=50, selectivity=0.01))
    return run_comparison(values, queries, STRATEGIES)


@pytest.mark.benchmark(group="e03-first-query-cost")
def test_e03_initialization_cost(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_summary("E3: first-query (initialization) cost", result)
    overheads = {
        name: run.initialization_overhead for name, run in result.runs.items()
    }
    print("\nfirst-query cost relative to a scan:")
    for name, overhead in sorted(overheads.items(), key=lambda item: item[1]):
        print(f"  {name:24s} {overhead:8.2f}x")

    assert overheads["scan"] == pytest.approx(1.0, rel=0.3)
    assert 1.0 < overheads["cracking"] < 5.0
    # lazy-initial hybrids stay close to cracking
    assert overheads["hybrid-crack-crack"] < overheads["adaptive-merging"]
    assert overheads["hybrid-crack-sort"] < overheads["adaptive-merging"]
    # active reorganisation costs more up front
    assert overheads["cracking"] < overheads["adaptive-merging"] < overheads["sort-first"]
    # hybrid sort-sort behaves like adaptive merging on the first query
    assert overheads["hybrid-sort-sort"] == pytest.approx(
        overheads["adaptive-merging"], rel=0.25
    )
