"""E4 — benchmark metric 2: convergence to full-index performance.

Source: Benchmarking adaptive indexing, TPCTC 2010 (metric 2); also the
convergence comparison of PVLDB 2011.  Expected shape: sort-first converges
immediately (after its expensive first query); adaptive merging converges in
(far) fewer queries than plain cracking; plain cracking keeps approaching
index cost but needs the most queries; the scan baseline never converges.

Convergence here is measured with a focused workload (queries over one tenth
of the domain) so full coverage of the queried key range is reachable within
the run, and with a 2x-of-full-index tolerance, mirroring the "without
incurring any overhead" reading of the benchmark.
"""

import pytest

from bench_common import (
    QUERY_COUNT,
    make_column,
    print_summary,
    tail_mean,
)
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.benchmark import AdaptiveIndexingBenchmark
from repro.workloads.generators import WorkloadSpec, random_workload

STRATEGIES = ["scan", "sort-first", "cracking", "adaptive-merging", "hybrid-sort-sort"]


def run_experiment():
    values = make_column()
    # focused workload: all queries fall into the first tenth of the domain,
    # so the queried key range can be fully optimised within the run
    spec = WorkloadSpec(
        domain_low=0.0,
        domain_high=100_000.0,
        query_count=max(300, QUERY_COUNT),
        selectivity=0.05,
        seed=11,
    )
    queries = random_workload(spec)
    harness = AdaptiveIndexingBenchmark(
        values, queries, convergence_tolerance=2.0, convergence_consecutive=5
    )
    return harness.run(STRATEGIES)


@pytest.mark.benchmark(group="e04-convergence")
def test_e04_convergence_point(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_summary("E4: convergence on a focused workload", result)
    convergence = {
        name: run.convergence_query for name, run in result.runs.items()
    }
    print("\nconvergence query (None = not within this run):")
    for name, point in convergence.items():
        print(f"  {name:24s} {point}")

    assert convergence["scan"] is None
    assert convergence["sort-first"] in (0, 1)
    # the active strategies converge within the run ...
    assert convergence["adaptive-merging"] is not None
    assert convergence["hybrid-sort-sort"] is not None
    # ... and do so no later than plain cracking (which may not converge at all)
    if convergence["cracking"] is not None:
        assert convergence["adaptive-merging"] <= convergence["cracking"]
    # even without strict convergence, cracking's tail cost is far below a scan
    per_query = result.per_query_costs(DEFAULT_MAIN_MEMORY_MODEL)
    assert tail_mean(per_query["cracking"]) < result.scan_cost / 10
