"""E5 — effect of query selectivity on adaptive indexing benefit.

Source: database cracking, CIDR 2007 (selectivity sweep).  Expected shape:
for every selectivity from very narrow point-like ranges up to half the
domain, cracking's total cost stays well below repeated scanning, because a
scan always pays the full column while cracking pays (shrinking
reorganisation) + (result size).  The relative advantage is largest for
selective queries and narrows as queries return most of the column.
"""

import pytest

from bench_common import (
    make_column,
    make_spec,
    print_summary,
    run_comparison,
)
from repro.workloads.generators import random_workload

SELECTIVITIES = [0.0001, 0.001, 0.01, 0.1, 0.5]


def run_experiment():
    values = make_column()
    results = {}
    for selectivity in SELECTIVITIES:
        spec = make_spec(query_count=200, selectivity=selectivity, seed=5)
        queries = random_workload(spec)
        results[selectivity] = run_comparison(
            values, queries, ["scan", "cracking", "full-index"]
        )
    return results


@pytest.mark.benchmark(group="e05-selectivity")
def test_e05_selectivity_sweep(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E5: selectivity sweep (total logical cost) ===")
    print(f"{'selectivity':>12s} {'scan':>14s} {'cracking':>14s} {'full-index':>14s} {'scan/cracking':>14s}")
    ratios = {}
    for selectivity, result in results.items():
        totals = {name: run.total_cost for name, run in result.runs.items()}
        ratio = totals["scan"] / totals["cracking"]
        ratios[selectivity] = ratio
        print(
            f"{selectivity:>12.4f} {totals['scan']:>14.0f} {totals['cracking']:>14.0f} "
            f"{totals['full-index']:>14.0f} {ratio:>14.1f}"
        )
    for selectivity, result in results.items():
        print_summary(f"E5 detail: selectivity {selectivity}", result)

    # cracking beats repeated scanning at every selectivity
    assert all(ratio > 1.5 for ratio in ratios.values())
    # and the advantage is largest for the most selective queries
    assert ratios[0.0001] > ratios[0.5]
