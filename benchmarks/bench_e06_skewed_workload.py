"""E6 — skewed workloads: only what is queried gets optimised.

Source: robustness studies of PVLDB 2011 (and the tutorial's core "rule":
every query is an advice of how data should be stored).  Expected shape: the
more skewed the workload, the cheaper the adaptive strategies get (the hot
region converges quickly and cold regions are never touched), while the scan
baseline is completely insensitive to skew.  Structurally, the cracker index
concentrates its pieces in the hot region.
"""

import numpy as np
import pytest

from bench_common import make_column, make_spec, print_summary, run_comparison, tail_mean
from repro.core.strategies import create_strategy
from repro.cost.counters import CostCounters
from repro.workloads.generators import skewed_workload

ALPHAS = [0.0, 1.0, 2.0]


def run_experiment():
    values = make_column()
    results = {}
    for alpha in ALPHAS:
        queries = skewed_workload(
            make_spec(query_count=300, selectivity=0.01, seed=6),
            alpha=alpha,
            hot_regions=16,
        )
        results[alpha] = run_comparison(
            values, queries, ["scan", "cracking", "adaptive-merging"]
        )
    return results


@pytest.mark.benchmark(group="e06-skew")
def test_e06_skewed_workload(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E6: zipf-skewed workloads (total logical cost) ===")
    print(f"{'alpha':>6s} {'scan':>14s} {'cracking':>14s} {'adaptive-merging':>18s}")
    totals = {}
    tails = {}
    for alpha, result in results.items():
        row = {name: run.total_cost for name, run in result.runs.items()}
        totals[alpha] = row
        per_query = result.per_query_costs()
        tails[alpha] = {name: tail_mean(series) for name, series in per_query.items()}
        print(
            f"{alpha:>6.1f} {row['scan']:>14.0f} {row['cracking']:>14.0f} "
            f"{row['adaptive-merging']:>18.0f}"
        )
    for alpha, result in results.items():
        print_summary(f"E6 detail: alpha={alpha}", result)
    print("\nsteady-state (tail) per-query cost:")
    for alpha, row in tails.items():
        print(f"  alpha={alpha}: " + ", ".join(f"{k}={v:.0f}" for k, v in sorted(row.items())))

    # scanning is insensitive to skew
    assert totals[0.0]["scan"] == pytest.approx(totals[2.0]["scan"], rel=0.01)
    # the actively merging strategy profits directly: the hot regions get
    # fully optimised quickly, so both total and tail cost drop with skew
    assert totals[2.0]["adaptive-merging"] < totals[0.0]["adaptive-merging"]
    assert tails[2.0]["adaptive-merging"] <= tails[0.0]["adaptive-merging"] * 1.1
    # cracking's total cost is dominated by the (skew-independent) early
    # partitioning passes, so skew leaves it roughly unchanged rather than
    # hurting it; its steady state stays far below scanning in all cases
    assert totals[2.0]["cracking"] == pytest.approx(totals[0.0]["cracking"], rel=0.2)
    for alpha in ALPHAS:
        assert tails[alpha]["cracking"] < totals[alpha]["scan"] / len(results[alpha].runs["scan"].statistics) / 10


@pytest.mark.benchmark(group="e06-skew")
def test_e06_only_hot_region_is_refined(benchmark):
    """Structural check: pieces concentrate where the queries are."""

    def run():
        values = make_column(size=50_000)
        strategy = create_strategy("cracking", values)
        rng = np.random.default_rng(0)
        # all queries in the first 10% of the domain
        for _ in range(200):
            low = float(rng.uniform(0, 90_000))
            strategy.search(low, low + 5_000, CostCounters())
        return strategy

    strategy = benchmark.pedantic(run, rounds=1, iterations=1)
    pieces = strategy.cracked.pieces()
    hot = [p for p in pieces if p.high is not None and p.high <= 100_000]
    cold = [p for p in pieces if p.low is not None and p.low >= 100_000]
    print(f"\npieces covering the hot 10% of the domain: {len(hot)}")
    print(f"pieces covering the cold 90% of the domain: {len(cold)}")
    assert len(hot) > 10 * max(len(cold), 1)
