"""E7 — adversarial access patterns: sequential and periodic workloads.

Source: the robustness discussion of the tutorial (optimisation issues /
convergence speed) and the workload patterns of the TPCTC 2010 benchmark and
PVLDB 2012 stochastic cracking work.  Expected shape: under a strictly
sequential sweep, plain cracking keeps re-partitioning one huge piece and its
total cost stays high; stochastic cracking (random auxiliary cuts) and
adaptive merging are largely insensitive to the pattern; the random workload
is the easy case for everyone.
"""

import pytest

from bench_common import make_column, make_spec, print_summary, run_comparison
from repro.workloads.generators import (
    periodic_workload,
    random_workload,
    sequential_workload,
)

STRATEGIES = ["scan", "cracking", "stochastic-cracking", "adaptive-merging"]


def run_experiment():
    values = make_column()
    spec = make_spec(query_count=300, selectivity=0.005, seed=7)
    workloads = {
        "random": random_workload(spec),
        "sequential": sequential_workload(spec),
        "periodic": periodic_workload(spec, period=100),
    }
    return {
        pattern: run_comparison(values, queries, STRATEGIES)
        for pattern, queries in workloads.items()
    }


@pytest.mark.benchmark(group="e07-patterns")
def test_e07_query_patterns(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E7: access patterns (total logical cost) ===")
    header = f"{'pattern':>12s} " + " ".join(f"{name:>20s}" for name in STRATEGIES)
    print(header)
    totals = {}
    for pattern, result in results.items():
        row = {name: run.total_cost for name, run in result.runs.items()}
        totals[pattern] = row
        print(f"{pattern:>12s} " + " ".join(f"{row[name]:>20.0f}" for name in STRATEGIES))
    for pattern, result in results.items():
        print_summary(f"E7 detail: {pattern} pattern", result)

    # on the random pattern both cracking flavours are comparable
    random_row = totals["random"]
    assert random_row["stochastic-cracking"] < 2.0 * random_row["cracking"]
    # the sequential sweep hurts plain cracking ...
    sequential_row = totals["sequential"]
    assert sequential_row["cracking"] > 1.5 * random_row["cracking"]
    # ... while stochastic cracking stays robust and clearly beats it
    assert sequential_row["stochastic-cracking"] < sequential_row["cracking"]
    # adaptive merging is pattern-insensitive (its work is driven by coverage)
    assert totals["sequential"]["adaptive-merging"] < 2.0 * totals["random"]["adaptive-merging"]
