"""E8 — cracking under updates: merge-on-demand keeps adaptivity.

Source: Updating a cracked database, SIGMOD 2007.  Expected shape: with
updates interleaved into the query stream, per-query cost stays close to the
read-only case (updates are merged lazily and only for the touched key
ranges); higher update ratios add proportionally more maintenance work, but
nothing resembling a full index rebuild per update; the gradual policy
spreads merge work over more queries, reducing cost spikes at the price of
carrying pending updates longer.
"""

import numpy as np
import pytest

from bench_common import SCALE, make_column, stats_snapshot
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.generators import WorkloadSpec
from repro.workloads.updates import mixed_update_workload

UPDATE_RATIOS = [0.0, 0.01, 0.1, 1.0]

COLUMN_SIZE = max(5_000, int(50_000 * SCALE))
QUERY_COUNT = max(60, int(300 * SCALE))


def run_stream(values, updates_per_query, policy="ripple"):
    """Run a mixed query/update stream; return per-query logical costs."""
    spec = WorkloadSpec(
        domain_low=0.0,
        domain_high=1_000_000.0,
        query_count=QUERY_COUNT,
        selectivity=0.01,
        seed=8,
    )
    stream = mixed_update_workload(spec, updates_per_query=updates_per_query)
    column = UpdatableCrackedColumn(values, policy=policy)
    live_rowids = list(range(len(values)))
    rng = np.random.default_rng(8)
    per_query_costs = []
    for operation in stream:
        if operation.kind == "insert":
            live_rowids.append(column.insert(operation.value))
        elif operation.kind == "delete":
            if live_rowids:
                victim = live_rowids.pop(int(rng.integers(0, len(live_rowids))))
                column.delete(victim)
        else:
            counters = CostCounters()
            column.search(operation.query.low, operation.query.high, counters)
            per_query_costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(counters))
    return per_query_costs, column


def run_experiment():
    values = make_column(size=COLUMN_SIZE)
    results = {}
    for ratio in UPDATE_RATIOS:
        costs, column = run_stream(values, ratio)
        results[ratio] = {
            "per_query": costs,
            "total": float(np.sum(costs)),
            "tail": float(np.mean(costs[-30:])),
            "max": float(np.max(costs)),
            "merges": stats_snapshot(column, "merges_performed")["merges_performed"],
        }
    return values, results


@pytest.mark.benchmark(group="e08-updates")
def test_e08_interleaved_updates(benchmark):
    values, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E8: interleaved updates (ripple merge-on-demand) ===")
    print(f"{'updates/query':>14s} {'total cost':>14s} {'tail mean':>12s} {'max query':>12s} {'merges':>8s}")
    for ratio, row in results.items():
        print(
            f"{ratio:>14.2f} {row['total']:>14.0f} {row['tail']:>12.0f} "
            f"{row['max']:>12.0f} {row['merges']:>8d}"
        )

    read_only = results[0.0]
    scan_cost = 3.0 * len(values)  # scan + comparisons under the default model
    # with updates, queries stay adaptive: tail cost nowhere near a scan
    for ratio, row in results.items():
        assert row["tail"] < scan_cost / 5
    # maintenance grows with the update ratio, but moderately (no rebuilds)
    assert results[1.0]["total"] < 5.0 * read_only["total"]
    assert results[0.01]["total"] < 1.5 * read_only["total"]


@pytest.mark.benchmark(group="e08-updates")
def test_e08_gradual_policy_smooths_spikes(benchmark):
    def run():
        values = make_column(size=COLUMN_SIZE)
        ripple_costs, _ = run_stream(values, updates_per_query=1.0, policy="ripple")
        gradual_costs, _ = run_stream(values, updates_per_query=1.0, policy="gradual")
        return ripple_costs, gradual_costs

    ripple_costs, gradual_costs = benchmark.pedantic(run, rounds=1, iterations=1)
    ripple_spike = np.max(ripple_costs[10:]) / np.median(ripple_costs[10:])
    gradual_spike = np.max(gradual_costs[10:]) / np.median(gradual_costs[10:])
    print(f"\nripple policy  : max/median per-query cost = {ripple_spike:.1f}")
    print(f"gradual policy : max/median per-query cost = {gradual_spike:.1f}")
    # both policies answer the same workload; the gradual policy's worst
    # query is no worse than the ripple policy's worst query
    assert np.max(gradual_costs[10:]) <= np.max(ripple_costs[10:]) * 1.5
