"""E9 — sideways cracking: self-organising tuple reconstruction.

Source: Self-organizing tuple reconstruction in column stores, SIGMOD 2009.
Expected shape: for multi-column select/project queries, answering with a
cracked selection column plus late tuple reconstruction degenerates into
random access (gather per projected column per query), while sideways
cracking keeps selection and projection columns aligned in cracker maps so
the projected values come out of contiguous memory.  The random-access
counter (the dominant cost driver on modern hardware) collapses by orders of
magnitude; plain scanning reads everything every time.
"""

import numpy as np
import pytest

from bench_common import SCALE
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.tpch_like import (
    TPCHLikeConfig,
    build_database,
    shipping_priority_queries,
)

CONFIG = TPCHLikeConfig(fact_rows=int(60_000 * SCALE), seed=9)
QUERY_COUNT = 150


def run_mode(mode: str):
    """Run the multi-column workload under one physical-design mode."""
    database = build_database(CONFIG)
    if mode == "cracking+late-reconstruction":
        database.set_indexing("lineorder", "orderdate", "cracking")
    elif mode == "sideways-cracking":
        database.enable_sideways("lineorder", "orderdate")
    queries = shipping_priority_queries(CONFIG, query_count=QUERY_COUNT, seed=10)
    stats = database.run_workload(queries, strategy_label=mode)
    totals = stats.total_counters()
    per_query = stats.per_query_cost(DEFAULT_MAIN_MEMORY_MODEL)
    tail = per_query[-QUERY_COUNT // 5:]
    return {
        "stats": stats,
        "total_cost": sum(per_query),
        "tail_cost": float(np.mean(tail)),
        "random_accesses": totals.random_accesses,
        "tuples_scanned": totals.tuples_scanned,
        "results": [q.result_count for q in stats],
    }


def run_experiment():
    return {
        mode: run_mode(mode)
        for mode in ("scan", "cracking+late-reconstruction", "sideways-cracking")
    }


@pytest.mark.benchmark(group="e09-sideways")
def test_e09_sideways_cracking(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E9: multi-column select/project on the star schema ===")
    print(f"{'mode':>32s} {'total cost':>14s} {'tail cost':>11s} {'random accesses':>16s} {'tuples scanned':>15s}")
    for mode, row in results.items():
        print(
            f"{mode:>32s} {row['total_cost']:>14.0f} {row['tail_cost']:>11.0f} "
            f"{row['random_accesses']:>16d} {row['tuples_scanned']:>15d}"
        )

    # all three modes return identical result cardinalities
    assert results["scan"]["results"] == results["sideways-cracking"]["results"]
    assert results["scan"]["results"] == results["cracking+late-reconstruction"]["results"]
    # sideways cracking eliminates (almost all) random access
    assert (
        results["sideways-cracking"]["random_accesses"]
        < results["cracking+late-reconstruction"]["random_accesses"] / 10
    )
    # it clearly beats scanning on total cost
    assert results["sideways-cracking"]["total_cost"] < results["scan"]["total_cost"] / 2
    # against cracking + late reconstruction, the maps pay extra
    # reorganisation early on (every projected attribute is cracked), so the
    # decisive comparison is the steady state: once the maps are refined,
    # sideways queries run on contiguous data while late reconstruction
    # keeps paying random gathers per query
    assert (
        results["sideways-cracking"]["tail_cost"]
        < results["cracking+late-reconstruction"]["tail_cost"]
    )
