"""E10 — adaptive merging vs database cracking: activeness vs laziness.

Source: Self-selecting, self-tuning, incrementally optimized indexes,
EDBT 2010 (and the comparison framing of PVLDB 2011).  Expected shape:
adaptive merging pays noticeably more on the first query (run generation
sorts every partition) but each subsequent query removes its key range from
the runs for good, so per-query cost falls to index-lookup level after far
fewer queries than cracking, whose lazy single cuts leave large unsorted
pieces around for a long time.  Structurally: the fraction of tuples already
moved into the final (fully optimised) partition grows much faster for
adaptive merging.
"""

import numpy as np
import pytest

from bench_common import make_column, print_series
from repro.core.strategies import create_strategy
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.generators import WorkloadSpec, random_workload

QUERIES = 400


def run_experiment():
    values = make_column(size=100_000)
    spec = WorkloadSpec(
        domain_low=0.0, domain_high=1_000_000.0, query_count=QUERIES,
        selectivity=0.02, seed=10,
    )
    queries = random_workload(spec)
    series = {}
    merged_fraction = {}
    for name in ("cracking", "adaptive-merging"):
        strategy = create_strategy(name, values, run_size=2_000)
        costs = []
        fractions = []
        for query in queries:
            counters = CostCounters()
            strategy.search(query.low, query.high, counters)
            costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(counters))
            if name == "adaptive-merging":
                fractions.append(len(strategy.index.final_values) / len(values))
        series[name] = costs
        if name == "adaptive-merging":
            merged_fraction[name] = fractions
    return values, series, merged_fraction


@pytest.mark.benchmark(group="e10-adaptive-merging")
def test_e10_merging_vs_cracking(benchmark):
    values, series, merged_fraction = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series("E10: per-query cost, cracking vs adaptive merging", series)
    fractions = merged_fraction["adaptive-merging"]
    print(
        "\nfraction of tuples in the final partition after "
        f"10/50/100/{QUERIES} queries: "
        f"{fractions[9]:.2f} / {fractions[49]:.2f} / {fractions[99]:.2f} / {fractions[-1]:.2f}"
    )

    cracking = np.asarray(series["cracking"])
    merging = np.asarray(series["adaptive-merging"])
    # first query: merging pays more (run generation sorts all partitions)
    assert merging[0] > cracking[0]
    # convergence: count queries until per-query cost falls below a fixed
    # "index-like" threshold and stays there on average
    threshold = 6.0 * 0.02 * len(values)  # a few times the average result size
    merging_converged = np.argmax(
        [np.mean(merging[i:i + 10]) < threshold for i in range(len(merging) - 10)]
    )
    cracking_converged = np.argmax(
        [np.mean(cracking[i:i + 10]) < threshold for i in range(len(cracking) - 10)]
    )
    print(f"queries until sustained index-like cost: adaptive merging = {merging_converged}, "
          f"cracking = {cracking_converged}")
    assert merging_converged < cracking_converged
    # by the end, most of the column has been merged into the final partition
    assert fractions[-1] > 0.9
