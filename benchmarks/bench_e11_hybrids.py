"""E11 — hybrid adaptive indexing: trading initialization against convergence.

Source: Merging what's cracked, cracking what's merged, PVLDB 2011.
Expected shape: the hybrids populate the space between plain cracking and
adaptive merging / sort-sort.  Hybrids with lazy (cracked) initial
partitions keep the first query cheap — close to plain cracking and far
below the sort-based variants — while hybrids that invest more order per
query (sorted final pieces, sorted initial partitions) reach low steady-state
cost sooner.  Plotting first-query overhead against steady-state tail cost
reproduces the paper's trade-off picture.
"""

import pytest

from bench_common import (
    HYBRID_STRATEGIES,
    make_column,
    make_spec,
    print_summary,
    run_comparison,
    tail_mean,
)
from repro.workloads.generators import random_workload


def run_experiment():
    values = make_column()
    queries = random_workload(make_spec(query_count=400, selectivity=0.01, seed=11))
    return run_comparison(values, queries, HYBRID_STRATEGIES + ["sort-first"])


@pytest.mark.benchmark(group="e11-hybrids")
def test_e11_hybrid_tradeoff(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_summary("E11: hybrid adaptive indexing", result)
    per_query = result.per_query_costs()
    print("\nfirst-query overhead vs steady-state (tail) cost:")
    rows = {}
    for name, run in result.runs.items():
        rows[name] = (run.initialization_overhead, tail_mean(per_query[name]))
        print(f"  {name:24s} init={rows[name][0]:7.2f}x   tail={rows[name][1]:10.0f}")

    init = {name: row[0] for name, row in rows.items()}
    tail = {name: row[1] for name, row in rows.items()}
    # crack-initial hybrids keep the first query close to plain cracking ...
    assert init["hybrid-crack-crack"] < 2.0 * init["cracking"]
    assert init["hybrid-crack-sort"] < 2.0 * init["cracking"]
    # ... and far below the sort-everything-first baseline
    assert init["hybrid-crack-sort"] < init["sort-first"] / 1.5
    # sort-initial hybrids pay more up front than crack-initial ones
    assert init["hybrid-sort-sort"] > init["hybrid-crack-sort"]
    # every hybrid reaches a steady state far below the scan cost
    for name in HYBRID_STRATEGIES:
        assert tail[name] < result.scan_cost / 10
    # investing more order per query pays off in the tail: the sorted-final
    # variants end up at least as cheap as the fully lazy crack-crack hybrid
    assert tail["hybrid-sort-sort"] <= tail["hybrid-crack-crack"] * 1.25
