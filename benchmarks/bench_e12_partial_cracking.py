"""E12 — partial (storage-bounded) cracking: performance vs storage budget.

Source: the partial/sideways cracking work (SIGMOD 2009) and the tutorial's
storage-bounds discussion.  Expected shape: with an unlimited budget,
partial cracking behaves like cracking (auxiliary structures for the touched
value ranges only); as the budget shrinks, fragments must be evicted and
re-materialised, so total cost rises; with a budget too small to hold any
fragment, behaviour degrades towards repeated scanning — a smooth
performance/storage trade-off rather than a cliff.
"""

import numpy as np
import pytest

from bench_common import make_column, make_spec
from repro.columnstore.storage import StorageBudget
from repro.core.cracking.partial import PartialCrackedColumn
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.generators import random_workload

#: budget expressed as a fraction of the fully materialised cracker structures
BUDGET_FRACTIONS = [None, 1.0, 0.5, 0.25, 0.05]


def run_experiment():
    values = make_column(size=100_000)
    full_structures_bytes = int(values.nbytes * 3)  # values + rowids + fragment rowids
    queries = random_workload(make_spec(query_count=300, selectivity=0.01, seed=12))
    results = {}
    for fraction in BUDGET_FRACTIONS:
        budget = (
            StorageBudget(limit_bytes=None)
            if fraction is None
            else StorageBudget(limit_bytes=int(full_structures_bytes * fraction))
        )
        column = PartialCrackedColumn(values, budget=budget, fragments=16)
        costs = []
        for query in queries:
            counters = CostCounters()
            column.search(query.low, query.high, counters)
            costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(counters))
        results[fraction] = {
            "total": float(np.sum(costs)),
            "evictions": column.evictions,
            "fallback_scans": column.fallback_scans,
            "used_bytes": column.nbytes,
        }
    scan_total = 3.0 * len(values) * len(queries)
    return results, scan_total


@pytest.mark.benchmark(group="e12-partial-cracking")
def test_e12_storage_budget_tradeoff(benchmark):
    results, scan_total = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E12: partial cracking under storage budgets ===")
    print(f"{'budget':>10s} {'total cost':>14s} {'evictions':>10s} {'fallback scans':>15s} {'aux bytes':>12s}")
    for fraction, row in results.items():
        label = "unlimited" if fraction is None else f"{fraction:.0%}"
        print(
            f"{label:>10s} {row['total']:>14.0f} {row['evictions']:>10d} "
            f"{row['fallback_scans']:>15d} {row['used_bytes']:>12d}"
        )
    print(f"{'scan-only':>10s} {scan_total:>14.0f}")

    # cost grows monotonically (within noise) as the budget shrinks
    assert results[1.0]["total"] <= results[0.25]["total"] * 1.1
    assert results[0.25]["total"] <= results[0.05]["total"] * 1.1
    # generous budgets never evict; tight budgets do
    assert results[None]["evictions"] == 0
    assert results[0.25]["evictions"] > 0
    # the unlimited budget is far below repeated scanning; the tightest
    # budget degrades gracefully towards (roughly) scan-only behaviour
    # instead of falling off a cliff
    assert results[None]["total"] < scan_total / 5
    assert results[0.05]["total"] <= scan_total * 1.25
    # storage accounting respects the budget
    for fraction, row in results.items():
        if fraction is not None:
            assert row["used_bytes"] <= int(3 * 8 * 100_000 * fraction) + 1
