"""E13 — offline, online, soft and adaptive indexing under a workload shift.

Source: the tutorial's positioning of adaptive indexing against offline
what-if tuning, online (monitor-and-tune / COLT-style) tuning and soft
indexes.  Expected shape on a workload whose focus shifts periodically:

* the offline index built for the *first* focus keeps helping only while the
  workload stays there; it was also built from a sample, at full build cost;
* the online tuner needs to re-observe enough benefit after every shift
  before it (re)builds, so a window of expensive queries follows each shift,
  and the triggering query pays the full build;
* soft indexes piggy-back the build on a scan but still build completely,
  so the carrying query spikes;
* database cracking reacts within the very first query after the shift and
  never pays more than a scan-like cost for any single query.
"""

import numpy as np
import pytest

from bench_common import make_column
from repro.columnstore.column import Column
from repro.columnstore.select import RangePredicate, scan_select
from repro.core.strategies import create_strategy
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.indexes.full_index import FullIndex
from repro.indexes.online_tuner import OnlineIndexTuner
from repro.indexes.soft_index import SoftIndexManager
from repro.workloads.generators import WorkloadSpec, piecewise_focus_workload

QUERY_COUNT = 400
SHIFT_EVERY = 100


def build_workload():
    spec = WorkloadSpec(
        domain_low=0.0, domain_high=1_000_000.0, query_count=QUERY_COUNT,
        selectivity=0.01, seed=13,
    )
    return piecewise_focus_workload(spec, shift_every=SHIFT_EVERY, focus_fraction=0.1)


def run_experiment():
    values = make_column(size=100_000)
    column = Column(values, name="key")
    queries = build_workload()
    model = DEFAULT_MAIN_MEMORY_MODEL
    costs = {}

    # scan baseline
    series = []
    for query in queries:
        counters = CostCounters()
        scan_select(column, RangePredicate(query.low, query.high), counters)
        series.append(model.cost(counters))
    costs["scan"] = series

    # offline index: built up front (cost recorded separately, not per query)
    offline_index = FullIndex(column)
    series = []
    for query in queries:
        counters = CostCounters()
        offline_index.search(query.low, query.high, counters)
        series.append(model.cost(counters))
    costs["offline-index"] = series
    offline_build_cost = model.cost(offline_index.build_counters)

    # online tuner (monitor and tune)
    tuner = OnlineIndexTuner(build_threshold_factor=1.0)
    series = []
    for query in queries:
        counters = CostCounters()
        tuner.select(column, RangePredicate(query.low, query.high), counters)
        series.append(model.cost(counters))
    costs["online-tuning"] = series

    # soft indexes
    soft = SoftIndexManager(recommendation_threshold=10)
    series = []
    for query in queries:
        counters = CostCounters()
        soft.select(column, RangePredicate(query.low, query.high), counters)
        series.append(model.cost(counters))
    costs["soft-index"] = series

    # database cracking
    cracking = create_strategy("cracking", values)
    series = []
    for query in queries:
        counters = CostCounters()
        cracking.search(query.low, query.high, counters)
        series.append(model.cost(counters))
    costs["cracking"] = series

    return costs, offline_build_cost


@pytest.mark.benchmark(group="e13-online-vs-adaptive")
def test_e13_offline_online_soft_adaptive(benchmark):
    costs, offline_build_cost = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E13: shifting focus — offline vs online vs soft vs adaptive ===")
    print(f"{'approach':>16s} {'total cost':>14s} {'worst query':>13s} {'first 20 after shift 2':>24s}")
    shift_start = SHIFT_EVERY
    summary = {}
    for name, series in costs.items():
        arr = np.asarray(series)
        after_shift = float(np.mean(arr[shift_start:shift_start + 20]))
        summary[name] = {
            "total": float(arr.sum()),
            "worst": float(arr.max()),
            "after_shift": after_shift,
        }
        print(
            f"{name:>16s} {summary[name]['total']:>14.0f} {summary[name]['worst']:>13.0f} "
            f"{after_shift:>24.0f}"
        )
    print(f"(offline index build cost paid before the workload: {offline_build_cost:.0f})")

    scan_query_cost = summary["scan"]["total"] / QUERY_COUNT
    # cracking never penalises an individual query with anything close to a
    # full index build — its worst query stays in the scan ballpark
    assert summary["cracking"]["worst"] < 4 * scan_query_cost
    # online tuning and soft indexes each have at least one query that paid
    # a full (or near-full) index build: the penalised-query weakness the
    # tutorial attributes to monitor-and-tune approaches
    assert summary["online-tuning"]["worst"] > 4 * scan_query_cost
    assert summary["soft-index"]["worst"] > 4 * scan_query_cost
    assert summary["online-tuning"]["worst"] > 2 * summary["cracking"]["worst"]
    # before the monitor-and-tune threshold triggers, online tuning gets no
    # index support at all, while cracking already benefits from query two
    early = slice(1, 8)
    assert (
        np.mean(np.asarray(costs["cracking"])[early])
        < np.mean(np.asarray(costs["online-tuning"])[early])
    )
    # every indexing approach beats pure scanning over the workload
    for name in ("cracking", "online-tuning", "soft-index", "offline-index"):
        assert summary[name]["total"] < summary["scan"]["total"]
    # on a single hot column and a long workload, building the full index
    # eventually amortises, so online tuning's *total* can undercut
    # cracking; the offline index is unbeatable per query — but only
    # because its (large) build cost was paid outside the workload
    assert summary["offline-index"]["total"] < summary["cracking"]["total"]
    assert offline_build_cost > 3 * scan_query_cost
