"""E14 — workload-shift robustness: adaptive indexing re-converges per focus.

Source: the dynamic-workload motivation of the tutorial and the
workload-shift experiments of the adaptive-indexing line ([8], [15]).
Expected shape: when the workload focus jumps to a previously untouched key
range, the first queries there cost more again (the new region is still one
big piece / still sitting in the runs), but cost falls quickly as the new
region is refined — and the previously refined regions remain cheap.
Cumulative cost therefore stays far below scanning even across many shifts.
"""

import numpy as np
import pytest

from bench_common import make_column
from repro.core.strategies import create_strategy
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.generators import WorkloadSpec, piecewise_focus_workload

QUERY_COUNT = 450
SHIFT_EVERY = 150


def run_experiment():
    values = make_column(size=100_000)
    spec = WorkloadSpec(
        domain_low=0.0, domain_high=1_000_000.0, query_count=QUERY_COUNT,
        selectivity=0.02, seed=14,
    )
    queries = piecewise_focus_workload(spec, shift_every=SHIFT_EVERY, focus_fraction=0.08)
    model = DEFAULT_MAIN_MEMORY_MODEL
    series = {}
    for name in ("scan", "cracking", "adaptive-merging", "hybrid-crack-sort"):
        strategy = create_strategy(name, values, run_size=2_000)
        costs = []
        for query in queries:
            counters = CostCounters()
            strategy.search(query.low, query.high, counters)
            costs.append(model.cost(counters))
        series[name] = costs
    return series


@pytest.mark.benchmark(group="e14-workload-shift")
def test_e14_focus_shift_reconvergence(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print("\n=== E14: piecewise-focused workload with shifts every "
          f"{SHIFT_EVERY} queries ===")
    print(f"{'strategy':>20s} {'phase1 tail':>12s} {'shift spike':>12s} {'phase2 tail':>12s} {'total':>14s}")
    summary = {}
    for name, costs in series.items():
        arr = np.asarray(costs)
        phase1_tail = float(np.mean(arr[SHIFT_EVERY - 20:SHIFT_EVERY]))
        shift_spike = float(np.mean(arr[SHIFT_EVERY:SHIFT_EVERY + 5]))
        phase2_tail = float(np.mean(arr[2 * SHIFT_EVERY - 20:2 * SHIFT_EVERY]))
        summary[name] = (phase1_tail, shift_spike, phase2_tail, float(arr.sum()))
        print(
            f"{name:>20s} {phase1_tail:>12.0f} {shift_spike:>12.0f} "
            f"{phase2_tail:>12.0f} {summary[name][3]:>14.0f}"
        )

    for name in ("cracking", "adaptive-merging", "hybrid-crack-sort"):
        phase1_tail, shift_spike, phase2_tail, total = summary[name]
        # before the shift the strategy had converged on the first focus
        assert phase1_tail < shift_spike, f"{name}: no re-adaptation spike visible"
        # after re-adapting, the new focus is cheap again
        assert phase2_tail < shift_spike / 2, f"{name}: did not re-converge"
        # and overall it still beats scanning by a wide margin
        assert total < summary["scan"][3] / 2, f"{name}: did not beat scanning"
