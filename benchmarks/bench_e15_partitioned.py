"""E15 — partitioned parallel cracking: shard count vs cost and wall-clock.

Partitioned cracking shards the column into P contiguous partitions, each
with a private cracker column and cracker index; a range selection cracks
only the partitions whose value range overlaps the predicate.  Expected
shape: the answer (and hence the per-query result sizes) is identical to
plain cracking for every P; the first-query cost is of the same order (the
copies are sharded, plus one bounds scan per touched partition); cumulative
logical cost stays within a small factor of plain cracking while convergence
is at least as fast per partition (each shard's key sub-range is smaller);
and with ``parallel=True`` wall-clock drops on multi-core machines while the
logical cost stays *identical* to the sequential partitioned run.

The parallel fan-out is swept over both execution backends (``thread`` in
the caller's address space, ``process`` over shared-memory segments) at
1/2/4/8 workers each: every cell of the sweep must report logical cost
bit-identical to the sequential partitioned run — the executor seam is a
physical detail the cost model never sees.
"""

import pytest

from bench_common import (
    make_column,
    make_spec,
    print_summary,
)
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.benchmark import AdaptiveIndexingBenchmark
from repro.workloads.generators import random_workload

PARTITION_COUNTS = [1, 2, 4, 8]

WORKER_COUNTS = [1, 2, 4, 8]

EXECUTOR_BACKENDS = ("thread", "process")


def run_experiment():
    values = make_column(size=100_000)
    queries = random_workload(make_spec(query_count=300, selectivity=0.01, seed=15))
    harness = AdaptiveIndexingBenchmark(values, queries)
    variants = {"cracking": ("cracking", {})}
    for count in PARTITION_COUNTS:
        variants[f"partitioned-{count}"] = (
            "partitioned-cracking",
            {"partitions": count, "parallel": False},
        )
    for backend in EXECUTOR_BACKENDS:
        for workers in WORKER_COUNTS:
            variants[f"partitioned-8-{backend}-{workers}"] = (
                "partitioned-cracking",
                {"partitions": 8, "parallel": True, "executor": backend,
                 "max_workers": workers},
            )
    return harness.run_labeled(variants)


@pytest.mark.benchmark(group="e15-partitioned")
def test_e15_partitioned_cracking(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_summary("E15: partitioned cracking, 1/2/4/8 partitions", result)

    cumulative = result.cumulative_costs(DEFAULT_MAIN_MEMORY_MODEL)
    per_query = result.per_query_costs(DEFAULT_MAIN_MEMORY_MODEL)
    print("\ncumulative logical cost (end of run) per variant:")
    for label in sorted(cumulative):
        print(
            f"  {label:24s} total={cumulative[label][-1]:>14.0f} "
            f"first-query={per_query[label][0]:>12.0f} "
            f"converged@={result.runs[label].convergence_query}"
        )

    # every variant answers the same workload: result sizes must agree
    reference_counts = [
        s.result_count for s in result.runs["cracking"].statistics.queries
    ]
    for label, run in result.runs.items():
        counts = [s.result_count for s in run.statistics.queries]
        assert counts == reference_counts, f"{label} returned different result sizes"

    # partitioning keeps cumulative logical cost in the same ballpark as
    # plain cracking (sharded copies + per-partition bounds scans), far
    # below repeated scanning
    cracking_total = cumulative["cracking"][-1]
    scan_total = result.scan_cost * result.query_count
    for count in PARTITION_COUNTS:
        total = cumulative[f"partitioned-{count}"][-1]
        assert total < scan_total / 2
        assert total < cracking_total * 3

    # every backend × worker-count cell does the same logical work as the
    # sequential partitioned run — execution mode never reaches the cost model
    sequential_total = cumulative["partitioned-8"][-1]
    for backend in EXECUTOR_BACKENDS:
        for workers in WORKER_COUNTS:
            label = f"partitioned-8-{backend}-{workers}"
            assert cumulative[label][-1] == pytest.approx(
                sequential_total, rel=1e-9
            ), f"{label} diverged from the sequential logical cost"


if __name__ == "__main__":
    result = run_experiment()
    print_summary("E15: partitioned cracking, 1/2/4/8 partitions", result)
