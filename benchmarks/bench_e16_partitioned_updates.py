"""E16 — partitioned updatable cracking: update throughput and cost vs shards.

Source: updates "in the same adaptive philosophy" (SIGMOD 2007) composed
with partitioned parallel cracking (PR 1).  Every partition owns private
pending insert/delete queues merged on demand by ripple movements, so an
update only ever touches one partition and a merge only ripples through that
partition's pieces.  Expected shape: every configuration — any partition
count, sequential or parallel, ripple or gradual — returns exactly the same
rowid sets; per-query cost stays adaptive (far below a scan); more
partitions shorten the ripple distance per merge (pieces per partition
shrink) so update-heavy streams don't slow down as shards are added; the
gradual policy bounds merge work per query by ``merge_batch`` per touched
partition.
"""

import time

import numpy as np
import pytest

from bench_common import SCALE, make_column, stats_snapshot
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.core.partitioned import PartitionedUpdatableCrackedColumn
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.generators import WorkloadSpec
from repro.workloads.updates import mixed_update_workload

PARTITION_COUNTS = [1, 2, 4, 8]
MERGE_BATCH = 16

COLUMN_SIZE = max(2_000, int(50_000 * SCALE))
QUERY_COUNT = max(30, int(200 * SCALE))
UPDATES_PER_QUERY = 2.0


def make_stream():
    spec = WorkloadSpec(
        domain_low=0.0,
        domain_high=1_000_000.0,
        query_count=QUERY_COUNT,
        selectivity=0.01,
        seed=16,
    )
    return mixed_update_workload(spec, updates_per_query=UPDATES_PER_QUERY)


def make_variant(values, label):
    """Instantiate the updatable column a variant label describes."""
    if label.startswith("updatable"):
        policy = "gradual" if label.endswith("gradual") else "ripple"
        return UpdatableCrackedColumn(values, policy=policy, merge_batch=MERGE_BATCH)
    parts = label.split("-")
    partitions = int(parts[1])
    return PartitionedUpdatableCrackedColumn(
        values,
        partitions=partitions,
        parallel="parallel" in parts,
        policy="gradual" if "gradual" in parts else "ripple",
        merge_batch=MERGE_BATCH,
    )


def run_stream(values, stream, label):
    """Run the mixed stream; returns per-query costs, answers and timings."""
    column = make_variant(values, label)
    live_rowids = list(range(len(values)))
    rng = np.random.default_rng(16)
    per_query_costs = []
    answers = []
    merges_per_query = []
    update_seconds = 0.0
    query_seconds = 0.0
    update_count = 0
    for operation in stream:
        if operation.kind == "insert":
            started = time.perf_counter()
            live_rowids.append(column.insert(operation.value))
            update_seconds += time.perf_counter() - started
            update_count += 1
        elif operation.kind == "delete":
            if live_rowids:
                victim = live_rowids.pop(int(rng.integers(0, len(live_rowids))))
                started = time.perf_counter()
                column.delete(victim)
                update_seconds += time.perf_counter() - started
                update_count += 1
        else:
            counters = CostCounters()
            merges_before = stats_snapshot(column, "merges_performed")["merges_performed"]
            started = time.perf_counter()
            result = column.search(operation.query.low, operation.query.high, counters)
            query_seconds += time.perf_counter() - started
            per_query_costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(counters))
            merges_per_query.append(
                stats_snapshot(column, "merges_performed")["merges_performed"]
                - merges_before
            )
            answers.append(np.sort(result))
    if hasattr(column, "close"):
        column.close()
    return {
        "column": column,
        "per_query": per_query_costs,
        "answers": answers,
        "merges_per_query": merges_per_query,
        "update_seconds": update_seconds,
        "query_seconds": query_seconds,
        "update_count": update_count,
    }


def run_experiment():
    values = make_column(size=COLUMN_SIZE)
    stream = make_stream()
    labels = ["updatable", "updatable-gradual"]
    labels += [f"partitioned-{count}" for count in PARTITION_COUNTS]
    labels += ["partitioned-8-parallel", "partitioned-8-gradual"]
    return values, {label: run_stream(values, stream, label) for label in labels}


@pytest.mark.benchmark(group="e16-partitioned-updates")
def test_e16_partitioned_updates(benchmark):
    values, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(
        f"\n=== E16: partitioned updatable cracking "
        f"({COLUMN_SIZE:,} rows, {QUERY_COUNT} queries, "
        f"{UPDATES_PER_QUERY:.0f} updates/query) ==="
    )
    header = (
        f"{'variant':>24s} {'updates/s':>12s} {'total cost':>14s} "
        f"{'tail mean':>12s} {'merges':>8s}"
    )
    print(header)
    for label, row in results.items():
        throughput = row["update_count"] / max(row["update_seconds"], 1e-9)
        tail = float(np.mean(row["per_query"][-max(1, QUERY_COUNT // 10):]))
        print(
            f"{label:>24s} {throughput:>12,.0f} "
            f"{float(np.sum(row['per_query'])):>14,.0f} {tail:>12,.0f} "
            f"{stats_snapshot(row['column'], 'merges_performed')['merges_performed']:>8d}"
        )

    # every configuration answers the same mixed stream with exactly the
    # same rowid sets (global rowids make partitioning invisible)
    reference = results["updatable"]["answers"]
    for label, row in results.items():
        assert len(row["answers"]) == len(reference)
        for index, (got, expected) in enumerate(zip(row["answers"], reference)):
            assert np.array_equal(got, expected), (
                f"{label} diverged from the unpartitioned answer on query {index}"
            )

    # updates stay adaptive: per-query tail cost far below a scan
    scan_cost = 3.0 * COLUMN_SIZE
    for label, row in results.items():
        tail = float(np.mean(row["per_query"][-max(1, QUERY_COUNT // 10):]))
        assert tail < scan_cost / 5, f"{label} tail cost degenerated to scans"

    # gradual policy: merge work per query bounded by the shared budget
    # (merge_batch per touched partition for the partitioned column)
    assert max(results["updatable-gradual"]["merges_per_query"]) <= MERGE_BATCH
    assert max(results["partitioned-8-gradual"]["merges_per_query"]) <= 8 * MERGE_BATCH

    # parallel fan-out does identical logical work
    assert results["partitioned-8-parallel"]["per_query"] == pytest.approx(
        results["partitioned-8"]["per_query"], rel=1e-9
    )


if __name__ == "__main__":
    values, results = run_experiment()
    for label, row in results.items():
        throughput = row["update_count"] / max(row["update_seconds"], 1e-9)
        print(f"{label:>24s}: {throughput:,.0f} updates/s, "
              f"total cost {float(np.sum(row['per_query'])):,.0f}")
