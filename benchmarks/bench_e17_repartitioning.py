"""E17 — adaptive repartitioning under skew: fixed vs adaptive partitions.

Source: the workload-driven physical-reorganisation instinct of the paper
applied at the partition layer (PR 3).  Fixed contiguous partitions are
vulnerable to skew: a skewed insert stream routes almost every insert into
one partition (bloating it until the parallel fan-out degenerates to a
single worker), and a zoom-in query stream concentrates all crack work the
same way.  With ``repartition=True`` hot partitions split at crack
boundaries; expected shape: under the skewed insert stream the *adaptive*
column keeps the max/mean partition row ratio below the configured
``split_threshold`` while the *fixed* column exceeds it — and every
configuration (fixed or adaptive, sequential or parallel) still returns
exactly the rowid sets of the unpartitioned oracle.
"""

import numpy as np
import pytest

from bench_common import SCALE, stats_snapshot
from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.core.partitioned import (
    PartitionedCrackedColumn,
    PartitionedUpdatableCrackedColumn,
)
from repro.cost.counters import CostCounters
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL

COLUMN_SIZE = max(2_000, int(30_000 * SCALE))
INSERT_COUNT = 2 * COLUMN_SIZE
QUERY_COUNT = max(30, int(200 * SCALE))
PARTITIONS = 4
SPLIT_THRESHOLD = 2.0
DOMAIN = 1_000_000
#: the skewed insert stream hammers the bottom tenth of the key domain
HOT_FRACTION = 0.1

UPDATABLE_VARIANTS = {
    "fixed": dict(),
    "adaptive": dict(repartition=True, split_threshold=SPLIT_THRESHOLD),
    "adaptive-parallel": dict(
        repartition=True, split_threshold=SPLIT_THRESHOLD, parallel=True
    ),
    "adaptive-gradual": dict(
        repartition=True, split_threshold=SPLIT_THRESHOLD, policy="gradual"
    ),
}


def make_values(seed=17):
    rng = np.random.default_rng(seed)
    return rng.integers(0, DOMAIN, size=COLUMN_SIZE).astype(np.int64)


def skewed_insert_stream(seed=18):
    """Inserts into the hot range interleaved with queries over the domain."""
    rng = np.random.default_rng(seed)
    inserts_per_query = max(1, INSERT_COUNT // QUERY_COUNT)
    stream = []
    for _ in range(QUERY_COUNT):
        for _ in range(inserts_per_query):
            stream.append(("insert", int(rng.integers(0, DOMAIN * HOT_FRACTION))))
        low = float(rng.integers(0, int(DOMAIN * 0.95)))
        stream.append(("query", (low, low + DOMAIN * 0.01)))
    return stream


def run_updatable(values, stream, options):
    column = PartitionedUpdatableCrackedColumn(
        values, partitions=PARTITIONS, **options
    )
    per_query, answers = [], []
    for kind, payload in stream:
        if kind == "insert":
            column.insert(payload)
        else:
            counters = CostCounters()
            result = column.search(payload[0], payload[1], counters)
            per_query.append(DEFAULT_MAIN_MEMORY_MODEL.cost(counters))
            answers.append(np.sort(result))
    sizes = [len(p) for p in column.partitions]
    if hasattr(column, "close"):
        column.close()
    return {
        "column": column,
        "per_query": per_query,
        "answers": answers,
        "max_rows": max(sizes),
        "mean_rows": sum(sizes) / len(sizes),
    }


def run_oracle(values, stream):
    column = UpdatableCrackedColumn(values)
    answers = []
    for kind, payload in stream:
        if kind == "insert":
            column.insert(payload)
        else:
            answers.append(np.sort(column.search(payload[0], payload[1])))
    return answers


def zoom_in_queries(count=QUERY_COUNT):
    low, high = 0.0, DOMAIN * 0.4
    queries = []
    for _ in range(count):
        width = max((high - low) * 0.93, 500.0)
        low = low + (high - low - width) / 2
        high = low + width
        queries.append((low, high))
    return queries


def run_read_only(values, queries, options):
    column = PartitionedCrackedColumn(values, partitions=PARTITIONS, **options)
    answers = []
    for low, high in queries:
        answers.append(np.sort(column.search(low, high)))
    if hasattr(column, "close"):
        column.close()
    return {"column": column, "answers": answers}


def run_experiment():
    values = make_values()
    stream = skewed_insert_stream()
    updatable = {
        label: run_updatable(values, stream, options)
        for label, options in UPDATABLE_VARIANTS.items()
    }
    oracle = run_oracle(values, stream)

    # read-only zoom-in over a position-correlated (clustered) column
    rng = np.random.default_rng(19)
    clustered = (
        np.arange(COLUMN_SIZE) * (DOMAIN // COLUMN_SIZE)
        + rng.integers(0, DOMAIN // 10, size=COLUMN_SIZE)
    ).astype(np.int64)
    queries = zoom_in_queries()
    whole = CrackedColumn(clustered)
    read_oracle = [np.sort(whole.search(low, high)) for low, high in queries]
    read_only = {
        "fixed": run_read_only(clustered, queries, {}),
        "adaptive": run_read_only(clustered, queries, {"repartition": True}),
        "adaptive-parallel": run_read_only(
            clustered, queries, {"repartition": True, "parallel": True}
        ),
    }
    return updatable, oracle, read_only, read_oracle


@pytest.mark.benchmark(group="e17-repartitioning")
def test_e17_repartitioning(benchmark):
    updatable, oracle, read_only, read_oracle = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print(
        f"\n=== E17: adaptive repartitioning under skew "
        f"({COLUMN_SIZE:,} rows, {INSERT_COUNT:,} skewed inserts, "
        f"{QUERY_COUNT} queries) ==="
    )
    print(
        f"{'variant':>20s} {'partitions':>10s} {'splits':>7s} {'merges':>7s} "
        f"{'max/mean rows':>14s} {'total cost':>14s}"
    )
    for label, row in updatable.items():
        column = row["column"]
        stats = stats_snapshot(column, "partition_splits", "partition_merges")
        print(
            f"{label:>20s} {column.partition_count:>10d} "
            f"{stats['partition_splits']:>7d} {stats['partition_merges']:>7d} "
            f"{row['max_rows'] / row['mean_rows']:>14.2f} "
            f"{float(np.sum(row['per_query'])):>14,.0f}"
        )
    for label, row in read_only.items():
        column = row["column"]
        stats = stats_snapshot(column, "partition_splits", "partition_merges")
        print(
            f"{'zoom-' + label:>20s} {column.partition_count:>10d} "
            f"{stats['partition_splits']:>7d} {stats['partition_merges']:>7d} "
            f"{'-':>14s} {'-':>14s}"
        )

    # every partitioned variant answers bit-identically to the oracle
    for label, row in updatable.items():
        assert len(row["answers"]) == len(oracle)
        for index, (got, expected) in enumerate(zip(row["answers"], oracle)):
            assert np.array_equal(got, expected), (
                f"{label} diverged from the unpartitioned oracle on query {index}"
            )
    for label, row in read_only.items():
        for index, (got, expected) in enumerate(zip(row["answers"], read_oracle)):
            assert np.array_equal(got, expected), (
                f"zoom-{label} diverged from the cracked-column oracle "
                f"on query {index}"
            )

    # the acceptance criterion: adaptive repartitioning bounds the skew the
    # fixed partitioning exhibits
    assert updatable["fixed"]["max_rows"] > SPLIT_THRESHOLD * updatable["fixed"]["mean_rows"], (
        "the skewed stream no longer provokes the hotspot the experiment measures"
    )
    for label in ("adaptive", "adaptive-parallel", "adaptive-gradual"):
        row = updatable[label]
        assert row["max_rows"] <= SPLIT_THRESHOLD * row["mean_rows"] + 1, (
            f"{label} failed to bound the partition skew"
        )
        assert stats_snapshot(row["column"], "partition_splits")["partition_splits"] > 0

    # parallel fan-out does identical logical work
    assert updatable["adaptive-parallel"]["per_query"] == pytest.approx(
        updatable["adaptive"]["per_query"], rel=1e-9
    )

    # the zoom-in stream provokes query-skew splits in the adaptive column
    assert stats_snapshot(
        read_only["adaptive"]["column"], "partition_splits"
    )["partition_splits"] > 0


if __name__ == "__main__":
    updatable, oracle, read_only, read_oracle = run_experiment()
    for label, row in updatable.items():
        column = row["column"]
        splits = stats_snapshot(column, "partition_splits")["partition_splits"]
        print(
            f"{label:>20s}: {column.partition_count} partitions, "
            f"{splits} splits, "
            f"max/mean rows {row['max_rows'] / row['mean_rows']:.2f}"
        )
