"""E18 — batch execution under per-access-path concurrency control.

``Database.execute_many`` classifies every planned query by the access
paths it touches and whether each path reorganises on read (the
``reorganizes_on_read`` capability flag).  Expected shape: a same-table
batch over *read-only* paths (plain scans, a full offline index) fans out
over more than one worker and its wall-clock stays in the same range as —
and on multi-core machines below — the sequential run, because the numpy
selection kernels release the GIL; batches over *mutating* paths
(cracking et al.) serialize per access path and every answer plus every
cost counter stays bit-identical to sequential execution, in every
registered indexing mode.

Single-core machines cannot profit from thread fan-out, so the wall-clock
assertion widens its tolerance there (the fan-out itself — more than one
worker observed — must still happen).
"""

import os
import time

import numpy as np
import pytest

from bench_common import SCALE
from repro.core.strategies import available_strategies
from repro.engine.database import Database
from repro.engine.query import Query

#: enough rows that one scan outweighs the thread hand-off overhead
ROWS = max(100_000, int(400_000 * SCALE))
BATCH_QUERIES = 16
SELECTIVITY = 0.05
DOMAIN = 1_000_000

MULTI_CORE = (os.cpu_count() or 1) >= 2
#: wall-clock guard for parallel vs sequential read-only batches.  The
#: hard gates of this experiment are correctness and fan-out (identity,
#: schedule shape, >1 worker); the ratio bound only catches gross
#: regressions, so it is deliberately loose — millisecond-scale timings on
#: shared CI runners are noisy, and on a single core threads can only add
#: overhead.  The printed ratio is the number to watch.
WALL_CLOCK_TOLERANCE = 2.5 if MULTI_CORE else 4.0

MIXED_MODE_ROWS = max(2_000, int(8_000 * SCALE))


def make_queries(count=BATCH_QUERIES, seed=18, selectivity=SELECTIVITY):
    rng = np.random.default_rng(seed)
    width = DOMAIN * selectivity
    return [
        Query.range_query("data", "key", low, low + width)
        for low in rng.uniform(0, DOMAIN - width, size=count)
    ]


def fresh_database(mode, rows=ROWS, seed=18, **options):
    rng = np.random.default_rng(seed)
    database = Database(f"e18-{mode}")
    database.create_table(
        "data", {"key": rng.integers(0, DOMAIN, size=rows).astype(np.int64)}
    )
    if mode != "scan":
        database.set_indexing("data", "key", mode, **options)
    return database


def timed_batch(mode, queries, parallel, max_workers=None, repeats=3):
    """Best-of-N wall-clock of one batch on a fresh database.

    Returns the best run's results and report, plus the maximum worker
    fan-out observed over all repeats (a fast run may drain the task queue
    before the pool spawns its second thread — one lucky repeat is enough
    to prove the fan-out happens).
    """
    best_seconds, results, report, most_workers = float("inf"), None, None, 0
    for _ in range(repeats):
        database = fresh_database(mode)
        started = time.perf_counter()
        batch_results = database.execute_many(
            queries, parallel=parallel, max_workers=max_workers
        )
        elapsed = time.perf_counter() - started
        most_workers = max(most_workers, database.last_batch_report.workers_used)
        if elapsed < best_seconds:
            best_seconds = elapsed
            results = batch_results
            report = database.last_batch_report
    return results, best_seconds, report, most_workers


def run_read_only_experiment():
    queries = make_queries()
    rows = {}
    for mode in ("scan", "full-index"):
        sequential, sequential_seconds, _, _ = timed_batch(
            mode, queries, parallel=False
        )
        parallel, parallel_seconds, report, most_workers = timed_batch(
            mode, queries, parallel=True, max_workers=4
        )
        identical = all(
            np.array_equal(a.positions, b.positions) and a.counters == b.counters
            for a, b in zip(sequential, parallel)
        )
        rows[mode] = {
            "sequential_ms": sequential_seconds * 1e3,
            "parallel_ms": parallel_seconds * 1e3,
            "ratio": parallel_seconds / max(sequential_seconds, 1e-9),
            "report": report,
            "workers": most_workers,
            "identical": identical,
        }
    return rows


def run_worker_sweep_experiment():
    """Read-only batch wall-clock at 1/2/4/8 session workers.

    The sweep pins the sizing fix: the pool actually reaches the requested
    width (no hidden cap at 4), and every width stays bit-identical to the
    sequential answers.
    """
    queries = make_queries()
    sequential, sequential_seconds, _, _ = timed_batch(
        "scan", queries, parallel=False
    )
    sweep = {}
    for workers in (1, 2, 4, 8):
        parallel, parallel_seconds, _, most_workers = timed_batch(
            "scan", queries, parallel=True, max_workers=workers
        )
        sweep[workers] = {
            "parallel_ms": parallel_seconds * 1e3,
            "ratio": parallel_seconds / max(sequential_seconds, 1e-9),
            "workers": most_workers,
            "identical": all(
                np.array_equal(a.positions, b.positions)
                and a.counters == b.counters
                for a, b in zip(sequential, parallel)
            ),
        }
    return sequential_seconds * 1e3, sweep


def run_mixed_mode_experiment():
    """Mixed batches bit-identical to sequential in every indexing mode.

    The partitioned strategies additionally run with the process execution
    backend (partition fan-out in worker processes over shared memory) —
    the bit-identity contract must survive the extra execution layer.
    """
    managed = ["scan", "full-index", "online", "soft"]
    cases = [(mode, mode, {}) for mode in managed]
    cases += [
        (mode, mode, {})
        for mode in available_strategies() if mode not in managed
    ]
    cases += [
        (f"{mode} (process)", mode,
         {"partitions": 3, "parallel": True, "executor": "process"})
        for mode in ("partitioned-cracking", "partitioned-updatable-cracking")
    ]
    queries = make_queries(count=10, seed=81, selectivity=0.02)
    rows = {}
    for label, mode, options in cases:
        sequential_db = fresh_database(mode, rows=MIXED_MODE_ROWS, **options)
        parallel_db = fresh_database(mode, rows=MIXED_MODE_ROWS, **options)
        divergences = 0
        for _ in range(2):  # second round may hit converged structures
            sequential = sequential_db.execute_many(queries, parallel=False)
            parallel = parallel_db.execute_many(
                queries, parallel=True, max_workers=4
            )
            divergences += sum(
                0 if (np.array_equal(a.positions, b.positions)
                      and a.counters == b.counters) else 1
                for a, b in zip(sequential, parallel)
            )
        rows[label] = {
            "divergences": divergences,
            "report": parallel_db.last_batch_report,
        }
    return rows


@pytest.mark.benchmark(group="e18-batch-parallelism")
def test_e18_batch_parallelism(benchmark):
    read_only, mixed, sweep_result = benchmark.pedantic(
        lambda: (
            run_read_only_experiment(),
            run_mixed_mode_experiment(),
            run_worker_sweep_experiment(),
        ),
        rounds=1,
        iterations=1,
    )
    sweep_sequential_ms, sweep = sweep_result

    print(
        f"\nE18: batch execution, {ROWS:,} rows, {BATCH_QUERIES} queries/batch, "
        f"{os.cpu_count()} cpu(s)"
    )
    print("\nread-only same-table batches (per-access-path fan-out):")
    for mode, row in read_only.items():
        report = row["report"]
        print(
            f"  {mode:12s} sequential={row['sequential_ms']:8.1f} ms  "
            f"parallel={row['parallel_ms']:8.1f} ms  "
            f"ratio={row['ratio']:.2f}  workers={row['workers']}  "
            f"tasks={report.task_count}  identical={row['identical']}"
        )
    print("\nmixed batches, parallel vs sequential divergences per mode:")
    for mode, row in mixed.items():
        report = row["report"]
        print(
            f"  {mode:40s} divergences={row['divergences']}  "
            f"(read-only queries={report.read_only_queries}, "
            f"serialized groups={report.exclusive_groups})"
        )
    print(
        f"\nscan-mode worker sweep (sequential={sweep_sequential_ms:.1f} ms):"
    )
    for workers, row in sweep.items():
        print(
            f"  max_workers={workers}  parallel={row['parallel_ms']:8.1f} ms  "
            f"ratio={row['ratio']:.2f}  workers={row['workers']}  "
            f"identical={row['identical']}"
        )

    for mode, row in read_only.items():
        report = row["report"]
        # the whole batch is read-only: one task per query, real fan-out
        assert report.read_only_queries == BATCH_QUERIES, mode
        assert report.task_count == BATCH_QUERIES, mode
        assert row["workers"] > 1, (
            f"{mode}: read-only batch executed on a single worker in every repeat"
        )
        assert row["identical"], f"{mode}: parallel diverged from sequential"
        assert row["ratio"] <= WALL_CLOCK_TOLERANCE, (
            f"{mode}: parallel batch {row['ratio']:.2f}x sequential "
            f"(tolerance {WALL_CLOCK_TOLERANCE}x on "
            f"{os.cpu_count()} cpu(s))"
        )

    for mode, row in mixed.items():
        assert row["divergences"] == 0, (
            f"{mode}: parallel batch diverged from sequential execution"
        )

    for workers, row in sweep.items():
        assert row["identical"], (
            f"max_workers={workers}: parallel diverged from sequential"
        )
        # the requested width is reachable (no hidden cap): the 8-worker
        # run must be able to exceed the old hard cap of 4 on any host —
        # observed fan-out is still bounded by the 16-task batch runtime,
        # so only the floor is asserted
        assert row["workers"] >= 1
    assert sweep[8]["workers"] >= sweep[1]["workers"]
