"""E19 — concurrent sessions: readers keep fanning out while DML streams.

The session front door (``repro.engine.session``) makes the safe,
concurrent path the default one: every query holds its table's gate
shared and the locks of the mutating access paths it touches, every DML
operation holds the gate exclusive.  This experiment drives that protocol
the way the tutorial frames live workloads — queries never stop arriving
while updates trickle in — and checks two things:

* **identity**: with the operation journal enabled, replaying the
  linearized history sequentially on a fresh database reproduces every
  query result (positions *and* cost counters) and every assigned rowid
  bit for bit — the concurrent run is equivalent to a sequential
  ordering of the same operations;
* **wall-clock**: the concurrent run stays in the same range as the
  sequential replay (readers fan out; DML fences are short).  As in E18
  the ratio bound is deliberately loose — identity is the hard gate, the
  printed numbers are what to watch.

Two shapes are exercised: pipelined single queries from several reader
sessions against a scan-only table while a writer session streams
inserts/deletes, and ``execute_many`` batches over a cracking column with
a DML stream fencing on the gate mid-batch (``fenced_writes``).
"""

import os
import threading
import time

import numpy as np
import pytest

from bench_common import SCALE
from repro.engine.database import Database
from repro.engine.query import Query

ROWS = max(40_000, int(150_000 * SCALE))
DOMAIN = 1_000_000
READER_SESSIONS = 3
QUERIES_PER_READER = 10
DML_OPS = 40
BATCH_ROUNDS = 3
BATCH_QUERIES = 12
SELECTIVITY = 0.05

MULTI_CORE = (os.cpu_count() or 1) >= 2
#: concurrent wall-clock vs sequential replay of the same linearized ops.
#: Identity is the hard gate; this only catches gross regressions (fair
#:-gate convoys, lock thrash).  Single-core machines pay thread overhead
#: and DML fences without any fan-out benefit, so the bound widens.
WALL_CLOCK_TOLERANCE = 3.0 if MULTI_CORE else 6.0


def fresh_database(mode, seed=19, **options):
    rng = np.random.default_rng(seed)
    database = Database(f"e19-{mode}")
    database.create_table(
        "data",
        {
            "key": rng.integers(0, DOMAIN, size=ROWS).astype(np.int64),
            "payload": rng.uniform(0, 100, size=ROWS),
        },
    )
    if mode != "scan":
        database.set_indexing("data", "key", mode, **options)
    return database


def replay_journal(journal, database):
    """Apply a linearized history sequentially; returns per-op divergences.

    Every query is re-executed through the (sequential) front door and
    compared bit for bit — positions, projected columns, aggregates and
    cost counters; every DML op must land on the recorded rowid.
    """
    divergences = []
    for record in journal:
        if record.kind == "query":
            replayed = database.execute(record.payload)
            original = record.result
            same = (
                np.array_equal(replayed.positions, original.positions)
                and replayed.counters == original.counters
                and set(replayed.columns) == set(original.columns)
                and all(
                    np.array_equal(replayed.columns[name], original.columns[name])
                    for name in original.columns
                )
                and replayed.aggregates == original.aggregates
            )
            if not same:
                divergences.append(record.sequence)
        elif record.kind == "insert":
            rowid = database.insert_row(record.table, record.payload)
            if rowid != record.result:
                divergences.append(record.sequence)
        elif record.kind == "delete":
            database.delete_row(record.table, record.payload)
        elif record.kind == "update":
            old_rowid, values = record.payload
            rowid = database.update_row(record.table, old_rowid, values)
            if rowid != record.result:
                divergences.append(record.sequence)
    return divergences


def run_reader_fanout_experiment():
    """Pipelined readers from several sessions + a fenced DML stream."""
    database = fresh_database("scan")
    database.record_journal = True
    rng = np.random.default_rng(77)
    width = DOMAIN * SELECTIVITY
    reader_plans = [
        [
            Query.range_query("data", "key", low, low + width)
            for low in rng.uniform(0, DOMAIN - width, size=QUERIES_PER_READER)
        ]
        for _ in range(READER_SESSIONS)
    ]
    dml_values = rng.integers(0, DOMAIN, size=DML_OPS)
    errors = []

    def reader(plan):
        try:
            with database.session(max_workers=2) as session:
                futures = [session.submit(query) for query in plan]
                for future in futures:
                    future.result()
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    def writer():
        try:
            with database.session(name="dml-stream") as session:
                for step, value in enumerate(dml_values):
                    if step % 4 == 3:
                        session.delete_row("data", step)
                    else:
                        session.insert_row(
                            "data", {"key": int(value), "payload": 0.5}
                        )
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=reader, args=(plan,)) for plan in reader_plans
    ]
    threads.append(threading.Thread(target=writer))
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    concurrent_seconds = time.perf_counter() - started

    journal = database.operation_journal()
    oracle = fresh_database("scan")
    started = time.perf_counter()
    divergences = replay_journal(journal, oracle)
    replay_seconds = time.perf_counter() - started
    workers = {
        record.result.worker for record in journal if record.kind == "query"
    }
    return {
        "errors": errors,
        "operations": len(journal),
        "concurrent_ms": concurrent_seconds * 1e3,
        "replay_ms": replay_seconds * 1e3,
        "ratio": concurrent_seconds / max(replay_seconds, 1e-9),
        "divergences": divergences,
        "workers": len(workers),
        "fenced_writes": database.table_gate("data").fenced_writes,
    }


def run_dml_during_batch_experiment():
    """Parallel batches over a cracking column + a concurrent DML stream."""
    database = fresh_database("cracking")
    database.record_journal = True
    rng = np.random.default_rng(78)
    width = DOMAIN * SELECTIVITY
    batches = [
        [
            Query.range_query("data", "key", low, low + width)
            for low in rng.uniform(0, DOMAIN - width, size=BATCH_QUERIES)
        ]
        for _ in range(BATCH_ROUNDS)
    ]
    dml_values = rng.integers(0, DOMAIN, size=DML_OPS)
    errors = []
    batch_running = threading.Event()

    def batch_worker():
        try:
            with database.session(name="batch-session") as session:
                for batch in batches:
                    batch_running.set()
                    session.execute_many(batch, parallel=True, max_workers=4)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    def dml_worker():
        batch_running.wait(timeout=10)
        try:
            with database.session(name="dml-during-batch") as session:
                for step, value in enumerate(dml_values):
                    if step % 5 == 4:
                        session.delete_row("data", step)
                    else:
                        session.insert_row(
                            "data", {"key": int(value), "payload": 1.5}
                        )
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=batch_worker),
        threading.Thread(target=dml_worker),
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    concurrent_seconds = time.perf_counter() - started

    journal = database.operation_journal()
    oracle = fresh_database("cracking")
    divergences = replay_journal(journal, oracle)
    return {
        "errors": errors,
        "operations": len(journal),
        "concurrent_ms": concurrent_seconds * 1e3,
        "divergences": divergences,
        "fenced_writes": database.table_gate("data").fenced_writes,
        "last_report": database.last_batch_report,
    }


@pytest.mark.benchmark(group="e19-concurrent-sessions")
def test_e19_concurrent_sessions(benchmark):
    fanout, mid_batch = benchmark.pedantic(
        lambda: (run_reader_fanout_experiment(), run_dml_during_batch_experiment()),
        rounds=1,
        iterations=1,
    )

    print(
        f"\nE19: concurrent sessions, {ROWS:,} rows, "
        f"{READER_SESSIONS} reader sessions x {QUERIES_PER_READER} queries, "
        f"{DML_OPS} DML ops, {os.cpu_count()} cpu(s)"
    )
    print(
        f"  readers + DML stream : concurrent={fanout['concurrent_ms']:8.1f} ms  "
        f"replay={fanout['replay_ms']:8.1f} ms  ratio={fanout['ratio']:.2f}  "
        f"workers={fanout['workers']}  dml-fences={fanout['fenced_writes']}"
    )
    print(
        f"  DML during batches   : concurrent={mid_batch['concurrent_ms']:8.1f} ms  "
        f"ops={mid_batch['operations']}  dml-fences={mid_batch['fenced_writes']}"
    )

    assert not fanout["errors"], f"session threads failed: {fanout['errors']}"
    assert not mid_batch["errors"], f"session threads failed: {mid_batch['errors']}"

    expected_ops = READER_SESSIONS * QUERIES_PER_READER + DML_OPS
    assert fanout["operations"] == expected_ops
    assert mid_batch["operations"] == BATCH_ROUNDS * BATCH_QUERIES + DML_OPS

    # identity: the concurrent interleaving replays bit for bit
    assert fanout["divergences"] == [], (
        f"sequential replay diverged at sequences {fanout['divergences']}"
    )
    assert mid_batch["divergences"] == [], (
        f"sequential replay diverged at sequences {mid_batch['divergences']}"
    )

    # the pipelined readers really fanned out over more than one thread
    assert fanout["workers"] > 1, "all session queries ran on a single worker"

    assert fanout["ratio"] <= WALL_CLOCK_TOLERANCE, (
        f"concurrent sessions {fanout['ratio']:.2f}x the sequential replay "
        f"(tolerance {WALL_CLOCK_TOLERANCE}x on {os.cpu_count()} cpu(s))"
    )
