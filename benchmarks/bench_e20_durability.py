"""E20 smoke: durability overhead and recovery cost for CI drift detection.

Runs a fixed-size DML stream (inserts/deletes/updates through the session
front door, cracking the key column) under four durability settings —

* ``none``    — no data directory at all (the default engine config);
* ``off``     — journaling to disk, flushing left to the OS;
* ``batch``   — group commit (one fsync per ``batch_size`` appends);
* ``always``  — one fsync per DML commit

— then crash-recovers the ``always`` directory and measures the recovery.

Two modes::

    python benchmarks/bench_e20_durability.py --write   # (re)write baseline
    python benchmarks/bench_e20_durability.py --check   # diff against it

``--check`` enforces the same split of contracts as ``smoke_e01``:

* **deterministic facts are compared exactly** — journal records
  appended, fsync calls issued, operations replayed by recovery, journal
  records scanned.  Any drift is a real change to the write-ahead
  protocol and must refresh the baseline in the same commit;
* **wall-clock is compared with a generous relative tolerance**
  (default ±100 %, override with ``REPRO_E20_TOLERANCE``) — fsync
  latency is the most machine-dependent number in the whole benchmark
  suite (tmpfs vs SSD vs CI-shared disk), so the band only catches gross
  regressions such as an accidental per-operation sync in batch mode.

The baseline lives at the repository root as ``BENCH_e20_durability.json``.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

#: rows in the initial table (fixed: the smoke ignores REPRO_BENCH_SCALE)
E20_ROWS = 4_000

#: DML operations in the measured stream
E20_DML_OPS = 300

#: durability settings swept, in cost order
E20_SETTINGS = ("none", "off", "batch", "always")

#: default relative wall-clock tolerance for --check
DEFAULT_TOLERANCE = 1.0

#: wall-clock measurability floor (seconds); see smoke_e01
MIN_MEASURABLE_SECONDS = 0.02

#: timing repeats; deterministic facts are asserted identical across them
E20_REPEATS = 3

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_e20_durability.json"
)

DOMAIN = 100_000


def _run_stream(database):
    import numpy as np

    rng = np.random.default_rng(20)
    live = list(range(E20_ROWS))
    started = time.perf_counter()
    with database.session(name="e20") as session:
        for _ in range(E20_DML_OPS):
            roll = rng.random()
            if roll < 0.5 or not live:
                live.append(
                    session.insert_row(
                        "data",
                        {"key": int(rng.integers(0, DOMAIN)), "payload": 1.0},
                    )
                )
            elif roll < 0.75:
                session.delete_row(
                    "data", live.pop(int(rng.integers(0, len(live))))
                )
            else:
                victim = live.pop(int(rng.integers(0, len(live))))
                live.append(
                    session.update_row(
                        "data", victim, {"key": int(rng.integers(0, DOMAIN))}
                    )
                )
    return time.perf_counter() - started


def _build(setting, data_dir):
    import numpy as np

    from repro.durability.manager import DurabilityConfig
    from repro.engine.database import Database

    rng = np.random.default_rng(19)
    if setting == "none":
        database = Database("e20")
    else:
        database = Database(
            "e20",
            data_dir=data_dir,
            durability=DurabilityConfig(sync=setting),
        )
    database.create_table(
        "data",
        {
            "key": rng.integers(0, DOMAIN, size=E20_ROWS).astype(np.int64),
            "payload": rng.uniform(0, 100, size=E20_ROWS),
        },
    )
    database.set_indexing("data", "key", "cracking")
    return database


def _run_once() -> dict:
    from repro.engine.database import Database

    settings = {}
    recovery = None
    with tempfile.TemporaryDirectory(prefix="bench-e20-") as scratch:
        scratch = Path(scratch)
        for setting in E20_SETTINGS:
            data_dir = scratch / setting
            database = _build(setting, data_dir)
            elapsed = _run_stream(database)
            manager = database.durability
            stats = manager.stats() if manager is not None else {}
            database.close()
            settings[setting] = {
                "wall_clock_seconds": round(elapsed, 6),
                "journal_records": int(stats.get("appended_records", 0)),
                "fsync_calls": int(stats.get("fsync_calls", 0)),
            }

        started = time.perf_counter()
        recovered = Database.open(scratch / "always")
        recovery_elapsed = time.perf_counter() - started
        report = recovered.recovery_report
        recovery = {
            "wall_clock_seconds": round(recovery_elapsed, 6),
            "wal_records": int(report.wal_records),
            "replayed_operations": int(report.replayed_total),
        }
        recovered.close()
    return {"settings": settings, "recovery": recovery}


def run_bench() -> dict:
    """The durability sweep at smoke scale; returns the serializable
    record (wall-clock is the per-setting minimum over repeats)."""
    record = _run_once()
    for _ in range(E20_REPEATS - 1):
        repeat = _run_once()
        for setting, current in record["settings"].items():
            again = repeat["settings"][setting]
            for fact in ("journal_records", "fsync_calls"):
                assert again[fact] == current[fact], (
                    f"{setting}: {fact} differs across repeats — the "
                    f"write-ahead protocol is supposed to be deterministic"
                )
            current["wall_clock_seconds"] = min(
                current["wall_clock_seconds"], again["wall_clock_seconds"]
            )
        for fact in ("wal_records", "replayed_operations"):
            assert repeat["recovery"][fact] == record["recovery"][fact]
        record["recovery"]["wall_clock_seconds"] = min(
            record["recovery"]["wall_clock_seconds"],
            repeat["recovery"]["wall_clock_seconds"],
        )
    record["rows"] = E20_ROWS
    record["dml_ops"] = E20_DML_OPS
    return record


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Compare a fresh run against the baseline; returns failure messages."""
    failures = []
    if set(current["settings"]) != set(baseline["settings"]):
        failures.append(
            f"setting sweep changed: baseline {sorted(baseline['settings'])} "
            f"vs current {sorted(current['settings'])}"
        )
        return failures
    for key in ("rows", "dml_ops"):
        if current[key] != baseline[key]:
            failures.append(
                f"smoke scale changed ({key}: {baseline[key]} -> "
                f"{current[key]}); refresh the baseline deliberately"
            )

    def wall_budget(then_seconds):
        return max(then_seconds, MIN_MEASURABLE_SECONDS) * (1.0 + tolerance)

    for setting, now in current["settings"].items():
        then = baseline["settings"][setting]
        for fact in ("journal_records", "fsync_calls"):
            if now[fact] != then[fact]:
                failures.append(
                    f"{setting}: {fact} drifted {then[fact]} -> {now[fact]} "
                    f"(the write-ahead protocol is deterministic; a real "
                    f"protocol change must refresh the baseline)"
                )
        if now["wall_clock_seconds"] > wall_budget(then["wall_clock_seconds"]):
            failures.append(
                f"{setting}: wall-clock regressed "
                f"{then['wall_clock_seconds']:.4f}s -> "
                f"{now['wall_clock_seconds']:.4f}s "
                f"(> +{tolerance:.0%} over max(baseline, floor))"
            )
    for fact in ("wal_records", "replayed_operations"):
        if current["recovery"][fact] != baseline["recovery"][fact]:
            failures.append(
                f"recovery: {fact} drifted {baseline['recovery'][fact]} -> "
                f"{current['recovery'][fact]}"
            )
    then_recovery = baseline["recovery"]["wall_clock_seconds"]
    now_recovery = current["recovery"]["wall_clock_seconds"]
    if now_recovery > wall_budget(then_recovery):
        failures.append(
            f"recovery: wall-clock regressed {then_recovery:.4f}s -> "
            f"{now_recovery:.4f}s (> +{tolerance:.0%} over max(baseline, "
            f"floor))"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_e20_durability",
        description="durability-overhead and recovery smoke for CI",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true",
        help=f"write the baseline to {BASELINE_PATH.name}",
    )
    action.add_argument(
        "--check", action="store_true",
        help="run and compare against the checked-in baseline",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="JSON",
        help="baseline path (default: repo root BENCH_e20_durability.json)",
    )
    args = parser.parse_args(argv)

    record = run_bench()
    baseline_path = Path(args.baseline)
    if args.write:
        baseline_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"bench_e20: baseline written to {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"bench_e20: no baseline at {baseline_path}", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    tolerance = float(
        os.environ.get("REPRO_E20_TOLERANCE", str(DEFAULT_TOLERANCE))
    )
    failures = check(record, baseline, tolerance)
    for message in failures:
        print(f"bench_e20: {message}", file=sys.stderr)
    if failures:
        return 1
    none_wall = record["settings"]["none"]["wall_clock_seconds"]
    always_wall = record["settings"]["always"]["wall_clock_seconds"]
    print(
        f"bench_e20: OK — protocol facts identical, wall-clock within "
        f"±{tolerance:.0%} (none {none_wall:.3f}s -> always "
        f"{always_wall:.3f}s, recovery "
        f"{record['recovery']['wall_clock_seconds']:.3f}s for "
        f"{record['recovery']['replayed_operations']} replayed ops)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
