"""Pytest configuration for the experiment benchmarks."""

import sys
from pathlib import Path

# make bench_common importable regardless of how pytest resolves rootdir
sys.path.insert(0, str(Path(__file__).parent))
