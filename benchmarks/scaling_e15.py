"""E15 scaling smoke: executor backends × worker counts, for CI drift detection.

Runs the partitioned-cracking fan-out over one fixed workload under every
execution configuration — sequential, then the ``thread`` and ``process``
backends each at 1/2/4/8 workers — and records, per configuration, the
cumulative logical counters and best-of-N wall-clock.  Like
``smoke_e01.py`` the scale is fixed and tiny (independent of
``REPRO_BENCH_SCALE``), and ``--check`` enforces two contracts:

* **logical counters are compared exactly**, both against the baseline and
  *across configurations within one run*: the executor seam's core promise
  is that logical cost accounting is execution-mode independent, so every
  backend × worker-count cell must report bit-identical totals;
* **wall-clock is compared with a relative tolerance** (default ±50 %,
  override with ``REPRO_SMOKE_TOLERANCE``), per configuration, against the
  baseline's best-of-N minimum.  The band is wider than ``smoke_e01``'s:
  the process cells are dominated by IPC and pool scheduling, which are
  far noisier on shared runners than the compute-bound smoke cells — the
  exact counter identity above is the precise regression gate here, the
  wall-clock band only catches gross slowdowns.

Parallel speedup itself is a property of the *host*: the baseline records
``cpu_count`` and the per-backend speedup at 4 workers, and ``--check``
only enforces the process-backend >= 2x speedup claim on hosts with at
least 4 CPUs — on fewer cores real CPU parallelism is physically
unavailable and the numbers are recorded as observed, not gated.

The baseline lives at the repository root as ``BENCH_e15_scaling.json``.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

#: rows in the smoke column (fixed: the smoke ignores REPRO_BENCH_SCALE)
SMOKE_ROWS = 8_000

#: queries in the smoke workload
SMOKE_QUERIES = 60

#: partitions of the column under test (worker counts sweep below it)
SMOKE_PARTITIONS = 8

#: worker counts swept for each backend
WORKER_COUNTS = (1, 2, 4, 8)

#: default relative wall-clock tolerance for --check (see module docstring
#: for why it is wider than smoke_e01's)
DEFAULT_TOLERANCE = 0.5

#: wall-clock measurability floor (seconds).  Higher than smoke_e01's:
#: the thread/seq cells finish in a few tens of milliseconds where pool
#: hand-off and scheduler noise dominate, so their budgets come from the
#: floor; the process cells are slow enough to be compared directly
MIN_MEASURABLE_SECONDS = 0.05

#: timing repeats; counters must be identical across repeats (asserted)
SMOKE_REPEATS = 3

#: CPUs needed before the process backend can physically deliver the 2x
#: speedup gate at 4 workers; below this the speedup is recorded, not gated
SPEEDUP_GATE_CPUS = 4

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_e15_scaling.json"


def _configurations():
    configs = [("seq", {"parallel": False})]
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            configs.append(
                (
                    f"{backend}-{workers}",
                    {"parallel": True, "executor": backend,
                     "max_workers": workers},
                )
            )
    return configs


def _workload():
    import numpy as np

    from repro.workloads.generators import generate_column_data

    values = generate_column_data(SMOKE_ROWS, 0, 1_000_000, seed=15)
    rng = np.random.default_rng(151)
    width = 1_000_000 * 0.02
    queries = [
        (float(low), float(low + width))
        for low in rng.uniform(0, 1_000_000 - width, size=SMOKE_QUERIES)
    ]
    return values, queries


def _run_config(values, queries, options) -> dict:
    from repro.core.partitioned import PartitionedCrackedColumn
    from repro.cost.counters import CostCounters

    counters = CostCounters()
    result_rows = 0
    with PartitionedCrackedColumn(
        values, partitions=SMOKE_PARTITIONS, **options
    ) as column:
        started = time.perf_counter()
        for low, high in queries:
            result_rows += len(column.search(low, high, counters))
        elapsed = time.perf_counter() - started
    return {
        "comparisons": int(counters.comparisons),
        "movements": int(counters.tuples_moved),
        "scans": int(counters.tuples_scanned),
        "result_rows": int(result_rows),
        "wall_clock_seconds": round(elapsed, 6),
    }


COUNTER_KEYS = ("comparisons", "movements", "scans", "result_rows")


def run_scaling() -> dict:
    """Every configuration at smoke scale; returns the serializable record."""
    values, queries = _workload()
    configurations = {}
    for _ in range(SMOKE_REPEATS):
        for label, options in _configurations():
            sample = _run_config(values, queries, options)
            current = configurations.get(label)
            if current is None:
                configurations[label] = sample
                continue
            for key in COUNTER_KEYS:
                assert sample[key] == current[key], (
                    f"{label}: {key} differs across repeats — the smoke "
                    f"workload is supposed to be deterministic"
                )
            current["wall_clock_seconds"] = min(
                current["wall_clock_seconds"], sample["wall_clock_seconds"]
            )
    # the seam's core contract: identical logical totals in every cell
    reference = configurations["seq"]
    for label, sample in configurations.items():
        for key in COUNTER_KEYS:
            assert sample[key] == reference[key], (
                f"{label}: {key} = {sample[key]} diverges from sequential "
                f"{reference[key]} — logical cost accounting must be "
                f"execution-mode independent"
            )
    sequential_wall = configurations["seq"]["wall_clock_seconds"]
    speedups = {
        backend: round(
            sequential_wall
            / max(configurations[f"{backend}-4"]["wall_clock_seconds"], 1e-9),
            3,
        )
        for backend in ("thread", "process")
    }
    return {
        "rows": SMOKE_ROWS,
        "queries": SMOKE_QUERIES,
        "partitions": SMOKE_PARTITIONS,
        "cpu_count": os.cpu_count() or 1,
        "speedup_at_4_workers": speedups,
        "configurations": configurations,
    }


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Compare a fresh run against the baseline; returns failure messages."""
    failures = []
    if set(current["configurations"]) != set(baseline["configurations"]):
        failures.append(
            f"configuration set changed: baseline "
            f"{sorted(baseline['configurations'])} vs current "
            f"{sorted(current['configurations'])}"
        )
        return failures
    for key in ("rows", "queries", "partitions"):
        if current[key] != baseline[key]:
            failures.append(
                f"smoke scale changed ({key}: {baseline[key]} -> "
                f"{current[key]}); refresh the baseline deliberately"
            )
    for label, now in current["configurations"].items():
        then = baseline["configurations"][label]
        for key in COUNTER_KEYS:
            if now[key] != then[key]:
                failures.append(
                    f"{label}: {key} drifted {then[key]} -> {now[key]} "
                    f"(logical counters are deterministic; a real change "
                    f"must refresh the baseline)"
                )
        before_wall = then["wall_clock_seconds"]
        after_wall = now["wall_clock_seconds"]
        budget = max(before_wall, MIN_MEASURABLE_SECONDS) * (1.0 + tolerance)
        if before_wall > 0 and after_wall > budget:
            failures.append(
                f"{label}: wall-clock regressed {before_wall:.4f}s -> "
                f"{after_wall:.4f}s (> {budget:.4f}s budget: "
                f"+{tolerance:.0%} over max(baseline, "
                f"{MIN_MEASURABLE_SECONDS}s floor))"
            )
    cpus = current["cpu_count"]
    process_speedup = current["speedup_at_4_workers"]["process"]
    if cpus >= SPEEDUP_GATE_CPUS and process_speedup < 2.0:
        failures.append(
            f"process backend speedup at 4 workers is {process_speedup:.2f}x "
            f"on a {cpus}-cpu host (>= 2x expected with "
            f">= {SPEEDUP_GATE_CPUS} cpus)"
        )
    elif cpus < SPEEDUP_GATE_CPUS:
        print(
            f"scaling_e15: note — host has {cpus} cpu(s); the process-backend "
            f"2x speedup gate needs >= {SPEEDUP_GATE_CPUS} and is skipped "
            f"(observed {process_speedup:.2f}x)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="scaling_e15",
        description="executor-backend scaling smoke for CI drift detection",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true",
        help=f"write the baseline to {BASELINE_PATH.name}",
    )
    action.add_argument(
        "--check", action="store_true",
        help="run and compare against the checked-in baseline",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="JSON",
        help="baseline path (default: repository root BENCH_e15_scaling.json)",
    )
    args = parser.parse_args(argv)

    record = run_scaling()
    baseline_path = Path(args.baseline)
    if args.write:
        baseline_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"scaling_e15: baseline written to {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"scaling_e15: no baseline at {baseline_path}", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    tolerance = float(
        os.environ.get("REPRO_SMOKE_TOLERANCE", str(DEFAULT_TOLERANCE))
    )
    failures = check(record, baseline, tolerance)
    for message in failures:
        print(f"scaling_e15: {message}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"scaling_e15: OK — counters identical across "
        f"{len(record['configurations'])} executor configurations, "
        f"wall-clock within ±{tolerance:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
