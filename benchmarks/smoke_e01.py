"""E1 smoke: a tiny, deterministic slice of bench_e01 for CI drift detection.

Runs the E1 strategy comparison (scan / sort-first / full-index / cracking /
adaptive-merging) at a fixed tiny scale — independent of
``REPRO_BENCH_SCALE`` — and records, per strategy, the cumulative logical
counters (comparisons, tuple movements, tuples scanned) and the total
wall-clock seconds.

Two modes::

    python benchmarks/smoke_e01.py --write            # (re)write the baseline
    python benchmarks/smoke_e01.py --check            # diff against it

``--check`` enforces two different contracts, matching what each number
means:

* **logical counters are compared exactly** — they are deterministic by
  design (fixed seed, fixed scale, machine-independent), so *any* drift is
  a real change to the cost model or the kernels and must be accompanied
  by a baseline refresh in the same commit;
* **wall-clock is compared with a relative tolerance** (default ±25 %,
  override with ``REPRO_SMOKE_TOLERANCE``) — it bounds gross performance
  regressions without flaking on machine noise; both the baseline and
  each check take the per-strategy minimum over ``SMOKE_REPEATS`` runs,
  which is the standard noise-robust estimator for tiny workloads.

The baseline lives at the repository root as ``BENCH_e01_smoke.json``.
"""

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

#: rows in the smoke column (fixed: the smoke ignores REPRO_BENCH_SCALE)
SMOKE_ROWS = 5_000

#: queries in the smoke workload
SMOKE_QUERIES = 80

#: default relative wall-clock tolerance for --check
DEFAULT_TOLERANCE = 0.25

#: wall-clock measurability floor (seconds): strategies that finish the
#: whole smoke workload faster than this are dominated by scheduler and
#: allocator noise, so their budget is computed from the floor instead of
#: the (meaninglessly small) baseline sample
MIN_MEASURABLE_SECONDS = 0.02

#: timing repeats — the counters are identical across repeats (asserted),
#: the wall-clock keeps the per-strategy minimum, which is far more stable
#: than a single sample at these tiny absolute times
SMOKE_REPEATS = 3

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_e01_smoke.json"


def _run_once() -> dict:
    from bench_common import CORE_STRATEGIES, make_column, make_spec, run_comparison
    from repro.workloads.generators import random_workload

    values = make_column(size=SMOKE_ROWS)
    queries = random_workload(
        make_spec(query_count=SMOKE_QUERIES, selectivity=0.01)
    )
    result = run_comparison(values, queries, CORE_STRATEGIES)
    strategies = {}
    for name, run in sorted(result.runs.items()):
        stats = run.statistics
        strategies[name] = {
            "comparisons": int(
                sum(q.counters.comparisons for q in stats.queries)
            ),
            "movements": int(
                sum(q.counters.tuples_moved for q in stats.queries)
            ),
            "scans": int(
                sum(q.counters.tuples_scanned for q in stats.queries)
            ),
            "wall_clock_seconds": round(stats.total_seconds, 6),
        }
    return strategies


def run_smoke() -> dict:
    """The E1 comparison at smoke scale; returns the serializable record."""
    strategies = _run_once()
    for _ in range(SMOKE_REPEATS - 1):
        repeat = _run_once()
        for name, current in strategies.items():
            again = repeat[name]
            for counter in ("comparisons", "movements", "scans"):
                assert again[counter] == current[counter], (
                    f"{name}: {counter} differs across repeats — the smoke "
                    f"workload is supposed to be deterministic"
                )
            current["wall_clock_seconds"] = min(
                current["wall_clock_seconds"], again["wall_clock_seconds"]
            )
    return {
        "rows": SMOKE_ROWS,
        "queries": SMOKE_QUERIES,
        "strategies": strategies,
    }


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Compare a fresh run against the baseline; returns failure messages."""
    failures = []
    if set(current["strategies"]) != set(baseline["strategies"]):
        failures.append(
            f"strategy set changed: baseline {sorted(baseline['strategies'])} "
            f"vs current {sorted(current['strategies'])}"
        )
        return failures
    for key in ("rows", "queries"):
        if current[key] != baseline[key]:
            failures.append(
                f"smoke scale changed ({key}: {baseline[key]} -> "
                f"{current[key]}); refresh the baseline deliberately"
            )
    for name, now in current["strategies"].items():
        then = baseline["strategies"][name]
        for counter in ("comparisons", "movements", "scans"):
            if now[counter] != then[counter]:
                failures.append(
                    f"{name}: {counter} drifted {then[counter]} -> "
                    f"{now[counter]} (logical counters are deterministic; "
                    f"a real cost-model change must refresh the baseline)"
                )
        before_wall = then["wall_clock_seconds"]
        after_wall = now["wall_clock_seconds"]
        budget = max(before_wall, MIN_MEASURABLE_SECONDS) * (1.0 + tolerance)
        if before_wall > 0 and after_wall > budget:
            failures.append(
                f"{name}: wall-clock regressed {before_wall:.4f}s -> "
                f"{after_wall:.4f}s (> {budget:.4f}s budget: "
                f"+{tolerance:.0%} over max(baseline, "
                f"{MIN_MEASURABLE_SECONDS}s floor))"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="smoke_e01",
        description="tiny deterministic E1 run for CI drift detection",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true",
        help=f"write the baseline to {BASELINE_PATH.name}",
    )
    action.add_argument(
        "--check", action="store_true",
        help="run and compare against the checked-in baseline",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="JSON",
        help="baseline path (default: repository root BENCH_e01_smoke.json)",
    )
    args = parser.parse_args(argv)

    record = run_smoke()
    baseline_path = Path(args.baseline)
    if args.write:
        baseline_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"smoke_e01: baseline written to {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"smoke_e01: no baseline at {baseline_path}", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    tolerance = float(
        os.environ.get("REPRO_SMOKE_TOLERANCE", str(DEFAULT_TOLERANCE))
    )
    failures = check(record, baseline, tolerance)
    for message in failures:
        print(f"smoke_e01: {message}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"smoke_e01: OK — counters identical, wall-clock within "
        f"±{tolerance:.0%} for {len(record['strategies'])} strategies"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
