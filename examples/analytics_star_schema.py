"""Analytics on a star schema with sideways cracking.

The scenario the tutorial's introduction motivates: an analyst fires ad-hoc
multi-column queries (date window + quantity/discount filters, aggregate of
the selected revenue) at a fact table nobody tuned.  We run the same query
stream under three physical designs:

1. no indexes at all (every selection scans),
2. cracking the selection column, with classic late tuple reconstruction,
3. sideways cracking (cracker maps keep all touched attributes aligned).

Run with:  python examples/analytics_star_schema.py
"""

from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.tpch_like import (
    TPCHLikeConfig,
    build_database,
    shipping_priority_queries,
)


def run_mode(mode: str, config: TPCHLikeConfig, queries) -> dict:
    database = build_database(config)
    if mode == "cracking + late reconstruction":
        database.set_indexing("lineorder", "orderdate", "cracking")
    elif mode == "sideways cracking":
        database.enable_sideways("lineorder", "orderdate")
    stats = database.run_workload(queries, strategy_label=mode)
    totals = stats.total_counters()
    return {
        "total_cost": sum(stats.per_query_cost(DEFAULT_MAIN_MEMORY_MODEL)),
        "seconds": stats.total_seconds,
        "random_accesses": totals.random_accesses,
        "design": database.physical_design_report(),
    }


def main() -> None:
    config = TPCHLikeConfig(fact_rows=200_000, seed=3)
    queries = shipping_priority_queries(config, query_count=200, seed=4)
    print(
        f"fact table: {config.fact_rows:,} rows; workload: {len(queries)} "
        "multi-column select/project/aggregate queries\n"
    )

    results = {}
    for mode in ("no indexes", "cracking + late reconstruction", "sideways cracking"):
        results[mode] = run_mode(mode, config, queries)

    header = f"{'physical design':>32s} {'logical cost':>14s} {'wall clock':>11s} {'random accesses':>16s}"
    print(header)
    print("-" * len(header))
    for mode, row in results.items():
        print(
            f"{mode:>32s} {row['total_cost']:>14.0f} {row['seconds']:>10.2f}s "
            f"{row['random_accesses']:>16,d}"
        )

    print("\nphysical design after the sideways-cracking run:")
    for entry in results["sideways cracking"]["design"]:
        print(f"  {entry['table']}.{entry['column']}: {entry['mode']} ({entry['structure']})")

    print(
        "\nnote how sideways cracking answers the same queries without a single"
        "\nrandom access into the fact table: the cracker maps drag the projected"
        "\nattributes along while the selection column is cracked, so tuple"
        "\nreconstruction reads contiguous memory."
    )


if __name__ == "__main__":
    main()
