"""Quickstart: the session front door over an adaptively indexed table.

Creates a table of 500k random rows, puts its key column under the classic
database-cracking strategy, and runs a stream of range queries through a
:class:`Session` — the one lock-aware API for queries, pipelined futures,
batches and DML.  Per-query cost falls as the column refines itself; no
index was ever created explicitly.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, available_strategies
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL


def main() -> None:
    rng = np.random.default_rng(7)
    db = Database("quickstart")
    db.create_table(
        "events",
        {
            "key": rng.integers(0, 1_000_000, size=500_000),
            "amount": rng.uniform(0, 100, size=500_000),
        },
    )
    db.set_indexing("events", "key", "cracking")
    print("available strategies:", ", ".join(available_strategies()))

    print("\nrunning 1000 random range queries (0.1% selectivity) ...")
    costs = []
    with db.session(name="quickstart") as session:
        for _ in range(1000):
            low = int(rng.integers(0, 999_000))
            result = session.query("events").where("key", low, low + 1_000).run()
            costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(result.counters))

        # verify one query by hand against the base column
        sample_low = 123_456
        result = (
            session.query("events")
            .where("key", sample_low, sample_low + 1_000)
            .select("amount")
            .agg("sum", "amount")
            .run()
        )
        keys = db.table("events")["key"].values
        expected = np.flatnonzero((keys >= sample_low) & (keys < sample_low + 1_000))
        assert set(result.positions.tolist()) == set(expected.tolist())
        print(
            f"spot check [{sample_low}, {sample_low + 1_000}): "
            f"{result.row_count} rows, sum(amount) = {result.aggregates['sum(amount)']:.1f}"
        )

        # the structure the 1000 queries refined (the insert below rebuilds
        # plain cracking from scratch — the honest cost of a non-updatable
        # design, and what the updatable strategies avoid)
        refined = [
            f"{record['mode']} — {record['structure']}"
            for record in db.physical_design_report()
        ]

        # an insert rides along mid-stream, fenced against in-flight cracks
        session.insert_row("events", {"key": sample_low, "amount": 1.0})
        after = session.query("events").where("key", sample_low, sample_low + 1).run()
        assert 500_000 in after.positions.tolist()

        stats = session.stats()

    print(f"\nfirst query cost      : {costs[0]:12.0f}   (copy + first crack)")
    print(f"10th query cost       : {costs[9]:12.0f}")
    print(f"100th query cost      : {costs[99]:12.0f}")
    print(f"1000th query cost     : {costs[-1]:12.0f}   (near index-lookup cost)")
    for line in refined:
        print(f"physical design       : {line}")
    print(
        f"session statistics    : {stats.queries_executed} queries, "
        f"{stats.rows_inserted} insert(s), all through one lock-aware handle"
    )
    print("\nthe column was never sorted and no CREATE INDEX was ever issued;")
    print("every query left the data a little better organised than it found it.")


if __name__ == "__main__":
    main()
