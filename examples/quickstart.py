"""Quickstart: adaptive indexing on a single column.

Creates a column of 500k random integers, wraps it in an :class:`AdaptiveIndex`
with the classic database-cracking strategy, runs a stream of range queries,
and shows how the per-query cost falls as the index refines itself — no
index was ever created explicitly.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import AdaptiveIndex, available_strategies


def main() -> None:
    rng = np.random.default_rng(7)
    column = rng.integers(0, 1_000_000, size=500_000)

    print("available strategies:", ", ".join(available_strategies()))
    index = AdaptiveIndex(column, strategy="cracking")

    print("\nrunning 1000 random range queries (0.1% selectivity) ...")
    for _ in range(1000):
        low = int(rng.integers(0, 999_000))
        positions = index.search(low, low + 1_000)
        # positions index into the original column; verify one query by hand
    sample_low = 123_456
    positions = index.search(sample_low, sample_low + 1_000)
    expected = np.flatnonzero((column >= sample_low) & (column < sample_low + 1_000))
    assert set(positions.tolist()) == set(expected.tolist())

    costs = index.per_query_cost()
    print(f"first query cost      : {costs[0]:12.0f}   (copy + first crack)")
    print(f"10th query cost       : {costs[9]:12.0f}")
    print(f"100th query cost      : {costs[99]:12.0f}")
    print(f"1000th query cost     : {costs[-1]:12.0f}   (near index-lookup cost)")
    print(f"cracker pieces so far : {index.structure_description()}")
    print(f"auxiliary storage     : {index.nbytes / 1e6:.1f} MB")
    print("\nthe column was never sorted and no CREATE INDEX was ever issued;")
    print("every query left the data a little better organised than it found it.")


if __name__ == "__main__":
    main()
