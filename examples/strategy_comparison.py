"""Compare the whole strategy spectrum on one workload.

Runs the adaptive-indexing benchmark of Graefe et al. (TPCTC 2010) over a
random range-query workload for every registered strategy and prints the two
benchmark metrics (first-query initialization cost, convergence point)
together with total cost — a miniature version of the comparison figures in
the papers the EDBT 2012 tutorial surveys.

Run with:  python examples/strategy_comparison.py
"""

import numpy as np

from repro import available_strategies
from repro.workloads.benchmark import AdaptiveIndexingBenchmark
from repro.workloads.generators import WorkloadSpec, generate_column_data, random_workload


def main() -> None:
    column = generate_column_data(200_000, 0, 1_000_000, seed=1)
    spec = WorkloadSpec(
        domain_low=0, domain_high=1_000_000, query_count=500, selectivity=0.01, seed=2
    )
    queries = random_workload(spec)
    harness = AdaptiveIndexingBenchmark(column, queries)

    strategies = [name for name in available_strategies()]
    print(f"column: {len(column):,} rows, workload: {len(queries)} random range queries")
    print(f"scan cost per query ≈ {harness.scan_cost:,.0f}, "
          f"full-index cost per query ≈ {harness.full_index_cost:,.0f}\n")

    result = harness.run(strategies)
    header = (
        f"{'strategy':24s} {'first-query/scan':>16s} {'converged@':>11s} "
        f"{'total cost':>14s} {'wall clock (s)':>14s}"
    )
    print(header)
    print("-" * len(header))
    for row in result.summary_table():
        converged = row["convergence_query"]
        print(
            f"{row['strategy']:24s} {row['first_query_overhead_vs_scan']:>16.2f} "
            f"{str(converged if converged is not None else '—'):>11s} "
            f"{row['total_logical_cost']:>14.0f} {row['total_seconds']:>14.3f}"
        )

    print(
        "\nreading guide: 'first-query/scan' is benchmark metric 1 (initialization"
        "\ncost); 'converged@' is metric 2 (queries until full-index-like cost);"
        "\nscanning never converges, sort-first converges immediately but pays the"
        "\nwhole sort on its first query, and the adaptive strategies fill the"
        "\nspace in between."
    )


if __name__ == "__main__":
    main()
