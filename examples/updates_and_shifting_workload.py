"""A live table: interleaved updates and a shifting query focus.

Demonstrates the two "hard mode" situations for physical design that the
EDBT 2012 tutorial highlights, through the session front door of a
:class:`Database` whose key column runs updatable cracking:

* updates arrive continuously — issued through ``session.insert_row`` /
  ``session.delete_row``, fenced on the table gate against in-flight
  queries — and are merged on demand (ripple merging), so no query ever
  pays for a full index rebuild;
* the query focus jumps to a new key range every 200 queries; the first
  queries after a jump cost more (the new region is still unrefined), then
  cost collapses again — adaptation restarts instantly, with no monitoring
  window and no DBA.

Run with:  python examples/updates_and_shifting_workload.py
"""

import numpy as np

from repro import Database
from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL


def main() -> None:
    rng = np.random.default_rng(11)
    db = Database("live-table")
    db.create_table(
        "readings", {"key": rng.integers(0, 1_000_000, size=300_000)}
    )
    db.set_indexing("readings", "key", "updatable-cracking", policy="ripple")
    live_rowids = list(range(300_000))

    phases = [(0, 100_000), (600_000, 700_000), (300_000, 400_000)]
    queries_per_phase = 200
    query_width = 2_000
    costs = []

    with db.session(name="live") as session:
        for phase_index, (focus_low, focus_high) in enumerate(phases):
            for _ in range(queries_per_phase):
                # a couple of updates between queries
                for _ in range(2):
                    if rng.random() < 0.5:
                        live_rowids.append(
                            session.insert_row(
                                "readings",
                                {"key": int(rng.integers(0, 1_000_000))},
                            )
                        )
                    elif live_rowids:
                        victim = live_rowids.pop(
                            int(rng.integers(0, len(live_rowids)))
                        )
                        session.delete_row("readings", victim)
                low = int(rng.integers(focus_low, focus_high - query_width))
                result = (
                    session.query("readings")
                    .where("key", low, low + query_width)
                    .run()
                )
                costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(result.counters))

            phase_costs = costs[phase_index * queries_per_phase:]
            print(
                f"phase {phase_index + 1}: focus [{focus_low:,}, {focus_high:,}) — "
                f"first query {phase_costs[0]:>10.0f}, "
                f"10th {phase_costs[9]:>9.0f}, "
                f"last {phase_costs[-1]:>9.0f}"
            )

        stats = session.stats()

    column = db.access_path("readings", "key").cracked
    print(
        f"\nprocessed {stats.queries_executed} queries with "
        f"{stats.rows_inserted} inserts and {stats.rows_deleted} deletes "
        f"interleaved; {column.pending_inserts} inserts and "
        f"{column.pending_deletes} deletes are still pending (their key "
        "ranges were never queried)."
    )
    print(f"cracker pieces: {column.piece_count}")
    print(
        "\neach focus shift shows the same pattern: an expensive first touch of the"
        "\nnew region, then rapid convergence — while updates ride along for free"
        "\nuntil a query actually needs their key range."
    )


if __name__ == "__main__":
    main()
