"""Setuptools shim.

Package metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in environments without the ``wheel`` package
(offline machines), via the legacy code path::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
