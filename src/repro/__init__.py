"""Adaptive indexing in modern database kernels — EDBT 2012 reproduction.

This package implements the full adaptive-indexing stack surveyed by the
EDBT 2012 tutorial *Adaptive Indexing in Modern Database Kernels* (Idreos,
Manegold, Graefe):

* a MonetDB-style column-store substrate (:mod:`repro.columnstore`),
* non-adaptive baselines: full indexes, offline what-if tuning, online
  tuning and soft indexes (:mod:`repro.indexes`),
* the adaptive-indexing family: database cracking, cracking updates,
  partial and sideways cracking, stochastic cracking, adaptive merging and
  the hybrid algorithms (:mod:`repro.core`),
* a query engine facade (:mod:`repro.engine`), and
* workload generators plus the adaptive-indexing benchmark of Graefe et al.
  (:mod:`repro.workloads`).

Quickstart
----------

>>> import numpy as np
>>> from repro import AdaptiveIndex
>>> values = np.random.default_rng(0).integers(0, 10_000, size=100_000)
>>> index = AdaptiveIndex(values, strategy="cracking")
>>> positions = index.search(1_000, 2_000)          # crack as a side effect
>>> sorted(values[positions]) == sorted(v for v in values if 1_000 <= v < 2_000)
True
"""

from repro.core.adaptive_index import AdaptiveIndex
from repro.core.strategies import available_strategies, create_strategy
from repro.durability.manager import DurabilityConfig
from repro.durability.recovery import RecoveryError, RecoveryReport
from repro.engine.database import Database
from repro.engine.query import Query, QueryBuilder
from repro.engine.session import Session
from repro.version import __version__

__all__ = [
    "AdaptiveIndex",
    "Database",
    "DurabilityConfig",
    "Query",
    "QueryBuilder",
    "RecoveryError",
    "RecoveryReport",
    "Session",
    "available_strategies",
    "create_strategy",
    "__version__",
]
