"""Allow ``python -m repro ...`` to reach the CLI."""

import sys

from repro.cli import main

sys.exit(main())
