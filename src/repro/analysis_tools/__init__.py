"""Repo-specific software-engineering tooling for the adaptive-indexing kernel.

Adaptive indexing makes *reads* mutate physical state — every query cracks
or merges the store — so the engine's correctness hinges on a hand-maintained
lock discipline (table gates → access-path locks → object stats locks, see
``docs/CONCURRENCY.md``).  This package machine-checks that discipline once
so every future PR inherits it:

* :mod:`repro.analysis_tools.guards` — the ``@guarded_by`` convention: a
  class decorator declaring which lock protects each shared mutable
  attribute, readable both at runtime (``__guarded_attributes__``) and
  statically by the linter;
* :mod:`repro.analysis_tools.reprolint` — the concurrency-invariant static
  analyzer (stdlib ``ast`` only): guarded-attribute writes outside their
  lock, lock-order back-edges, missing ``reorganizes_on_read``
  declarations, unlocked counter increments, and blocking calls under a
  path lock.  Run it as ``python -m repro.analysis_tools.reprolint
  src/repro`` or ``repro lint``;
* :mod:`repro.analysis_tools.pystyle` — a dependency-free equivalent of
  the minimal ruff rule set checked in as ``ruff.toml`` (unused imports,
  undefined names), used by CI where ruff is not installed.

The runtime complement — a lock-order witness that turns the property
suites into deadlock detectors under ``REPRO_LOCK_WITNESS=1`` — lives with
the locks themselves in :mod:`repro.engine.concurrency`.
"""

from repro.analysis_tools.guards import guarded_by

__all__ = ["guarded_by"]
