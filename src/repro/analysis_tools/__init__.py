"""Repo-specific software-engineering tooling for the adaptive-indexing kernel.

Adaptive indexing makes *reads* mutate physical state — every query cracks
or merges the store — so the engine's correctness hinges on a hand-maintained
lock discipline (table gates → access-path locks → object stats locks, see
``docs/CONCURRENCY.md``).  This package machine-checks that discipline once
so every future PR inherits it:

* :mod:`repro.analysis_tools.guards` — the ``@guarded_by`` convention: a
  class decorator declaring which lock protects each shared mutable
  attribute, readable both at runtime (``__guarded_attributes__``) and
  statically by the linter;
* :mod:`repro.analysis_tools.reprolint` — the concurrency-invariant static
  analyzer (stdlib ``ast`` only): guarded-attribute writes outside their
  lock, lock-order back-edges, missing ``reorganizes_on_read``
  declarations, unlocked counter increments, and blocking calls under a
  path lock.  Run it as ``python -m repro.analysis_tools.reprolint
  src/repro`` or ``repro lint``;
* :mod:`repro.analysis_tools.pystyle` — a dependency-free equivalent of
  the minimal ruff rule set checked in as ``ruff.toml`` (unused imports,
  undefined names), used by CI where ruff is not installed;
* :mod:`repro.analysis_tools.reproperf` — the hot-path & cost-model static
  analyzer: per-row-loop allocations (PF001), hoistable attribute reloads
  (PF002), ``@charges`` cost-accounting soundness (PF003), loop-invariant
  ``len()`` recomputation (PF004) and per-element Python-level calls that
  block the typed-buffer migration (PF005).  Run it as ``python -m
  repro.analysis_tools.reproperf`` or ``repro lint --perf``.

The runtime complements — a lock-order witness that turns the property
suites into deadlock detectors under ``REPRO_LOCK_WITNESS=1``, and a
cost-conformance witness that cross-checks counters against physical
reorganization under ``REPRO_COST_WITNESS=1`` — live with the code they
check, in :mod:`repro.engine.concurrency` and :mod:`repro.cost.witness`.
"""

from repro.analysis_tools.guards import charges, guarded_by

__all__ = ["charges", "guarded_by"]
