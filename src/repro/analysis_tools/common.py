"""Shared machinery of the repro static analyzers.

``reprolint`` (concurrency invariants), ``reproperf`` (hot paths & the cost
model) and ``reprotype`` (typed-buffer kernels) all follow the same
operating contract — findings carry ``file:line``, a rule id, the enclosing
symbol and a fix hint; suppressions are either inline
(``# <tool>: ignore[RULE, ...]``) or entries of a checked-in TOML baseline
whose every entry must carry a ``reason``; ``--strict-baseline`` fails on
entries no finding matches any more (so baselines only shrink); output is
text or JSON; exit status is 0 clean / 1 findings / 2 usage errors.

This module holds that contract once: the :class:`Finding` record, file
discovery, inline-suppression and baseline application, the JSON rendering
and the shared CLI driver.  Each analyzer contributes only its rules and
(optionally) an extra JSON payload section plus a text summary line.
``pystyle`` shares the file discovery and suppression-marker helpers.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # Python >= 3.11; the container and CI both satisfy this
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - pre-3.11 fallback
    tomllib = None


@dataclass
class Finding:
    """One analyzer finding, shared by every repro analyzer."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str
    hint: str = ""
    attribute: str = ""
    suppressed_by: str = ""  # "", "baseline" or "inline"

    def key(self) -> Tuple[str, str, int, str]:
        return (self.rule, self.path, self.line, self.attribute)

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "attribute": self.attribute,
            "message": self.message,
            "hint": self.hint,
            "suppressed_by": self.suppressed_by,
        }


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``*.py`` file under ``paths`` (directories recursed, sorted)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return files


def apply_inline_suppressions(
    findings: List[Finding], path: str, lines: List[str], tool: str
) -> None:
    """Mark findings silenced by ``# <tool>: ignore[...]`` on their line."""
    marker_text = f"# {tool}: ignore"
    for finding in findings:
        if finding.path != path or finding.suppressed_by:
            continue
        if 1 <= finding.line <= len(lines):
            text = lines[finding.line - 1]
            marker = text.rfind(marker_text)
            if marker == -1:
                continue
            tail = text[marker + len(marker_text):].strip()
            if not tail or finding.rule in tail:
                finding.suppressed_by = "inline"


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Parse the TOML baseline; every suppression must carry a reason."""
    if tomllib is None:  # pragma: no cover - pre-3.11 fallback
        raise RuntimeError("tomllib unavailable; cannot read the baseline")
    data = tomllib.loads(path.read_text())
    entries = data.get("suppress", [])
    for entry in entries:
        if not entry.get("rule") or not entry.get("path"):
            raise ValueError(f"baseline entry needs rule and path: {entry}")
        if not str(entry.get("reason", "")).strip():
            raise ValueError(
                f"baseline entry for {entry.get('path')} needs a non-empty "
                f"reason — suppressions must be explicit and commented"
            )
    return entries


def apply_baseline(findings: List[Finding], entries: List[Dict[str, str]]) -> List[str]:
    """Mark baselined findings; returns messages for unused entries."""
    used = [False] * len(entries)
    for finding in findings:
        if finding.suppressed_by:
            continue
        for position, entry in enumerate(entries):
            if entry["rule"] != finding.rule:
                continue
            normalized = finding.path.replace("\\", "/")
            if not normalized.endswith(entry["path"].replace("\\", "/")):
                continue
            if entry.get("symbol") and entry["symbol"] != finding.symbol:
                continue
            if entry.get("attribute") and entry["attribute"] != finding.attribute:
                continue
            finding.suppressed_by = "baseline"
            used[position] = True
            break
    return [
        f"unused baseline entry: {entry['rule']} {entry['path']} "
        f"{entry.get('symbol', '')}".rstrip()
        for entry, was_used in zip(entries, used)
        if not was_used
    ]


def render_json(
    findings: List[Finding],
    unused_baseline: List[str],
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """The shared JSON report shape; ``extra`` adds analyzer sections."""
    active = [f for f in findings if not f.suppressed_by]
    payload: Dict[str, object] = {
        "findings": [finding.as_dict() for finding in findings],
    }
    if extra:
        payload.update(extra)
    payload["summary"] = {
        "total": len(findings),
        "active": len(active),
        "suppressed": len(findings) - len(active),
        "unused_baseline_entries": unused_baseline,
    }
    return json.dumps(payload, indent=2)


def run_cli(
    *,
    tool: str,
    description: str,
    default_paths: Sequence[str],
    default_baseline: str,
    analyze: Callable[[Sequence[str]], Tuple[List[Finding], object]],
    extra_payload: Callable[[object], Dict[str, object]],
    summary: Callable[[int, int, object], str],
    path_help: str,
    argv: Optional[Sequence[str]] = None,
) -> int:
    """The analyzer CLI driver (flags, baseline plumbing, exit codes).

    ``analyze(paths)`` returns ``(findings, aux)``; ``extra_payload(aux)``
    contributes the analyzer-specific JSON sections; ``summary(active,
    suppressed, aux)`` renders the stderr summary line for text output.
    """
    parser = argparse.ArgumentParser(prog=tool, description=description)
    parser.add_argument(
        "paths", nargs="*", default=list(default_paths), help=path_help,
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="finding output format",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="TOML",
        help=f"suppression baseline (default: ./{default_baseline} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="fail (exit 1) when the baseline contains unused entries",
    )
    args = parser.parse_args(argv)

    try:
        findings, aux = analyze(args.paths)
    except FileNotFoundError as error:
        print(f"{tool}: {error}", file=sys.stderr)
        return 2

    unused_baseline: List[str] = []
    if not args.no_baseline:
        baseline_path = Path(args.baseline) if args.baseline else Path(default_baseline)
        if args.baseline and not baseline_path.exists():
            print(f"{tool}: no baseline at {baseline_path}", file=sys.stderr)
            return 2
        if baseline_path.exists():
            try:
                entries = load_baseline(baseline_path)
            except ValueError as error:
                print(f"{tool}: bad baseline: {error}", file=sys.stderr)
                return 2
            unused_baseline = apply_baseline(findings, entries)

    active = [f for f in findings if not f.suppressed_by]
    if args.format == "json":
        print(render_json(findings, unused_baseline, extra_payload(aux)))
    else:
        for finding in active:
            print(finding.render())
        for message in unused_baseline:
            prefix = "error" if args.strict_baseline else "warning"
            print(f"{prefix}: {message}", file=sys.stderr)
        print(summary(len(active), len(findings) - len(active), aux), file=sys.stderr)
    if active:
        return 1
    if args.strict_baseline and unused_baseline:
        return 1
    return 0
