"""Structured invariant declarations: ``@guarded_by`` and ``@charges``.

The engine's concurrency protocol guards shared mutable state with three
layers of locks (table gates, access-path locks, per-object stats locks).
The *association* between an attribute and its lock used to live only in
comments; this module makes it a structured declaration that is

* executable — the decorator attaches a ``__guarded_attributes__`` mapping
  (attribute name → lock attribute name) to the class, merged across base
  classes, so tests and debuggers can introspect the discipline; and
* statically analyzable — :mod:`repro.analysis_tools.reprolint` reads the
  decorator call out of the AST and reports any write to a declared
  attribute that does not happen inside a ``with <owner>.<lock>`` block.

Usage::

    @guarded_by(
        queries_processed="_stats_lock",
        partition_splits="_stats_lock",
    )
    class PartitionedCrackedColumn:
        ...

``@charges`` applies the same pattern to the cost model: a kernel that
physically compares or moves elements must charge the matching
:class:`~repro.cost.counters.CostCounters` channel, or every paper figure
built on those counters silently under-reports.  The decorator declares
which channels a kernel touches::

    @charges("comparisons", "movements")
    def partition_two_way(values, rowids, pivot, counters):
        ...

and :mod:`repro.analysis_tools.reproperf` (rule PF003) checks the body
actually records them.  Valid channel names are the logical cost channels
of the reproduction: ``comparisons`` (value comparisons against pivots or
bounds), ``movements`` (tuple moves/swaps, ``CostCounters.tuples_moved``),
``scans`` (sequential touches), ``random_accesses`` and ``allocations``.

``@typed_kernel`` completes the set for the typed-buffer migration: it
declares which parameters of a kernel are flat numpy buffers (and their
dtype contract), so :mod:`repro.analysis_tools.reprotype` can verify the
body stays vectorized (rules TB001–TB005) and the
:class:`~repro.analysis_tools.type_witness.TypeConformanceWitness` can
assert dtype/contiguity/no-object-escape at the call boundary::

    @typed_kernel(buffers={"segment": "numeric", "rowids": "int64",
                           "payload": "numeric*"},
                  mutates=())
    @charges("comparisons", "movements")
    def partition_two_way(segment, rowids, pivot, counters, payload=None):
        ...

Buffer specs are dtype names (``"int64"``) or kind classes (``"numeric"``
= any int/float column dtype); a ``?`` suffix allows None, a ``*`` suffix
declares a list/tuple of buffers.  ``mutates`` names the buffers the
kernel writes in place — ownership the reprotype TB005 rule checks
against ``SharedArrayBuffer`` aliasing.

``@guarded_by`` and ``@charges`` are free of runtime enforcement: the
point is a single, checkable source of truth, not per-access overhead on
hot paths.  ``@typed_kernel`` follows the same philosophy — its wrapper
is one global read per call — unless the type witness is armed
(``REPRO_TYPE_WITNESS=1``), when every declared buffer is checked.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Dict, Sequence, Tuple, Type, TypeVar, Union

from repro.analysis_tools.type_witness import parse_buffer_spec, type_witness

T = TypeVar("T")

#: channel name -> the CostCounters recording method PF003 accepts for it
CHARGE_CHANNELS: Dict[str, Tuple[str, ...]] = {
    "comparisons": ("record_comparisons",),
    "movements": ("record_move",),
    "scans": ("record_scan",),
    "random_accesses": ("record_random_access",),
    "allocations": ("record_allocation",),
    "pieces": ("record_pieces",),
}


def guarded_by(**attribute_locks: str):
    """Class decorator declaring ``attribute="lock_attribute"`` pairs.

    Each keyword names a shared mutable attribute of the class and the
    lock attribute (a ``threading.Lock``/``RLock``/``Condition`` held via
    ``with``) that must protect every write to it outside ``__init__``.
    Declarations merge with (and may override) those of base classes.
    """
    if not attribute_locks:
        raise ValueError("guarded_by() needs at least one attribute=lock pair")
    for attribute, lock_name in attribute_locks.items():
        if not isinstance(lock_name, str) or not lock_name:
            raise ValueError(
                f"guarded_by({attribute}=...) needs a non-empty lock "
                f"attribute name, got {lock_name!r}"
            )

    def decorate(cls: Type[T]) -> Type[T]:
        merged: Dict[str, str] = {}
        for base in reversed(cls.__mro__[1:]):
            merged.update(getattr(base, "__guarded_attributes__", {}))
        merged.update(attribute_locks)
        cls.__guarded_attributes__ = merged
        return cls

    return decorate


def guarded_attributes(cls: type) -> Dict[str, str]:
    """The merged attribute → lock mapping of ``cls`` (empty if undeclared)."""
    return dict(getattr(cls, "__guarded_attributes__", {}))


def charges(*channels: str) -> Callable[[T], T]:
    """Declare the cost channels a kernel must charge on every mutating path.

    Applies to functions and methods alike; on classes the declarations of
    an overriding method replace (not merge with) the base method's, since
    the attribute lives on the function object itself.  The declared tuple
    is normalized (deduplicated, declaration order preserved) and attached
    as ``__charged_counters__``.
    """
    if not channels:
        raise ValueError("charges() needs at least one cost channel name")
    normalized = []
    for channel in channels:
        if not isinstance(channel, str) or channel not in CHARGE_CHANNELS:
            raise ValueError(
                f"charges() got unknown cost channel {channel!r}; "
                f"valid channels: {', '.join(sorted(CHARGE_CHANNELS))}"
            )
        if channel not in normalized:
            normalized.append(channel)

    def decorate(func: T) -> T:
        func.__charged_counters__ = tuple(normalized)
        return func

    return decorate


def charged_counters(func: Union[Callable, type]) -> Tuple[str, ...]:
    """The channels ``func`` declares via ``@charges`` (empty if undeclared)."""
    return tuple(getattr(func, "__charged_counters__", ()))


def typed_kernel(
    *,
    buffers: Union[Dict[str, str], Sequence[str]],
    dtype: str = "numeric",
    mutates: Sequence[str] = (),
) -> Callable[[Callable], Callable]:
    """Declare which parameters of a kernel are flat numpy buffers.

    ``buffers`` maps parameter names to buffer specs (or is a plain
    sequence of names, each getting the default ``dtype`` spec).  A spec
    is a dtype name (``"int64"``, ``"float64"``) or a kind class
    (``"numeric"`` = any integer/float dtype, ``"integer"``, ``"float"``)
    plus optional suffixes: ``?`` allows None, ``*`` declares a
    list/tuple of buffers (e.g. a payload-column container).  ``mutates``
    names the declared buffers the kernel writes in place — the ownership
    declaration reprotype's TB005 rule checks mutations against.

    The declaration is attached as ``__typed_buffers__`` /
    ``__typed_mutates__`` / ``__typed_kernel__`` for introspection and
    for :mod:`repro.analysis_tools.reprotype`.  At runtime the wrapper
    costs one module-global read per call; when the
    :mod:`~repro.analysis_tools.type_witness` is armed it checks every
    declared buffer (dtype, 1-D, contiguity, writeability for mutated
    buffers) and the return value (no object-dtype escape).
    """
    if isinstance(buffers, dict):
        normalized: Dict[str, str] = dict(buffers)
    else:
        normalized = {name: dtype for name in buffers}
    if not normalized:
        raise ValueError("typed_kernel() needs at least one buffer parameter")
    for name, spec in normalized.items():
        if not isinstance(spec, str) or not spec:
            raise ValueError(
                f"typed_kernel(buffers={{{name!r}: ...}}) needs a non-empty "
                f"spec string, got {spec!r}"
            )
        try:
            parse_buffer_spec(spec)
        except TypeError:
            raise ValueError(
                f"typed_kernel() got unknown buffer spec {spec!r} for "
                f"parameter {name!r}"
            ) from None
    mutated = tuple(mutates)
    for name in mutated:
        if name not in normalized:
            raise ValueError(
                f"typed_kernel(mutates=...) names {name!r} which is not a "
                f"declared buffer parameter"
            )

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        for name in normalized:
            if name not in signature.parameters:
                raise ValueError(
                    f"typed_kernel() declares buffer {name!r} but "
                    f"{func.__qualname__} has no such parameter"
                )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            witness = type_witness()
            if witness is None:
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            witness.check_call(
                func.__qualname__, normalized, mutated, bound.arguments
            )
            result = func(*args, **kwargs)
            witness.check_result(func.__qualname__, result)
            return result

        wrapper.__typed_kernel__ = True
        wrapper.__typed_buffers__ = dict(normalized)
        wrapper.__typed_mutates__ = mutated
        return wrapper

    return decorate


def typed_buffers(func: Union[Callable, type]) -> Dict[str, str]:
    """The buffer specs ``func`` declares via ``@typed_kernel`` (or {})."""
    return dict(getattr(func, "__typed_buffers__", {}))
