"""The ``@guarded_by`` convention: declare which lock protects an attribute.

The engine's concurrency protocol guards shared mutable state with three
layers of locks (table gates, access-path locks, per-object stats locks).
The *association* between an attribute and its lock used to live only in
comments; this module makes it a structured declaration that is

* executable — the decorator attaches a ``__guarded_attributes__`` mapping
  (attribute name → lock attribute name) to the class, merged across base
  classes, so tests and debuggers can introspect the discipline; and
* statically analyzable — :mod:`repro.analysis_tools.reprolint` reads the
  decorator call out of the AST and reports any write to a declared
  attribute that does not happen inside a ``with <owner>.<lock>`` block.

Usage::

    @guarded_by(
        queries_processed="_stats_lock",
        partition_splits="_stats_lock",
    )
    class PartitionedCrackedColumn:
        ...

The decorator is intentionally free of runtime enforcement: the point is a
single, checkable source of truth, not per-access overhead on hot paths.
"""

from __future__ import annotations

from typing import Dict, Type, TypeVar

T = TypeVar("T")


def guarded_by(**attribute_locks: str):
    """Class decorator declaring ``attribute="lock_attribute"`` pairs.

    Each keyword names a shared mutable attribute of the class and the
    lock attribute (a ``threading.Lock``/``RLock``/``Condition`` held via
    ``with``) that must protect every write to it outside ``__init__``.
    Declarations merge with (and may override) those of base classes.
    """
    if not attribute_locks:
        raise ValueError("guarded_by() needs at least one attribute=lock pair")
    for attribute, lock_name in attribute_locks.items():
        if not isinstance(lock_name, str) or not lock_name:
            raise ValueError(
                f"guarded_by({attribute}=...) needs a non-empty lock "
                f"attribute name, got {lock_name!r}"
            )

    def decorate(cls: Type[T]) -> Type[T]:
        merged: Dict[str, str] = {}
        for base in reversed(cls.__mro__[1:]):
            merged.update(getattr(base, "__guarded_attributes__", {}))
        merged.update(attribute_locks)
        cls.__guarded_attributes__ = merged
        return cls

    return decorate


def guarded_attributes(cls: type) -> Dict[str, str]:
    """The merged attribute → lock mapping of ``cls`` (empty if undeclared)."""
    return dict(getattr(cls, "__guarded_attributes__", {}))
