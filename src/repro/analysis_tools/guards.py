"""Structured invariant declarations: ``@guarded_by`` and ``@charges``.

The engine's concurrency protocol guards shared mutable state with three
layers of locks (table gates, access-path locks, per-object stats locks).
The *association* between an attribute and its lock used to live only in
comments; this module makes it a structured declaration that is

* executable — the decorator attaches a ``__guarded_attributes__`` mapping
  (attribute name → lock attribute name) to the class, merged across base
  classes, so tests and debuggers can introspect the discipline; and
* statically analyzable — :mod:`repro.analysis_tools.reprolint` reads the
  decorator call out of the AST and reports any write to a declared
  attribute that does not happen inside a ``with <owner>.<lock>`` block.

Usage::

    @guarded_by(
        queries_processed="_stats_lock",
        partition_splits="_stats_lock",
    )
    class PartitionedCrackedColumn:
        ...

``@charges`` applies the same pattern to the cost model: a kernel that
physically compares or moves elements must charge the matching
:class:`~repro.cost.counters.CostCounters` channel, or every paper figure
built on those counters silently under-reports.  The decorator declares
which channels a kernel touches::

    @charges("comparisons", "movements")
    def partition_two_way(values, rowids, pivot, counters):
        ...

and :mod:`repro.analysis_tools.reproperf` (rule PF003) checks the body
actually records them.  Valid channel names are the logical cost channels
of the reproduction: ``comparisons`` (value comparisons against pivots or
bounds), ``movements`` (tuple moves/swaps, ``CostCounters.tuples_moved``),
``scans`` (sequential touches), ``random_accesses`` and ``allocations``.

Both decorators are intentionally free of runtime enforcement: the point
is a single, checkable source of truth, not per-access overhead on hot
paths.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type, TypeVar, Union

T = TypeVar("T")

#: channel name -> the CostCounters recording method PF003 accepts for it
CHARGE_CHANNELS: Dict[str, Tuple[str, ...]] = {
    "comparisons": ("record_comparisons",),
    "movements": ("record_move",),
    "scans": ("record_scan",),
    "random_accesses": ("record_random_access",),
    "allocations": ("record_allocation",),
    "pieces": ("record_pieces",),
}


def guarded_by(**attribute_locks: str):
    """Class decorator declaring ``attribute="lock_attribute"`` pairs.

    Each keyword names a shared mutable attribute of the class and the
    lock attribute (a ``threading.Lock``/``RLock``/``Condition`` held via
    ``with``) that must protect every write to it outside ``__init__``.
    Declarations merge with (and may override) those of base classes.
    """
    if not attribute_locks:
        raise ValueError("guarded_by() needs at least one attribute=lock pair")
    for attribute, lock_name in attribute_locks.items():
        if not isinstance(lock_name, str) or not lock_name:
            raise ValueError(
                f"guarded_by({attribute}=...) needs a non-empty lock "
                f"attribute name, got {lock_name!r}"
            )

    def decorate(cls: Type[T]) -> Type[T]:
        merged: Dict[str, str] = {}
        for base in reversed(cls.__mro__[1:]):
            merged.update(getattr(base, "__guarded_attributes__", {}))
        merged.update(attribute_locks)
        cls.__guarded_attributes__ = merged
        return cls

    return decorate


def guarded_attributes(cls: type) -> Dict[str, str]:
    """The merged attribute → lock mapping of ``cls`` (empty if undeclared)."""
    return dict(getattr(cls, "__guarded_attributes__", {}))


def charges(*channels: str) -> Callable[[T], T]:
    """Declare the cost channels a kernel must charge on every mutating path.

    Applies to functions and methods alike; on classes the declarations of
    an overriding method replace (not merge with) the base method's, since
    the attribute lives on the function object itself.  The declared tuple
    is normalized (deduplicated, declaration order preserved) and attached
    as ``__charged_counters__``.
    """
    if not channels:
        raise ValueError("charges() needs at least one cost channel name")
    normalized = []
    for channel in channels:
        if not isinstance(channel, str) or channel not in CHARGE_CHANNELS:
            raise ValueError(
                f"charges() got unknown cost channel {channel!r}; "
                f"valid channels: {', '.join(sorted(CHARGE_CHANNELS))}"
            )
        if channel not in normalized:
            normalized.append(channel)

    def decorate(func: T) -> T:
        func.__charged_counters__ = tuple(normalized)
        return func

    return decorate


def charged_counters(func: Union[Callable, type]) -> Tuple[str, ...]:
    """The channels ``func`` declares via ``@charges`` (empty if undeclared)."""
    return tuple(getattr(func, "__charged_counters__", ()))
