"""A minimal stdlib style checker: unused imports, undefined names,
mutable default arguments.

The repository pins ``ruff`` rules ``F401`` (imported but unused),
``F821`` (undefined name) and ``B006`` (mutable default argument) in
``ruff.toml``; this module enforces exactly those rules with nothing but
:mod:`ast`, so CI can run the gate in environments where ruff is not
installed.  Rule semantics follow ruff's:

* **F401** — a name bound by an ``import`` that is never referenced in the
  module and not re-exported.  ``__init__.py`` modules are exempt (imports
  there *are* the public surface), as are ``from __future__`` imports,
  explicit re-exports (``import x as x`` / ``from y import x as x``) and
  names listed in ``__all__``.
* **F821** — a name referenced but neither bound in an enclosing scope,
  a builtin, nor introduced by a star import (a module containing
  ``from x import *`` skips F821, matching pyflakes' capitulation).
* **B006** — a function (or lambda) parameter whose default is a mutable
  literal, comprehension, or zero-argument ``list()``/``dict()``/
  ``set()``/``bytearray()`` call.  The default is evaluated once at
  definition time, so every call shares one object and in-place mutations
  leak across calls.

Binding collection is flow-insensitive on purpose: a name assigned
anywhere in a scope counts as bound everywhere in it, trading
use-before-assignment detection for zero false positives.

Suppression: a ``# noqa`` comment on the flagged line silences it,
optionally scoped as ``# noqa: F401``; a ``# ruff: noqa`` comment line
exempts the whole file (optionally scoped, e.g. ``# ruff: noqa: B006``),
matching ruff's file-level directive — it is what keeps deliberately-bad
fixture files out of the repository-wide gate.

Usage::

    python -m repro.analysis_tools.pystyle [paths...]

Exit status: 0 clean, 1 findings, 2 usage errors.
"""

from __future__ import annotations

import argparse
import ast
import builtins
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis_tools.common import iter_python_files

_BUILTIN_NAMES = set(dir(builtins)) | {"__file__", "__builtins__"}

_NOQA_PATTERN = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

_FILE_NOQA_PATTERN = re.compile(
    r"#\s*(?:ruff|flake8|pystyle)\s*:\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?",
    re.IGNORECASE,
)

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray"}


@dataclass
class StyleFinding:
    code: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


# -- scope model ----------------------------------------------------------------


class _Scope:
    """One lexical scope: bound names plus whether it chains to its parent.

    Class bodies bind names their methods cannot see, so lookups from a
    nested function skip class scopes, exactly like the language does.
    """

    __slots__ = ("kind", "bound", "globals_declared")

    def __init__(self, kind: str) -> None:
        self.kind = kind  # "module" | "function" | "class" | "comprehension"
        self.bound: Set[str] = set()
        self.globals_declared: Set[str] = set()


class _BindingCollector(ast.NodeVisitor):
    """Collect every name a statement list binds, without descending into
    nested scopes (those get their own collection pass)."""

    def __init__(self) -> None:
        self.bound: Set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.bound.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # own scope

    def visit_ListComp(self, node: ast.ListComp) -> None:
        pass  # own scope

    visit_SetComp = visit_DictComp = visit_GeneratorExp = visit_ListComp

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add((alias.asname or alias.name).split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name != "*":
                self.bound.add(alias.asname or alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.bound.add(node.id)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.bound.add(node.name)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.bound.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.bound.update(node.names)


def _bindings_of(nodes: Iterable[ast.AST]) -> Set[str]:
    collector = _BindingCollector()
    for node in nodes:
        collector.visit(node)
    return collector.bound


def _arg_names(arguments: ast.arguments) -> Set[str]:
    names = set()
    for arg in (
        list(arguments.posonlyargs)
        + list(arguments.args)
        + list(arguments.kwonlyargs)
    ):
        names.add(arg.arg)
    if arguments.vararg:
        names.add(arguments.vararg.arg)
    if arguments.kwarg:
        names.add(arguments.kwarg.arg)
    return names


class _UndefinedNameChecker(ast.NodeVisitor):
    """F821: every loaded name must resolve through the scope chain."""

    def __init__(self, path: str, findings: List[StyleFinding]) -> None:
        self.path = path
        self.findings = findings
        self.scopes: List[_Scope] = []

    # -- scope plumbing --------------------------------------------------------

    def _push(self, kind: str, bound: Set[str]) -> None:
        scope = _Scope(kind)
        scope.bound = bound
        self.scopes.append(scope)

    def _resolves(self, name: str) -> bool:
        if name in _BUILTIN_NAMES:
            return True
        skip_class = False
        for scope in reversed(self.scopes):
            if scope.kind == "class" and skip_class:
                continue
            if name in scope.bound:
                return True
            if scope.kind in ("function", "comprehension"):
                skip_class = True
        return False

    def _check_load(self, node: ast.Name) -> None:
        if not self._resolves(node.id):
            self.findings.append(
                StyleFinding(
                    "F821", self.path, node.lineno,
                    f"undefined name `{node.id}`",
                )
            )

    # -- visitors --------------------------------------------------------------

    def check_module(self, tree: ast.Module) -> None:
        self._push("module", _bindings_of(tree.body))
        for statement in tree.body:
            self.visit(statement)
        self.scopes.pop()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_load(node)

    def _visit_function(self, node) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            self.visit(default)
        for annotation in self._annotations(node):
            self.visit(annotation)
        bound = _arg_names(node.args) | _bindings_of(node.body)
        self._push("function", bound)
        for statement in node.body:
            self.visit(statement)
        self.scopes.pop()

    @staticmethod
    def _annotations(node) -> Iterator[ast.AST]:
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
            + [node.args.vararg, node.args.kwarg]
        ):
            if arg is not None and arg.annotation is not None:
                yield arg.annotation
        if node.returns is not None:
            yield node.returns

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        self._push("function", _arg_names(node.args) | _bindings_of([node.body]))
        self.visit(node.body)
        self.scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        for base in list(node.bases) + [kw.value for kw in node.keywords]:
            self.visit(base)
        self._push("class", _bindings_of(node.body))
        for statement in node.body:
            self.visit(statement)
        self.scopes.pop()

    def _visit_comprehension(self, node) -> None:
        # the leftmost iterable evaluates in the enclosing scope
        self.visit(node.generators[0].iter)
        bound: Set[str] = set()
        for comp in node.generators:
            bound |= _bindings_of([comp.target])
        self._push("comprehension", bound)
        for index, comp in enumerate(node.generators):
            if index > 0:
                self.visit(comp.iter)
            for condition in comp.ifs:
                self.visit(condition)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self.scopes.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


# -- the per-module check -------------------------------------------------------


@dataclass
class _ImportBinding:
    name: str
    line: int
    source: str  # rendered form for the message
    explicit_reexport: bool


def _collect_imports(tree: ast.Module) -> List[_ImportBinding]:
    imports: List[_ImportBinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = (alias.asname or alias.name).split(".")[0]
                imports.append(
                    _ImportBinding(
                        bound, node.lineno, alias.name,
                        alias.asname == alias.name,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module = "." * node.level + (node.module or "")
                imports.append(
                    _ImportBinding(
                        bound, node.lineno, f"{module}.{alias.name}",
                        alias.asname == alias.name,
                    )
                )
    return imports


def _names_used(tree: ast.Module) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
        elif isinstance(node, (ast.AnnAssign, ast.arg)):
            annotation = node.annotation
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                used.update(_IDENTIFIER.findall(annotation.value))
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # forward references in subscripted annotations ("List['Foo']")
            # and __all__ entries land here; identifier-shaped strings are
            # cheap to over-approximate as uses
            if node.value.isidentifier():
                used.add(node.value)
    return used


def _exported_names(tree: ast.Module) -> Set[str]:
    exported: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        for constant in ast.walk(value):
            if isinstance(constant, ast.Constant) and isinstance(
                constant.value, str
            ):
                exported.add(constant.value)
    return exported


def _has_star_import(tree: ast.Module) -> bool:
    return any(
        isinstance(node, ast.ImportFrom)
        and any(alias.name == "*" for alias in node.names)
        for node in ast.walk(tree)
    )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
        and not node.args
        and not node.keywords
    )


def _mutable_default_findings(tree: ast.Module, path: str) -> List[StyleFinding]:
    """B006: defaults are evaluated once, so mutable ones are shared state."""
    findings: List[StyleFinding] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    StyleFinding(
                        "B006", path, default.lineno,
                        "mutable default argument (shared across calls); "
                        "default to None and build the object inside the function",
                    )
                )
    return findings


def _file_noqa(source: str) -> Tuple[bool, Optional[Set[str]]]:
    """File-level ``# ruff: noqa`` directive: ``(present, codes)``.

    ``codes`` is ``None`` when the directive is unscoped (silence everything),
    otherwise the set of silenced codes.
    """
    for text in source.splitlines():
        match = _FILE_NOQA_PATTERN.search(text)
        if not match:
            continue
        codes = match.group("codes")
        if codes:
            return True, {
                code.strip().upper() for code in codes.split(",") if code.strip()
            }
        return True, None
    return False, None


def _noqa_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Line -> suppressed codes (None = all codes) for ``# noqa`` comments."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(text)
        if not match:
            continue
        codes = match.group("codes")
        if codes:
            suppressions[lineno] = {
                code.strip().upper() for code in codes.split(",") if code.strip()
            }
        else:
            suppressions[lineno] = None
    return suppressions


def check_module(path: Path) -> List[StyleFinding]:
    """All F401/F821/B006 findings of one module (after ``# noqa`` filtering)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            StyleFinding(
                "E999", str(path), error.lineno or 1,
                f"syntax error: {error.msg}",
            )
        ]
    findings: List[StyleFinding] = []

    if path.name != "__init__.py":
        used = _names_used(tree)
        exported = _exported_names(tree)
        for binding in _collect_imports(tree):
            if binding.explicit_reexport:
                continue
            if binding.name in used or binding.name in exported:
                continue
            findings.append(
                StyleFinding(
                    "F401", str(path), binding.line,
                    f"`{binding.source}` imported but unused",
                )
            )

    if not _has_star_import(tree):
        _UndefinedNameChecker(str(path), findings).check_module(tree)

    findings.extend(_mutable_default_findings(tree, str(path)))

    file_noqa_present, file_noqa_codes = _file_noqa(source)
    if file_noqa_present:
        if file_noqa_codes is None:
            return []
        findings = [f for f in findings if f.code not in file_noqa_codes]

    suppressions = _noqa_lines(source)
    kept = []
    for finding in findings:
        codes = suppressions.get(finding.line, "missing")
        if codes == "missing" or (
            codes is not None and finding.code not in codes
        ):
            kept.append(finding)
    return sorted(kept, key=lambda f: (f.path, f.line, f.code))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis_tools.pystyle",
        description=(
            "stdlib F401/F821/B006 checker (see ruff.toml for the pinned rules)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to check (default: src tests benchmarks)",
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as exit_error:
        return 2 if exit_error.code not in (0, None) else 0
    try:
        files = iter_python_files(options.paths)
    except FileNotFoundError as error:
        print(f"pystyle: {error}", file=sys.stderr)
        return 2
    findings: List[StyleFinding] = []
    checked = 0
    for path in files:
        checked += 1
        findings.extend(check_module(path))
    for finding in findings:
        print(finding.render())
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"pystyle: {checked} file(s) checked, {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
