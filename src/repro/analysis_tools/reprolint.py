"""reprolint — concurrency-invariant static analysis for the repro engine.

Adaptive indexing makes reads mutate physical state, so the engine lives or
dies by its lock discipline: **table gates** (level 0) are acquired before
**access-path locks** (level 1), which are acquired before **per-object
stats locks** (level 2, leaves).  This analyzer walks the source tree with
nothing but :mod:`ast` and reports violations of that discipline:

``RL001`` guarded-attribute write outside its declared lock
    An attribute declared via :func:`repro.analysis_tools.guards.guarded_by`
    is assigned, augmented, deleted, subscript-stored or mutated through a
    known mutating method (``append``/``pop``/...) outside a ``with
    <owner>.<lock>`` block naming the declared lock.
``RL002`` lock acquisition violating the documented order
    Acquisition edges are collected from lexical ``with`` nesting (including
    ``ExitStack.enter_context``).  Each nested acquisition must strictly
    increase the lock level (gate → path → stats); stats locks are leaves
    under which nothing may be acquired, and multi-gate / multi-path
    acquisition must go through the sorting helpers
    (``TableGateRegistry.read`` / ``AccessPathLockManager.locked``), never
    through nested ``with`` blocks.
``RL003`` ``SearchStrategy`` subclass without an explicit
    ``reorganizes_on_read`` declaration: every registered strategy (a
    subclass defining a non-empty ``name``) must declare the capability
    flag itself or inherit it from an intermediate base — silently relying
    on the ``SearchStrategy`` default hides the scheduling contract.
``RL004`` counter attribute mutated via ``+=`` outside any lock
    In classes that own (or inherit) a lock — the marker that instances are
    shared across threads — bare increments of counter-shaped attributes
    (``*_count``, ``queries_processed``, split/merge/row counters) lose
    updates under concurrent readers.
``RL005`` blocking call while a path lock or table gate is statically held
    ``Future.result()`` / ``.join()`` / gate acquisition inside a ``with
    <path lock>`` block can deadlock against the batch scheduler.
    Additionally, synchronous file I/O (``open``/``write``/``fsync``/
    ``os.replace``/... and the durability entry points ``append_record``/
    ``write_snapshot``) inside a path-lock *or* gate critical section
    stalls every operation queued on that lock for a disk round-trip —
    allowed only where the write-ahead contract requires it (the journal
    append *is* the commit point), recorded as a reasoned baseline entry.

Findings carry ``file:line``, the rule id and a fix hint.  Suppressions
live in a checked-in TOML baseline (every entry needs a ``reason``) or as
inline ``# reprolint: ignore[RL00x]`` comments.  Run::

    python -m repro.analysis_tools.reprolint src/repro [--format=text|json]

Exit status is 0 when every finding is suppressed (or none exist), 1
otherwise, 2 on usage errors.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis_tools.common import (
    Finding,
    apply_inline_suppressions as _shared_inline_suppressions,
    iter_python_files,
    load_baseline,
    run_cli,
)
from repro.analysis_tools.common import apply_baseline, render_json as _render_json

__all__ = [
    "RULES", "Finding", "analyze_paths", "iter_python_files",
    "load_baseline", "apply_baseline", "render_json", "main",
]


RULES = {
    "RL001": "guarded attribute written outside its declared lock",
    "RL002": "lock acquisition violates the gate → path → stats order",
    "RL003": "SearchStrategy subclass without explicit reorganizes_on_read",
    "RL004": "counter attribute mutated via += outside any lock",
    "RL005": "blocking or file-I/O call while a path lock or gate is held",
}

#: lock levels of the documented protocol (lower acquires first)
LEVEL_GATE, LEVEL_PATH, LEVEL_STATS = 0, 1, 2
_LEVEL_NAMES = {LEVEL_GATE: "gate", LEVEL_PATH: "path", LEVEL_STATS: "stats"}

#: method names that mutate their receiver (list/dict/set mutators)
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
}

#: attribute-name shapes treated as shared counters by RL004
_COUNTER_SUFFIXES = (
    "_count", "_counts", "_processed", "_executed", "_submitted",
    "_inserted", "_deleted", "_updated", "_splits", "_merges", "_writes",
)
_COUNTER_NAMES = {"visits", "fenced_writes"}

#: blocking attribute-call names for RL005 (path-lock scope only: batches
#: legitimately block on their own futures while holding table gates)
_BLOCKING_CALLS = {"result", "join", "acquire_read", "acquire_write"}

#: file-I/O attribute-call names for RL005, flagged under path locks AND
#: table gates — a synchronous disk write inside either critical section
#: stalls every query/DML queued on it
_BLOCKING_IO_ATTR_CALLS = {
    "write", "flush", "fsync", "fdatasync", "truncate",
    "append_record", "write_snapshot",
}
#: os.<name> calls treated as blocking file I/O
_BLOCKING_IO_OS_CALLS = {
    "replace", "rename", "fsync", "fdatasync", "open", "truncate", "unlink",
}
#: bare-name calls treated as blocking file I/O
_BLOCKING_IO_NAME_CALLS = {"open"}

#: methods where unguarded writes are fine: the object is not shared yet
#: (or is being torn down by its last owner); methods named ``_init_*`` are
#: constructor helpers by convention, invoked before the instance escapes
_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "__post_init__"}


@dataclass
class ClassInfo:
    """Statically collected facts about one class definition."""

    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    #: attribute → lock attribute, from the @guarded_by decorator
    guards: Dict[str, str] = field(default_factory=dict)
    #: lock attributes created in the class body (self._x = threading.Lock())
    own_locks: Set[str] = field(default_factory=set)
    #: names assigned or defined directly in the class body
    declared: Set[str] = field(default_factory=set)
    line: int = 0


def _attr_chain_root(node: ast.expr) -> Tuple[Optional[ast.expr], List[str]]:
    """Decompose ``a.b.c`` into (root expression ``a``, ["b", "c"])."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    chain.reverse()
    return node, chain


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all our inputs
        return ast.dump(node)


def _looks_like_lock_name(name: str) -> bool:
    lowered = name.lower()
    return (
        "lock" in lowered
        or "mutex" in lowered
        or lowered.endswith("_guard")
        or lowered.endswith("_condition")
        or lowered == "_condition"
    )


def classify_lock_expr(expr: ast.expr) -> Optional[Tuple[int, str, str]]:
    """Classify a ``with``-item as a lock acquisition.

    Returns ``(level, token, base_text)`` or None.  ``token`` identifies the
    lock class in the static acquisition graph; ``base_text`` is the
    source of the owner expression (used to match guarded writes to the
    lock of the *same* object).
    """
    # gate level: <something gate-ish>.read(...) / .write(...)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        method = expr.func.attr
        owner = expr.func.value
        owner_text = _expr_text(owner)
        if method in ("read", "write", "write_all") and "gate" in owner_text.lower():
            return (LEVEL_GATE, f"gate.{method}", owner_text)
        # path level: <path lock manager>.locked(...) / .lock_for(...)
        if method in ("locked", "lock_for") and "path_lock" in owner_text.lower():
            return (LEVEL_PATH, "path", owner_text)
    # stats level: a bare lock attribute (with self._stats_lock: ...)
    if isinstance(expr, ast.Attribute) and _looks_like_lock_name(expr.attr):
        return (LEVEL_STATS, f"stats.{expr.attr}", _expr_text(expr.value))
    if isinstance(expr, ast.Name) and _looks_like_lock_name(expr.id):
        return (LEVEL_STATS, f"stats.{expr.id}", "")
    return None


def _is_counter_name(name: str) -> bool:
    return name in _COUNTER_NAMES or name.endswith(_COUNTER_SUFFIXES)


def _is_lock_factory(value: ast.expr) -> bool:
    """True for ``threading.Lock()`` / ``RLock()`` / ``Condition()`` calls."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")


class _ClassIndexer(ast.NodeVisitor):
    """First pass: collect every class, its guards, locks and declarations."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.classes: List[ClassInfo] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, module=self.module, line=node.lineno)
        for base in node.bases:
            _, chain = _attr_chain_root(base)
            if chain:
                info.bases.append(chain[-1])
            elif isinstance(base, ast.Name):
                info.bases.append(base.id)
        for decorator in node.decorator_list:
            if (
                isinstance(decorator, ast.Call)
                and isinstance(decorator.func, (ast.Name, ast.Attribute))
            ):
                func_name = (
                    decorator.func.id
                    if isinstance(decorator.func, ast.Name)
                    else decorator.func.attr
                )
                if func_name == "guarded_by":
                    for keyword in decorator.keywords:
                        if keyword.arg and isinstance(
                            keyword.value, ast.Constant
                        ) and isinstance(keyword.value.value, str):
                            info.guards[keyword.arg] = keyword.value.value
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        info.declared.add(target.id)
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    info.declared.add(statement.target.id)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.declared.add(statement.name)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _is_lock_factory(sub.value):
                for target in sub.targets:
                    root, chain = _attr_chain_root(target)
                    if _is_self(root) and len(chain) == 1:
                        info.own_locks.add(chain[0])
        self.classes.append(info)
        self.generic_visit(node)


class ClassRegistry:
    """Cross-module class index with inheritance resolution by simple name."""

    def __init__(self) -> None:
        self.by_name: Dict[str, ClassInfo] = {}

    def add(self, info: ClassInfo) -> None:
        # last definition wins; simple names are unique in this tree
        self.by_name[info.name] = info

    def _ancestors(self, name: str, seen: Optional[Set[str]] = None) -> List[ClassInfo]:
        seen = seen if seen is not None else set()
        result: List[ClassInfo] = []
        info = self.by_name.get(name)
        if info is None or name in seen:
            return result
        seen.add(name)
        result.append(info)
        for base in info.bases:
            result.extend(self._ancestors(base, seen))
        return result

    def merged_guards(self, name: str) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for info in reversed(self._ancestors(name)):
            merged.update(info.guards)
        return merged

    def owns_lock(self, name: str) -> bool:
        return any(
            info.own_locks or info.guards for info in self._ancestors(name)
        )

    def is_subclass_of(self, name: str, base: str) -> bool:
        return any(info.name == base for info in self._ancestors(name)[1:])

    def declares_below(self, name: str, attribute: str, stop: str) -> bool:
        """True when ``name`` or an ancestor strictly below ``stop`` declares
        ``attribute`` in its own body."""
        for info in self._ancestors(name):
            if info.name == stop:
                continue
            if attribute in info.declared:
                return True
        return False

    def global_guard_locks(self, attribute: str) -> Set[str]:
        """Every lock name any class declares for ``attribute``."""
        locks: Set[str] = set()
        for info in self.by_name.values():
            if attribute in info.guards:
                locks.add(info.guards[attribute])
        return locks


@dataclass
class _HeldLock:
    level: int
    token: str
    base: str
    line: int


class _FunctionAnalyzer(ast.NodeVisitor):
    """Second pass over one module: emit findings with the global registry."""

    def __init__(
        self,
        path: str,
        registry: ClassRegistry,
        findings: List[Finding],
        graph: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> None:
        self.path = path
        self.registry = registry
        self.findings = findings
        self.graph = graph
        self.class_stack: List[ClassInfo] = []
        self.function_stack: List[str] = []
        self.held: List[_HeldLock] = []
        #: local names assigned from constructor-ish calls (fresh objects)
        self.fresh_locals: List[Set[str]] = []

    # -- helpers -----------------------------------------------------------------

    @property
    def symbol(self) -> str:
        parts = [info.name for info in self.class_stack] + self.function_stack
        return ".".join(parts) or "<module>"

    def _report(self, rule: str, node: ast.AST, message: str, hint: str = "",
                attribute: str = "") -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                symbol=self.symbol,
                message=message,
                hint=hint,
                attribute=attribute,
            )
        )

    def _in_exempt_method(self) -> bool:
        if not self.function_stack:
            return False
        name = self.function_stack[-1]
        return name in _EXEMPT_METHODS or name.startswith("_init_")

    def _locks_held(self) -> bool:
        return bool(self.held)

    def _holds_lock(self, owner_text: str, lock_name: str) -> bool:
        for held in self.held:
            if held.level != LEVEL_STATS:
                continue
            if held.token == f"stats.{lock_name}" and held.base == owner_text:
                return True
        return False

    def _is_fresh_local(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Name):
            return False
        return any(node.id in frame for frame in self.fresh_locals)

    # -- structure ---------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = self.registry.by_name.get(node.name)
        self.class_stack.append(
            info if info is not None else ClassInfo(node.name, self.path)
        )
        self._check_strategy_declaration(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def _check_strategy_declaration(self, node: ast.ClassDef) -> None:
        name = node.name
        if not self.registry.is_subclass_of(name, "SearchStrategy"):
            return
        info = self.registry.by_name.get(name)
        has_name = info is not None and "name" in info.declared
        if not has_name:
            return  # abstract intermediates don't register themselves
        if not self.registry.declares_below(
            name, "reorganizes_on_read", stop="SearchStrategy"
        ):
            self._report(
                "RL003",
                node,
                f"strategy {name} relies on the implicit SearchStrategy "
                f"default for reorganizes_on_read",
                hint="declare `reorganizes_on_read = True/False` (or a "
                     "property) on the class so the batch scheduler's "
                     "contract is explicit",
                attribute="reorganizes_on_read",
            )

    def _enter_function(self, node) -> None:
        self.function_stack.append(node.name)
        self.fresh_locals.append(set())

    def _leave_function(self) -> None:
        self.function_stack.pop()
        self.fresh_locals.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._leave_function()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- lock tracking -----------------------------------------------------------

    def _acquire(self, classified: Tuple[int, str, str], node: ast.AST) -> _HeldLock:
        level, token, base = classified
        line = getattr(node, "lineno", 0)
        if self.held:
            top = self.held[-1]
            self.graph.setdefault((top.token, token), (self.path, line))
            if top.level == LEVEL_STATS:
                self._report(
                    "RL002",
                    node,
                    f"acquiring {token} while holding leaf lock {top.token} "
                    f"(held since line {top.line})",
                    hint="stats locks are leaves of the protocol: release "
                         "before taking any other lock",
                )
            elif level <= top.level:
                self._report(
                    "RL002",
                    node,
                    f"acquiring {_LEVEL_NAMES[level]}-level {token} while "
                    f"holding {_LEVEL_NAMES[top.level]}-level {top.token} "
                    f"(held since line {top.line}) — back-edge in the "
                    f"gate → path → stats order",
                    hint="acquire gates before path locks before stats "
                         "locks; multi-gate/multi-path acquisition must go "
                         "through TableGateRegistry.read / "
                         "AccessPathLockManager.locked (which sort)",
                )
        held = _HeldLock(level=level, token=token, base=base, line=line)
        self.held.append(held)
        return held

    def visit_With(self, node: ast.With) -> None:
        acquired: List[_HeldLock] = []
        for item in node.items:
            classified = classify_lock_expr(item.context_expr)
            if classified is not None:
                acquired.append(self._acquire(classified, item.context_expr))
            else:
                self.visit(item.context_expr)
        # ExitStack.enter_context(lock_expr) acquires for the block's rest
        for statement in node.body:
            for call in [
                sub for sub in ast.walk(statement)
                if isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "enter_context"
                and sub.args
            ]:
                classified = classify_lock_expr(call.args[0])
                if classified is not None:
                    acquired.append(self._acquire(classified, call.args[0]))
            self.visit(statement)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    # -- RL001 / RL004: writes ---------------------------------------------------

    def _written_attributes(self, node: ast.AST) -> List[Tuple[ast.expr, str]]:
        """(owner expression, attribute) pairs written to by ``node``."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        writes: List[Tuple[ast.expr, str]] = []
        for target in targets:
            for element in self._flatten_target(target):
                while isinstance(element, ast.Subscript):
                    element = element.value
                root, chain = _attr_chain_root(element)
                if root is not None and chain:
                    writes.append((root, chain[0]))
        return writes

    @staticmethod
    def _flatten_target(target: ast.expr) -> List[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            result = []
            for element in target.elts:
                result.extend(_FunctionAnalyzer._flatten_target(element))
            return result
        return [target]

    def _check_guarded_write(self, owner: ast.expr, attribute: str,
                             node: ast.AST) -> None:
        if self._in_exempt_method() or self._is_fresh_local(owner):
            return
        owner_text = _expr_text(owner)
        lock_name: Optional[str] = None
        if _is_self(owner) and self.class_stack:
            lock_name = self.registry.merged_guards(
                self.class_stack[-1].name
            ).get(attribute)
        else:
            locks = self.registry.global_guard_locks(attribute)
            if len(locks) == 1:
                lock_name = next(iter(locks))
        if lock_name is None:
            return
        if self._holds_lock(owner_text, lock_name):
            return
        self._report(
            "RL001",
            node,
            f"write to guarded attribute {owner_text}.{attribute} outside "
            f"`with {owner_text}.{lock_name}`",
            hint=f"wrap the mutation in `with {owner_text}.{lock_name}:` "
                 f"(declared via @guarded_by), or move it into __init__",
            attribute=attribute,
        )

    def _check_counter_write(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        target = node.target
        root, chain = _attr_chain_root(target)
        if root is None or len(chain) != 1 or not _is_self(root):
            return
        attribute = chain[0]
        if not _is_counter_name(attribute):
            return
        if self._in_exempt_method() or self._locks_held():
            return
        if not self.class_stack or not self.registry.owns_lock(
            self.class_stack[-1].name
        ):
            return
        self._report(
            "RL004",
            node,
            f"counter self.{attribute} incremented outside any lock in a "
            f"lock-owning class — concurrent readers lose updates",
            hint="hold the owning stats lock (e.g. `with self._stats_lock:`) "
                 "around the increment",
            attribute=attribute,
        )

    def _handle_write_statement(self, node: ast.AST) -> None:
        for owner, attribute in self._written_attributes(node):
            self._check_guarded_write(owner, attribute, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # record fresh locals: `x = SomeCall(...)` cannot be shared yet
        if (
            self.fresh_locals
            and isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            self.fresh_locals[-1].add(node.targets[0].id)
        self._handle_write_statement(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_write_statement(node)
        self._check_counter_write(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_write_statement(node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._handle_write_statement(node)
        self.generic_visit(node)

    # -- RL001 (mutating calls) / RL005 (blocking calls) --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_blocking_io(node)
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = node.func.value
            if method in _MUTATING_METHODS and isinstance(receiver, ast.Attribute):
                root, chain = _attr_chain_root(receiver)
                if root is not None and chain:
                    self._check_guarded_write(root, chain[0], node)
            if method in _BLOCKING_CALLS and any(
                held.level == LEVEL_PATH for held in self.held
            ):
                holder = next(h for h in self.held if h.level == LEVEL_PATH)
                self._report(
                    "RL005",
                    node,
                    f"blocking call .{method}() while path lock held "
                    f"(since line {holder.line}) can deadlock the batch "
                    f"scheduler",
                    hint="collect futures/gate work outside the path-lock "
                         "critical section and block on them after release",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_blocking_io_call(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _BLOCKING_IO_NAME_CALLS
        if not isinstance(func, ast.Attribute):
            return False
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "os":
            return method in _BLOCKING_IO_OS_CALLS
        if method in _BLOCKING_IO_ATTR_CALLS:
            # gate.write(...) / registry.write(...) is a lock acquisition
            # (classified by classify_lock_expr), not file I/O
            return "gate" not in _expr_text(receiver).lower()
        return False

    def _check_blocking_io(self, node: ast.Call) -> None:
        holder = next(
            (h for h in self.held if h.level in (LEVEL_GATE, LEVEL_PATH)),
            None,
        )
        if holder is None or not self._is_blocking_io_call(node):
            return
        self._report(
            "RL005",
            node,
            f"file I/O call {_expr_text(node.func)}(...) while "
            f"{_LEVEL_NAMES[holder.level]} lock held (since line "
            f"{holder.line}) stalls every operation queued on that lock "
            f"for a disk round-trip",
            hint="move the durable write outside the critical section, or "
                 "baseline it with the group-commit reasoning when the "
                 "journal append is the commit point itself",
        )


# -- driver ----------------------------------------------------------------------


def analyze_paths(paths: Sequence[str]) -> Tuple[
    List[Finding], Dict[Tuple[str, str], Tuple[str, int]]
]:
    """Run every rule over ``paths``; returns (findings, acquisition graph)."""
    files = iter_python_files(paths)
    registry = ClassRegistry()
    parsed: List[Tuple[Path, ast.Module, List[str]]] = []
    findings: List[Finding] = []
    for file_path in files:
        source = file_path.read_text()
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="RL000",
                    path=str(file_path),
                    line=error.lineno or 0,
                    symbol="<module>",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        indexer = _ClassIndexer(str(file_path))
        indexer.visit(tree)
        for info in indexer.classes:
            registry.add(info)
        parsed.append((file_path, tree, source.splitlines()))

    graph: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for file_path, tree, lines in parsed:
        analyzer = _FunctionAnalyzer(str(file_path), registry, findings, graph)
        analyzer.visit(tree)
        _shared_inline_suppressions(findings, str(file_path), lines, "reprolint")
    findings.sort(key=Finding.key)
    return findings, graph


def _graph_payload(
    graph: Dict[Tuple[str, str], Tuple[str, int]]
) -> Dict[str, object]:
    return {
        "acquisition_graph": [
            {
                "from": source,
                "to": destination,
                "first_seen": {"path": where[0], "line": where[1]},
            }
            for (source, destination), where in sorted(graph.items())
        ],
    }


def render_json(
    findings: List[Finding],
    graph: Dict[Tuple[str, str], Tuple[str, int]],
    unused_baseline: List[str],
) -> str:
    return _render_json(findings, unused_baseline, _graph_payload(graph))


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_cli(
        tool="reprolint",
        description="concurrency-invariant static analysis for the repro engine",
        default_paths=["src/repro"],
        default_baseline="reprolint.toml",
        analyze=analyze_paths,
        extra_payload=_graph_payload,
        summary=lambda active, suppressed, graph: (
            f"reprolint: {active} finding(s) "
            f"({suppressed} suppressed, {len(graph)} acquisition edge(s) "
            f"observed)"
        ),
        path_help="files or directories to analyze (default: src/repro)",
        argv=argv,
    )


if __name__ == "__main__":
    sys.exit(main())
