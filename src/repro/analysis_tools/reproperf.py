"""reproperf — hot-path & cost-model static analysis for the repro kernels.

The paper's headline results are *cost curves*: per-query comparisons and
tuple movements that shrink as the index converges.  Two classes of bug
silently falsify them — an uncharged compare/move site under-reports the
logical cost model, and an accidental Python-level allocation or attribute
reload inside a per-row loop bends every wall-clock figure.  This analyzer
walks the kernel modules (``core/cracking``, ``core/merging``,
``core/hybrids``, ``core/partitioned.py``) with nothing but :mod:`ast`:

``PF001`` object allocation inside a hot loop
    List/dict/set displays, comprehensions, generator expressions,
    lambdas, ``list()``/``dict()``/``set()``/``tuple()``/``sorted()``
    constructor calls, and fresh tuples fed to ``.append`` allocate a
    Python object per iteration.
``PF002`` repeated attribute loads inside a hot loop
    The same ``self._values``-style attribute chain loaded two or more
    times per iteration pays the CPython attribute-lookup tax each time;
    hoist it to a local before the loop.  Chains that are rebound inside
    the loop, or used only as call targets, are not flagged.
``PF003`` cost-model soundness for ``@charges``-annotated kernels
    A kernel decorated :func:`repro.analysis_tools.guards.charges` must
    (a) record every channel it declares, (b) declare every channel it
    records, and (c) charge element compare/move sites on the path that
    executes them — a subscript store inside an ``if`` arm whose
    ``record_move`` lives in the *other* arm is a silent cost leak.
``PF004`` loop-invariant ``len()`` recomputed in a ``while`` condition
    ``while i < len(values)`` re-measures ``values`` every iteration even
    when the body never changes its length.
``PF005`` per-element call into Python-level code from a hot loop
    Each such call blocks the planned typed-buffer kernel migration (the
    interpreter must re-enter per element); findings name the callee so
    they double as the migration worklist.

Findings carry ``file:line``, the rule id and a fix hint.  Suppressions
live in a checked-in TOML baseline (``reproperf.toml``; every entry needs
a ``reason``) or as inline ``# reproperf: ignore[PF00x]`` comments.  Run::

    python -m repro.analysis_tools.reproperf [paths] [--format=text|json]

Exit status is 0 when every finding is suppressed (or none exist), 1
otherwise (or, with ``--strict-baseline``, when stale baseline entries
remain), 2 on usage errors.
"""

from __future__ import annotations

import ast
import sys
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis_tools.common import (
    Finding,
    apply_baseline,
    apply_inline_suppressions as _shared_inline_suppressions,
    iter_python_files,
    load_baseline,
    render_json as _render_json,
    run_cli,
)
from repro.analysis_tools.guards import CHARGE_CHANNELS

__all__ = [
    "RULES", "DEFAULT_TARGETS", "Finding", "analyze_paths",
    "iter_python_files", "load_baseline", "apply_baseline", "render_json",
    "main",
]


RULES = {
    "PF001": "object allocation inside a hot loop",
    "PF002": "repeated attribute loads inside a hot loop",
    "PF003": "@charges kernel with unsound cost accounting",
    "PF004": "loop-invariant len() recomputed in a while condition",
    "PF005": "per-element Python-level call from a hot loop",
}

#: the kernel modules the cost model lives in (relative to the repo root)
DEFAULT_TARGETS = (
    "src/repro/columnstore/bulk.py",
    "src/repro/core/cracking",
    "src/repro/core/merging",
    "src/repro/core/hybrids",
    "src/repro/core/partitioned.py",
)

#: record method -> channel (inverse of guards.CHARGE_CHANNELS)
_RECORD_METHODS: Dict[str, str] = {
    method: channel
    for channel, methods in CHARGE_CHANNELS.items()
    for method in methods
}

#: builtin constructors whose call allocates a fresh container
_ALLOCATING_BUILTINS = {"list", "dict", "set", "tuple", "sorted"}

#: roots whose methods dispatch to C, not bytecode (safe in hot loops)
_NATIVE_ROOTS = {
    "np", "numpy", "math", "bisect", "heapq", "itertools", "operator",
    "threading", "os", "sys", "time", "array",
}

#: method names that resolve to C implementations on the builtin/ndarray
#: types the kernels traffic in — calling them per element is cheap-ish
#: and, more to the point, not a typed-buffer migration blocker
_NATIVE_METHODS = {
    # list / dict / set
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "get", "keys", "values",
    "items", "sort", "reverse", "copy", "count", "index",
    # ndarray / scalar
    "astype", "tolist", "item", "fill", "searchsorted", "argsort",
    "min", "max", "sum", "any", "all", "nonzero", "reshape", "view",
    "take", "partition", "argpartition", "cumsum",
    # str
    "join", "split", "startswith", "endswith", "format", "strip",
    # locks / sync primitives
    "acquire", "release", "locked", "wait", "notify", "notify_all",
}

#: functions where hot-loop rules do not apply: construction, teardown,
#: invariant checks and human-facing description helpers run off the
#: per-query path
_EXEMPT_FUNCTIONS = {"check_invariants", "describe", "structure_description"}
_EXEMPT_DECORATORS = {"property", "cached_property"}


def _attr_chain(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``a.b.c`` -> ("a", "a.b.c") when the chain is names all the way down."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or not parts:
        return None
    parts.append(node.id)
    parts.reverse()
    return node.id, ".".join(parts)


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all our inputs
        return ast.dump(node)


def _iter_stop_at_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class scopes.

    Scope-boundary children (nested defs, lambdas, classes) are yielded —
    so rules can flag the boundary itself — but not entered.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _record_calls(node: ast.AST) -> Iterator[Tuple[str, ast.Call]]:
    """(channel, call) pairs for every ``*.record_<x>(...)`` under ``node``."""
    for sub in _iter_stop_at_functions(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _RECORD_METHODS
        ):
            yield _RECORD_METHODS[sub.func.attr], sub


class _ModuleAnalyzer(ast.NodeVisitor):
    """Single pass over one module: emit PF findings."""

    def __init__(self, path: str, findings: List[Finding]) -> None:
        self.path = path
        self.findings = findings
        self.class_stack: List[str] = []
        self.function_stack: List[str] = []
        #: names that resolve to Python-level code: module-level defs plus
        #: anything imported from the repro package itself
        self.python_level_names: Set[str] = set()
        self._seen: Set[Tuple[str, int, int, str]] = set()

    # -- plumbing ----------------------------------------------------------------

    @property
    def symbol(self) -> str:
        return ".".join(self.class_stack + self.function_stack) or "<module>"

    def _report(self, rule: str, node: ast.AST, message: str, hint: str = "",
                attribute: str = "") -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        dedup = (rule, line, col, attribute)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=line,
                symbol=self.symbol,
                message=message,
                hint=hint,
                attribute=attribute,
            )
        )

    def visit_Module(self, node: ast.Module) -> None:
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.python_level_names.add(statement.name)
            elif isinstance(statement, ast.ImportFrom):
                module = statement.module or ""
                if statement.level > 0 or module.split(".")[0] == "repro":
                    for alias in statement.names:
                        self.python_level_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    @staticmethod
    def _is_exempt(node: ast.FunctionDef) -> bool:
        name = node.name
        if name in _EXEMPT_FUNCTIONS or name.startswith("_init_"):
            return True
        if name.startswith("__") and name.endswith("__") and name != "__call__":
            return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id in _EXEMPT_DECORATORS:
                return True
            if isinstance(decorator, ast.Attribute) and decorator.attr in (
                _EXEMPT_DECORATORS | {"setter", "getter", "deleter"}
            ):
                return True
        return False

    @staticmethod
    def _charges_channels(node: ast.FunctionDef) -> Optional[List[str]]:
        """The channels declared by an ``@charges`` decorator, or None."""
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name != "charges":
                continue
            return [
                argument.value
                for argument in decorator.args
                if isinstance(argument, ast.Constant)
                and isinstance(argument.value, str)
            ]
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.function_stack.append(node.name)
        if not self._is_exempt(node):
            declared = self._charges_channels(node)
            if declared is not None:
                self._check_charges(node, declared)
            self._scan_loops(node.body)
        self.generic_visit(node)
        self.function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- hot-loop rules (PF001 / PF002 / PF004 / PF005) ---------------------------

    def _scan_loops(self, statements: Sequence[ast.stmt]) -> None:
        """Find every loop in ``statements``, not crossing scope boundaries."""
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, (ast.For, ast.While)):
                self._check_loop(statement)
            for _field, value in ast.iter_fields(statement):
                if isinstance(value, list) and value and isinstance(
                    value[0], ast.stmt
                ):
                    self._scan_loops(value)

    def _loop_region(self, loop: ast.stmt) -> List[ast.AST]:
        """Nodes evaluated once per iteration (body + ``while`` test)."""
        region: List[ast.AST] = []
        if isinstance(loop, ast.While):
            region.extend(_iter_stop_at_functions(loop.test))
        for statement in loop.body:
            region.extend(_iter_stop_at_functions(statement))
        return region

    def _check_loop(self, loop: ast.stmt) -> None:
        region = self._loop_region(loop)
        self._check_allocations(region)
        self._check_attribute_reloads(loop, region)
        if isinstance(loop, ast.While):
            self._check_invariant_len(loop)
        self._check_python_calls(region)

    def _check_allocations(self, region: Sequence[ast.AST]) -> None:
        for node in region:
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                kind = type(node).__name__
                self._report(
                    "PF001", node,
                    f"{kind} allocates per iteration of the enclosing loop",
                    hint="build the result once outside the loop, or fold "
                         "the work into a vectorized kernel",
                )
            elif isinstance(node, ast.Lambda):
                self._report(
                    "PF001", node,
                    "lambda creates a function object per iteration",
                    hint="define the function once before the loop",
                )
            elif isinstance(node, (ast.List, ast.Set)) and isinstance(
                getattr(node, "ctx", ast.Load()), ast.Load
            ):
                kind = "list" if isinstance(node, ast.List) else "set"
                self._report(
                    "PF001", node,
                    f"{kind} display allocates per iteration of the "
                    f"enclosing loop",
                    hint="preallocate outside the loop or use a typed "
                         "buffer/ndarray",
                )
            elif isinstance(node, ast.Dict):
                self._report(
                    "PF001", node,
                    "dict display allocates per iteration of the enclosing "
                    "loop",
                    hint="preallocate outside the loop or use parallel "
                         "arrays",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ALLOCATING_BUILTINS
            ):
                self._report(
                    "PF001", node,
                    f"{node.func.id}() allocates a fresh container per "
                    f"iteration of the enclosing loop",
                    hint="hoist the construction out of the loop or operate "
                         "on a preallocated buffer",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                for argument in node.args:
                    if isinstance(argument, ast.Tuple):
                        self._report(
                            "PF001", argument,
                            "fresh tuple built per iteration just to be "
                            "appended",
                            hint="append to parallel lists (or preallocated "
                                 "arrays) instead of boxing a tuple per "
                                 "element",
                        )

    def _check_attribute_reloads(self, loop: ast.stmt,
                                 region: Sequence[ast.AST]) -> None:
        # names and chains rebound inside the loop make hoisting unsafe
        stored_names: Set[str] = set()
        stored_chains: Set[str] = set()
        if isinstance(loop, ast.For):
            for target in ast.walk(loop.target):
                if isinstance(target, ast.Name):
                    stored_names.add(target.id)
        for node in region:
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                stored_names.add(node.id)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                chain = _attr_chain(node)
                if chain is not None:
                    stored_chains.add(chain[1])

        call_targets = {
            id(node.func) for node in region
            if isinstance(node, ast.Call)
        }
        attribute_parents = {
            id(node.value) for node in region
            if isinstance(node, ast.Attribute)
        }
        loads: Dict[str, List[ast.Attribute]] = {}
        for node in region:
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if id(node) in call_targets:  # bound-method lookup, not data
                continue
            if id(node) in attribute_parents:  # only maximal chains count
                continue
            chain = _attr_chain(node)
            if chain is None:
                continue
            root, text = chain
            if root in stored_names or text in stored_chains:
                continue
            if any(text.startswith(stored + ".") for stored in stored_chains):
                continue
            loads.setdefault(text, []).append(node)

        for text, nodes in loads.items():
            if len(nodes) < 2:
                continue
            first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
            local = text.rsplit(".", 1)[-1]
            self._report(
                "PF002", first,
                f"attribute chain `{text}` loaded {len(nodes)} times per "
                f"iteration of the loop at line {loop.lineno}",
                hint=f"hoist it to a local before the loop "
                     f"(`{local} = {text}`) — attribute lookups are "
                     f"per-iteration bytecode, locals are array slots",
                attribute=text,
            )

    def _check_invariant_len(self, loop: ast.While) -> None:
        for node in ast.walk(loop.test):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and len(node.args) == 1
            ):
                continue
            argument = node.args[0]
            if isinstance(argument, ast.Name):
                root, text = argument.id, argument.id
            else:
                chain = _attr_chain(argument)
                if chain is None:
                    continue
                root, text = chain
            if self._length_changes(loop.body, root, text):
                continue
            self._report(
                "PF004", loop,
                f"`len({text})` recomputed every iteration of the while "
                f"condition but the loop body never changes its length",
                hint=f"hoist `n = len({text})` above the loop (or iterate "
                     f"with `for`/`range`)",
                attribute=text,
            )

    @staticmethod
    def _length_changes(body: Sequence[ast.stmt], root: str, text: str) -> bool:
        resizing = {"append", "extend", "insert", "pop", "remove", "clear"}
        for statement in body:
            for node in _iter_stop_at_functions(statement):
                if isinstance(node, ast.Name) and node.id == root and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    return True
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    chain = _attr_chain(node)
                    if chain is not None and chain[1] == text:
                        return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in resizing
                    and _expr_text(node.func.value) == text
                ):
                    return True
                if isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Del
                ) and _expr_text(node.value) == text:
                    return True
        return False

    def _check_python_calls(self, region: Sequence[ast.AST]) -> None:
        for node in region:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id not in self.python_level_names:
                    continue
                self._report(
                    "PF005", node,
                    f"call to Python-level function `{func.id}` per "
                    f"iteration of the enclosing loop",
                    hint="per-element interpreter re-entry blocks the "
                         "typed-buffer kernel migration; batch the work or "
                         "inline it as array operations",
                    attribute=func.id,
                )
            elif isinstance(func, ast.Attribute):
                method = func.attr
                if method in _NATIVE_METHODS or method in _RECORD_METHODS:
                    continue
                if method.startswith("record_") or method.startswith("__"):
                    continue
                chain = _attr_chain(func)
                if chain is not None and chain[0] in _NATIVE_ROOTS:
                    continue
                self._report(
                    "PF005", node,
                    f"call to Python-level method `{_expr_text(func)}` per "
                    f"iteration of the enclosing loop",
                    hint="per-element interpreter re-entry blocks the "
                         "typed-buffer kernel migration; batch the work or "
                         "push the loop into the callee",
                    attribute=method,
                )
            elif isinstance(func, ast.Call):
                self._report(
                    "PF005", node,
                    f"dynamically dispatched call "
                    f"`{_expr_text(func)}(...)` per iteration of the "
                    f"enclosing loop",
                    hint="resolve the callable once before the loop",
                    attribute="<dynamic>",
                )

    # -- PF003: @charges soundness ------------------------------------------------

    def _check_charges(self, node: ast.FunctionDef, declared: List[str]) -> None:
        recorded: Set[str] = set()
        for channel, call in _record_calls(node):
            recorded.add(channel)
            if channel not in declared:
                self._report(
                    "PF003", call,
                    f"kernel charges `{channel}` but @charges does not "
                    f"declare it",
                    hint=f"add \"{channel}\" to the @charges declaration so "
                         f"the contract stays exhaustive",
                    attribute=channel,
                )
        for channel in declared:
            if channel not in recorded:
                self._report(
                    "PF003", node,
                    f"kernel declares @charges(\"{channel}\") but never "
                    f"records it",
                    hint=f"charge counters.{CHARGE_CHANNELS[channel][0]}(...) "
                         f"or drop the declaration",
                    attribute=channel,
                )
        self._check_charge_paths(node.body, declared, frozenset())

    @staticmethod
    def _is_counters_guard(test: ast.expr) -> bool:
        """True for ``if counters is not None:``-style accounting guards.

        When ``counters`` is absent nothing *needs* charging, so a charge
        under this guard is unconditional as far as the cost model goes.
        """
        return any(
            isinstance(node, ast.Name) and node.id == "counters"
            for node in ast.walk(test)
        )

    def _block_channels(self, statements: Sequence[ast.stmt]) -> Set[str]:
        """Channels recorded unconditionally at this block level."""
        channels: Set[str] = set()
        conditional = (ast.If, ast.For, ast.While, ast.Match,
                       ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        for statement in statements:
            if isinstance(statement, ast.If) and self._is_counters_guard(
                statement.test
            ):
                channels |= self._block_channels(statement.body)
                continue
            if isinstance(statement, conditional):
                continue
            if isinstance(statement, ast.With):
                channels |= self._block_channels(statement.body)
            elif isinstance(statement, ast.Try):
                channels |= self._block_channels(statement.body)
            else:
                for channel, _call in _record_calls(statement):
                    channels.add(channel)
        return channels

    def _check_charge_paths(self, statements: Sequence[ast.stmt],
                            declared: List[str],
                            inherited: frozenset) -> None:
        available = frozenset(inherited | self._block_channels(statements))
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            for channel, site, what in self._mutation_sites(statement):
                if channel not in declared:
                    self._report(
                        "PF003", site,
                        f"kernel {what} but @charges does not declare "
                        f"`{channel}`",
                        hint=f"declare \"{channel}\" and charge "
                             f"counters.{CHARGE_CHANNELS[channel][0]}(...) "
                             f"next to the mutation",
                        attribute=channel,
                    )
                elif channel not in available:
                    self._report(
                        "PF003", site,
                        f"kernel {what} on a path that never charges "
                        f"`{channel}`",
                        hint=f"charge counters."
                             f"{CHARGE_CHANNELS[channel][0]}(...) in the "
                             f"same branch as the mutation (a charge in a "
                             f"sibling branch does not cover this path)",
                        attribute=channel,
                    )
            for _field, value in ast.iter_fields(statement):
                if isinstance(value, list) and value and isinstance(
                    value[0], ast.stmt
                ):
                    self._check_charge_paths(value, declared, available)

    @staticmethod
    def _mutation_sites(
        statement: ast.stmt,
    ) -> List[Tuple[str, ast.AST, str]]:
        """(channel, node, description) triples directly in ``statement``.

        Only the statement's own expressions are inspected — mutations in
        nested blocks are visited by the recursive path walk so they check
        against *their* path's charges, not this one's.
        """
        sites: List[Tuple[str, ast.AST, str]] = []

        def scan_expressions(roots: Sequence[ast.AST]) -> None:
            for root in roots:
                for node in _iter_stop_at_functions(root):
                    if isinstance(node, ast.Compare) and any(
                        isinstance(side, ast.Subscript)
                        for side in [node.left, *node.comparators]
                    ):
                        sites.append(
                            ("comparisons", node, "compares elements")
                        )

        def target_moves(target: ast.expr) -> bool:
            return any(
                isinstance(sub, ast.Subscript)
                for sub in ast.walk(target)
            )

        if isinstance(statement, ast.Assign):
            if any(target_moves(target) for target in statement.targets):
                sites.append(("movements", statement, "moves elements"))
            scan_expressions([statement.value])
        elif isinstance(statement, ast.AugAssign):
            if target_moves(statement.target):
                sites.append(("movements", statement, "moves elements"))
            scan_expressions([statement.value])
        elif isinstance(statement, ast.Expr):
            call = statement.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in ("append", "extend", "insert")
            ):
                sites.append(("movements", statement, "moves elements"))
            scan_expressions([statement.value])
        elif isinstance(statement, (ast.If, ast.While)):
            scan_expressions([statement.test])
        elif isinstance(statement, ast.Return) and statement.value is not None:
            scan_expressions([statement.value])
        return sites


# -- driver ----------------------------------------------------------------------


def analyze_paths(paths: Sequence[str]) -> Tuple[
    List[Finding], Dict[str, List[str]]
]:
    """Run every PF rule over ``paths``.

    Returns ``(findings, worklist)`` where the worklist maps each PF005
    callee (including baselined ones — they are the typed-buffer migration
    inventory) to the ``path:line`` sites that call it per element.
    """
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text()
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="PF000",
                    path=str(file_path),
                    line=error.lineno or 0,
                    symbol="<module>",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        analyzer = _ModuleAnalyzer(str(file_path), findings)
        analyzer.visit(tree)
        _shared_inline_suppressions(
            findings, str(file_path), source.splitlines(), "reproperf"
        )
    findings.sort(key=Finding.key)
    worklist: Dict[str, List[str]] = {}
    for finding in findings:
        if finding.rule == "PF005" and finding.attribute:
            worklist.setdefault(finding.attribute, []).append(
                f"{finding.path}:{finding.line}"
            )
    return findings, worklist


def _worklist_payload(worklist: Dict[str, List[str]]) -> Dict[str, object]:
    return {
        "migration_worklist": {
            callee: sites for callee, sites in sorted(worklist.items())
        },
    }


def render_json(
    findings: List[Finding],
    worklist: Dict[str, List[str]],
    unused_baseline: List[str],
) -> str:
    return _render_json(findings, unused_baseline, _worklist_payload(worklist))


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_cli(
        tool="reproperf",
        description="hot-path & cost-model static analysis for the repro kernels",
        default_paths=list(DEFAULT_TARGETS),
        default_baseline="reproperf.toml",
        analyze=analyze_paths,
        extra_payload=_worklist_payload,
        summary=lambda active, suppressed, worklist: (
            f"reproperf: {active} finding(s) ({suppressed} suppressed, "
            f"{len(worklist)} callee(s) on the migration worklist)"
        ),
        path_help="files or directories to analyze (default: the kernel modules)",
        argv=argv,
    )


if __name__ == "__main__":
    sys.exit(main())
