"""reprotype — typed-kernel dataflow analysis for the repro kernels.

The typed-buffer migration replaces per-element Python loops in the
cracking/merge kernels with vectorized numpy operations.  Its contract is
declared per kernel with :func:`repro.analysis_tools.guards.typed_kernel`
(which parameters are flat numpy buffers, their dtype class, and which the
kernel mutates); this analyzer walks the kernel modules with nothing but
:mod:`ast` and verifies the bodies honor it:

``TB001`` per-element Python iteration over a typed buffer
    A ``for`` loop over a declared buffer (directly, via ``range(len(...))``,
    ``enumerate``/``zip``), or a ``while`` loop walking a buffer through a
    mutated index, re-enters the interpreter once per element — exactly
    what the migration removes.  Iterating a ``*`` container of buffers is
    fine (one iteration per column, not per element); the loop target then
    becomes a tracked buffer itself.
``TB002`` dtype-unstable operation on the hot path
    ``.tolist()`` / ``list(...)`` on a buffer boxes every element;
    ``np.array([...])`` literals mixing int and float constants produce a
    value-dependent dtype; an explicit ``dtype=object`` de-vectorizes every
    downstream op.
``TB003`` typed kernel calling an unannotated callee with a buffer
    Buffers must stay inside the typed-kernel boundary: a Python-level
    callee that has no ``@typed_kernel`` declaration of its own can break
    the contract invisibly.  This closes the system so the migration
    cannot silently regress.
``TB004`` analytic-charge mismatch
    A vectorized kernel must compute its ``@charges`` channels in closed
    form; a ``counters.record_*`` call inside a loop is the removed
    per-element loop surviving in the accounting.
``TB005`` in-place buffer mutation without ownership
    Subscript stores, in-place sorts/fills on a declared buffer (or an
    alias/view of one) that the kernel does not list in ``mutates=``.
    Mutated buffers may alias ``SharedArrayBuffer`` views owned by the
    process executor; the declaration is the ownership handshake the
    runtime type witness and PR 8's single-owner discipline rely on.

All rules apply only inside ``@typed_kernel``-decorated functions, so the
contract is opt-in per kernel.  Findings carry ``file:line``, the rule id
and a fix hint.  Suppressions live in a checked-in TOML baseline
(``reprotype.toml``; every entry needs a ``reason``) or as inline
``# reprotype: ignore[TB00x]`` comments.  Run::

    python -m repro.analysis_tools.reprotype [paths] [--format=text|json]

Exit status is 0 when every finding is suppressed (or none exist), 1
otherwise (or, with ``--strict-baseline``, when stale baseline entries
remain), 2 on usage errors.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis_tools.common import (
    Finding,
    apply_baseline,
    apply_inline_suppressions as _shared_inline_suppressions,
    iter_python_files,
    load_baseline,
    render_json as _render_json,
    run_cli,
)
from repro.analysis_tools.guards import CHARGE_CHANNELS

__all__ = [
    "RULES", "DEFAULT_TARGETS", "Finding", "analyze_paths",
    "iter_python_files", "load_baseline", "apply_baseline", "render_json",
    "main",
]

RULES = {
    "TB001": "per-element Python iteration over a typed buffer",
    "TB002": "dtype-unstable operation on a typed-kernel hot path",
    "TB003": "typed kernel passes a buffer to an unannotated callee",
    "TB004": "@charges channel bumped per iteration instead of closed form",
    "TB005": "in-place mutation of a buffer the kernel does not own",
}

#: the kernel modules the typed-buffer contract lives in
DEFAULT_TARGETS = (
    "src/repro/columnstore/bulk.py",
    "src/repro/core/cracking",
    "src/repro/core/merging",
    "src/repro/core/hybrids",
    "src/repro/core/partitioned.py",
)

#: record method -> channel (inverse of guards.CHARGE_CHANNELS)
_RECORD_METHODS: Dict[str, str] = {
    method: channel
    for channel, methods in CHARGE_CHANNELS.items()
    for method in methods
}

#: ndarray methods that mutate their receiver in place
_MUTATING_BUFFER_METHODS = {"sort", "fill", "partition", "put", "resize"}

#: taint kinds
_BUFFER, _CONTAINER = "buffer", "container"


@dataclass
class KernelDecl:
    """One ``@typed_kernel`` declaration, read from the decorator AST."""

    name: str
    symbol: str
    path: str
    line: int
    buffers: Dict[str, str] = field(default_factory=dict)
    mutates: Set[str] = field(default_factory=set)


def _decorator_name(decorator: ast.expr) -> str:
    func = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _constant_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _typed_kernel_decl(
    node: ast.FunctionDef, symbol: str, path: str
) -> Optional[KernelDecl]:
    """Parse the ``@typed_kernel`` decorator of ``node``, if present."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _decorator_name(decorator) != "typed_kernel":
            continue
        decl = KernelDecl(
            name=node.name, symbol=symbol, path=path, line=node.lineno
        )
        default_spec = "numeric"
        for keyword in decorator.keywords:
            if keyword.arg == "dtype":
                value = _constant_str(keyword.value)
                if value is not None:
                    default_spec = value
        for keyword in decorator.keywords:
            if keyword.arg == "buffers":
                if isinstance(keyword.value, ast.Dict):
                    for key, value in zip(
                        keyword.value.keys, keyword.value.values
                    ):
                        name = _constant_str(key) if key is not None else None
                        spec = _constant_str(value)
                        if name is not None:
                            decl.buffers[name] = spec or default_spec
                elif isinstance(keyword.value, (ast.List, ast.Tuple, ast.Set)):
                    for element in keyword.value.elts:
                        name = _constant_str(element)
                        if name is not None:
                            decl.buffers[name] = default_spec
            elif keyword.arg == "mutates":
                if isinstance(keyword.value, (ast.List, ast.Tuple, ast.Set)):
                    for element in keyword.value.elts:
                        name = _constant_str(element)
                        if name is not None:
                            decl.mutates.add(name)
        return decl
    return None


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all our inputs
        return ast.dump(node)


def _iter_stop_at_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


class _KernelChecker:
    """Check one ``@typed_kernel`` function body against its declaration."""

    def __init__(
        self,
        path: str,
        node: ast.FunctionDef,
        decl: KernelDecl,
        typed_kernel_names: Set[str],
        python_level_names: Set[str],
        findings: List[Finding],
    ) -> None:
        self.path = path
        self.node = node
        self.decl = decl
        self.typed_kernel_names = typed_kernel_names
        self.python_level_names = python_level_names
        self.findings = findings
        #: name -> taint kind (_BUFFER or _CONTAINER)
        self.taint: Dict[str, str] = {}
        for name, spec in decl.buffers.items():
            self.taint[name] = _CONTAINER if "*" in spec else _BUFFER
        #: buffer name -> the declared parameter it aliases (for messages)
        self.alias_of: Dict[str, str] = {name: name for name in decl.buffers}

    # -- plumbing ----------------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str, hint: str = "",
                attribute: str = "") -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                symbol=self.decl.symbol,
                message=message,
                hint=hint,
                attribute=attribute,
            )
        )

    def _buffer_name(self, node: ast.expr) -> Optional[str]:
        """The tainted buffer name ``node`` refers to, if any.

        Follows plain names and subscript *views* (``buf[a:b]`` is still
        the same storage); attribute chains are not tracked — kernels take
        buffers as parameters, not through ``self``.
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name) and self.taint.get(node.id) == _BUFFER:
            return node.id
        return None

    def _container_name(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name) and self.taint.get(node.id) == _CONTAINER:
            return node.id
        return None

    def _root_param(self, name: str) -> str:
        return self.alias_of.get(name, name)

    # -- the single pass ---------------------------------------------------------

    def check(self) -> None:
        self._collect_aliases()
        for sub in _iter_stop_at_functions(self.node):
            if isinstance(sub, ast.For):
                self._check_for_loop(sub)
            elif isinstance(sub, ast.While):
                self._check_while_loop(sub)
            elif isinstance(sub, ast.Call):
                self._check_call(sub)
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                self._check_mutation(sub)
        self._check_charge_sites()

    def _collect_aliases(self) -> None:
        """Propagate buffer taint through plain assignments and views.

        Flow-insensitive on purpose: a name ever bound to a buffer (or a
        view of one) counts as that buffer everywhere, trading precision
        for zero false negatives on aliased mutation (TB005).
        """
        changed = True
        while changed:
            changed = False
            for sub in _iter_stop_at_functions(self.node):
                if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                    continue
                target = sub.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                source = self._buffer_name(sub.value)
                if source is not None and self.taint.get(target.id) != _BUFFER:
                    self.taint[target.id] = _BUFFER
                    self.alias_of[target.id] = self._root_param(source)
                    changed = True
                elif isinstance(sub.value, (ast.List, ast.Tuple)) and any(
                    self._buffer_name(element) is not None
                    for element in sub.value.elts
                ) and self.taint.get(target.id) != _CONTAINER:
                    self.taint[target.id] = _CONTAINER
                    for element in sub.value.elts:
                        buffer = self._buffer_name(element)
                        if buffer is not None:
                            self.alias_of[target.id] = self._root_param(buffer)
                            break
                    changed = True
                elif isinstance(sub.value, ast.Call) and isinstance(
                    sub.value.func, ast.Name
                ) and self.taint.get(target.id) is None:
                    # a Python-level helper fed a tainted buffer/container
                    # returns data derived from it (payload normalizers):
                    # treat the result as a container with the same root
                    tainted_root = self._tainted_argument_root(sub.value)
                    if tainted_root is not None:
                        self.taint[target.id] = _CONTAINER
                        self.alias_of[target.id] = tainted_root
                        changed = True
            # iterating a container yields buffers: taint the loop target
            for sub in _iter_stop_at_functions(self.node):
                if not isinstance(sub, ast.For) or not isinstance(
                    sub.target, ast.Name
                ):
                    continue
                root: Optional[str] = None
                container = self._container_name(sub.iter)
                if container is not None:
                    root = self._root_param(container)
                elif isinstance(sub.iter, ast.Call) and isinstance(
                    sub.iter.func, ast.Name
                ) and sub.iter.func.id in self.python_level_names:
                    root = self._tainted_argument_root(sub.iter)
                if root is not None and (
                    self.taint.get(sub.target.id) != _BUFFER
                ):
                    self.taint[sub.target.id] = _BUFFER
                    self.alias_of[sub.target.id] = root
                    changed = True

    def _tainted_argument_root(self, call: ast.Call) -> Optional[str]:
        """Root param of the first tainted argument of ``call``, if any."""
        for argument in list(call.args) + [kw.value for kw in call.keywords]:
            buffer = self._buffer_name(argument)
            if buffer is not None:
                return self._root_param(buffer)
            container = self._container_name(argument)
            if container is not None:
                return self._root_param(container)
        return None

    # -- TB001 -------------------------------------------------------------------

    def _check_for_loop(self, loop: ast.For) -> None:
        iterated = self._iterated_buffer(loop.iter)
        if iterated is None:
            return
        self._report(
            "TB001", loop,
            f"per-element Python loop over typed buffer "
            f"`{self._root_param(iterated)}`",
            hint="replace the loop with vectorized numpy operations "
                 "(masks, argsort, fancy indexing); per-element "
                 "interpreter re-entry is what the typed-kernel contract "
                 "forbids",
            attribute=self._root_param(iterated),
        )

    def _iterated_buffer(self, iterable: ast.expr) -> Optional[str]:
        """The buffer a ``for`` iterable walks element-wise, if any."""
        direct = self._buffer_name(iterable)
        if direct is not None:
            return direct
        if not isinstance(iterable, ast.Call):
            return None
        func = iterable.func
        name = func.id if isinstance(func, ast.Name) else ""
        if name in ("enumerate", "zip", "reversed", "sorted", "iter"):
            for argument in iterable.args:
                found = self._iterated_buffer(argument)
                if found is not None:
                    return found
        elif name == "range":
            for argument in iterable.args:
                for sub in ast.walk(argument):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "len"
                        and sub.args
                    ):
                        found = self._buffer_name(sub.args[0])
                        if found is not None:
                            return found
        return None

    def _check_while_loop(self, loop: ast.While) -> None:
        mutated_names: Set[str] = set()
        for statement in loop.body:
            for sub in _iter_stop_at_functions(statement):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store,)
                ):
                    mutated_names.add(sub.id)
                elif isinstance(sub, ast.AugAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    mutated_names.add(sub.target.id)
        region = list(_iter_stop_at_functions(loop.test))
        for statement in loop.body:
            region.extend(_iter_stop_at_functions(statement))
        for sub in region:
            if not isinstance(sub, ast.Subscript):
                continue
            buffer = self._buffer_name(sub.value)
            if buffer is None:
                continue
            index_names = {
                name.id for name in ast.walk(sub.slice)
                if isinstance(name, ast.Name)
            }
            if index_names & mutated_names:
                self._report(
                    "TB001", loop,
                    f"while loop walks typed buffer "
                    f"`{self._root_param(buffer)}` one element at a time "
                    f"through a mutated index",
                    hint="express the walk as a vectorized scan "
                         "(searchsorted / cumulative masks) instead of an "
                         "interpreter-stepped cursor",
                    attribute=self._root_param(buffer),
                )
                return

    # -- TB002 / TB003 -----------------------------------------------------------

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        # .tolist() on a buffer boxes every element
        if isinstance(func, ast.Attribute) and func.attr == "tolist":
            buffer = self._buffer_name(func.value)
            if buffer is not None:
                self._report(
                    "TB002", call,
                    f"`.tolist()` boxes every element of typed buffer "
                    f"`{self._root_param(buffer)}`",
                    hint="stay in ndarray land; if Python objects are "
                         "required the conversion belongs outside the "
                         "kernel boundary",
                    attribute=self._root_param(buffer),
                )
                return
        if isinstance(func, ast.Name):
            if func.id == "list" and call.args:
                buffer = self._buffer_name(call.args[0])
                if buffer is not None:
                    self._report(
                        "TB002", call,
                        f"`list(...)` boxes every element of typed buffer "
                        f"`{self._root_param(buffer)}`",
                        hint="keep the data as an ndarray; boxing on the "
                             "hot path de-vectorizes the kernel",
                        attribute=self._root_param(buffer),
                    )
                    return
            self._check_python_callee(call, func.id)
        self._check_array_literal(call)

    def _check_array_literal(self, call: ast.Call) -> None:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name not in ("array", "asarray", "fromiter"):
            return
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                value = keyword.value
                target = (
                    value.attr if isinstance(value, ast.Attribute)
                    else value.id if isinstance(value, ast.Name) else ""
                )
                if target == "object":
                    self._report(
                        "TB002", call,
                        "explicit dtype=object de-vectorizes every "
                        "operation on the resulting array",
                        hint="use a concrete numeric dtype, or move the "
                             "object-array construction out of the kernel",
                        attribute="object",
                    )
                    return
                return  # an explicit concrete dtype is stable by definition
        if not call.args:
            return
        literal = call.args[0]
        if not isinstance(literal, (ast.List, ast.Tuple)):
            return
        kinds: Set[str] = set()
        for element in literal.elts:
            if isinstance(element, ast.Constant):
                if isinstance(element.value, bool):
                    kinds.add("bool")
                elif isinstance(element.value, int):
                    kinds.add("int")
                elif isinstance(element.value, float):
                    kinds.add("float")
        if "int" in kinds and "float" in kinds:
            self._report(
                "TB002", call,
                f"`{name}([...])` literal mixes int and float constants — "
                f"the array dtype becomes value-dependent",
                hint="pass an explicit dtype= (or make the literals "
                     "homogeneous) so the kernel's dtype is stable",
                attribute=name,
            )

    def _check_python_callee(self, call: ast.Call, callee: str) -> None:
        if callee not in self.python_level_names:
            return
        if callee in self.typed_kernel_names:
            return
        tainted = [
            self._root_param(name)
            for argument in list(call.args)
            + [kw.value for kw in call.keywords]
            for name in [
                self._buffer_name(argument) or self._container_name(argument)
            ]
            if name is not None
        ]
        if not tainted:
            return
        self._report(
            "TB003", call,
            f"typed kernel passes buffer(s) {', '.join(sorted(set(tainted)))} "
            f"to `{callee}`, which has no @typed_kernel declaration",
            hint=f"annotate `{callee}` with @typed_kernel (closing the "
                 f"contract) or keep the buffer inside this kernel",
            attribute=callee,
        )

    # -- TB004 -------------------------------------------------------------------

    def _check_charge_sites(self) -> None:
        loops = [
            sub for sub in _iter_stop_at_functions(self.node)
            if isinstance(sub, (ast.For, ast.While))
        ]
        for loop in loops:
            body_region: List[ast.AST] = []
            for statement in loop.body + getattr(loop, "orelse", []):
                body_region.extend(_iter_stop_at_functions(statement))
            for sub in body_region:
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _RECORD_METHODS
                ):
                    channel = _RECORD_METHODS[sub.func.attr]
                    self._report(
                        "TB004", sub,
                        f"`{channel}` charged inside a loop — a vectorized "
                        f"kernel computes its @charges channels in closed "
                        f"form",
                        hint="hoist the charge out of the loop and record "
                             "the analytic total (e.g. "
                             "record_move(len(moved)) once)",
                        attribute=channel,
                    )

    # -- TB005 -------------------------------------------------------------------

    def _check_mutation(self, statement: ast.stmt) -> None:
        targets = (
            statement.targets if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            buffer = self._buffer_name(target.value)
            if buffer is None:
                continue
            root = self._root_param(buffer)
            if root in self.decl.mutates:
                continue
            self._report(
                "TB005", statement,
                f"in-place store into typed buffer `{root}` which the "
                f"kernel does not declare in mutates=",
                hint=f"add \"{root}\" to the @typed_kernel mutates= "
                     f"declaration — mutated buffers may alias "
                     f"SharedArrayBuffer views and need the ownership "
                     f"handshake",
                attribute=root,
            )

    def check_mutating_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATING_BUFFER_METHODS:
            return
        buffer = self._buffer_name(func.value)
        if buffer is None:
            return
        root = self._root_param(buffer)
        if root in self.decl.mutates:
            return
        self._report(
            "TB005", call,
            f"in-place `.{func.attr}()` on typed buffer `{root}` which "
            f"the kernel does not declare in mutates=",
            hint=f"add \"{root}\" to the @typed_kernel mutates= "
                 f"declaration, or operate on a copy",
            attribute=root,
        )


class _ModuleScanner(ast.NodeVisitor):
    """Find every ``@typed_kernel`` function and check it."""

    def __init__(
        self,
        path: str,
        typed_kernel_names: Set[str],
        findings: List[Finding],
        inventory: List[KernelDecl],
    ) -> None:
        self.path = path
        self.typed_kernel_names = typed_kernel_names
        self.findings = findings
        self.inventory = inventory
        self.scope_stack: List[str] = []
        self.python_level_names: Set[str] = set()

    def visit_Module(self, node: ast.Module) -> None:
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.python_level_names.add(statement.name)
            elif isinstance(statement, ast.ImportFrom):
                module = statement.module or ""
                if statement.level > 0 or module.split(".")[0] == "repro":
                    for alias in statement.names:
                        self.python_level_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope_stack.append(node.name)
        self.generic_visit(node)
        self.scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        symbol = ".".join(self.scope_stack + [node.name])
        decl = _typed_kernel_decl(node, symbol, self.path)
        if decl is not None:
            self.inventory.append(decl)
            checker = _KernelChecker(
                self.path, node, decl, self.typed_kernel_names,
                self.python_level_names, self.findings,
            )
            checker.check()
            for sub in _iter_stop_at_functions(node):
                if isinstance(sub, ast.Call):
                    checker.check_mutating_call(sub)
        self.scope_stack.append(node.name)
        self.generic_visit(node)
        self.scope_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef


def _collect_typed_kernel_names(trees: Sequence[ast.Module]) -> Set[str]:
    names: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    if isinstance(decorator, ast.Call) and _decorator_name(
                        decorator
                    ) == "typed_kernel":
                        names.add(node.name)
    return names


def analyze_paths(paths: Sequence[str]) -> Tuple[List[Finding], List[KernelDecl]]:
    """Run every TB rule over ``paths``.

    Returns ``(findings, inventory)`` where the inventory lists every
    ``@typed_kernel`` declaration seen (the kernel surface the contract
    covers), including clean ones.
    """
    findings: List[Finding] = []
    parsed: List[Tuple[str, ast.Module, List[str]]] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text()
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="TB000",
                    path=str(file_path),
                    line=error.lineno or 0,
                    symbol="<module>",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        parsed.append((str(file_path), tree, source.splitlines()))

    typed_kernel_names = _collect_typed_kernel_names([t for _, t, _ in parsed])
    inventory: List[KernelDecl] = []
    for path, tree, lines in parsed:
        scanner = _ModuleScanner(path, typed_kernel_names, findings, inventory)
        scanner.visit(tree)
        _shared_inline_suppressions(findings, path, lines, "reprotype")
    findings.sort(key=Finding.key)
    inventory.sort(key=lambda decl: (decl.path, decl.line))
    return findings, inventory


def _inventory_payload(inventory: List[KernelDecl]) -> Dict[str, object]:
    return {
        "kernel_inventory": [
            {
                "kernel": decl.symbol,
                "path": decl.path,
                "line": decl.line,
                "buffers": dict(sorted(decl.buffers.items())),
                "mutates": sorted(decl.mutates),
            }
            for decl in inventory
        ],
    }


def render_json(
    findings: List[Finding],
    inventory: List[KernelDecl],
    unused_baseline: List[str],
) -> str:
    return _render_json(findings, unused_baseline, _inventory_payload(inventory))


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_cli(
        tool="reprotype",
        description="typed-kernel dataflow analysis for the repro kernels",
        default_paths=list(DEFAULT_TARGETS),
        default_baseline="reprotype.toml",
        analyze=analyze_paths,
        extra_payload=_inventory_payload,
        summary=lambda active, suppressed, inventory: (
            f"reprotype: {active} finding(s) ({suppressed} suppressed, "
            f"{len(inventory)} typed kernel(s) under contract)"
        ),
        path_help="files or directories to analyze (default: the kernel modules)",
        argv=argv,
    )


if __name__ == "__main__":
    sys.exit(main())
