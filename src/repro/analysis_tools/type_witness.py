"""Runtime type-conformance witness for ``@typed_kernel`` boundaries.

:mod:`repro.analysis_tools.reprotype` checks the typed-buffer contract
lexically (rules TB001–TB005); this witness checks it *dynamically* at
every kernel call boundary.  When armed, each call to a
:func:`repro.analysis_tools.guards.typed_kernel`-decorated function
asserts, for every declared buffer argument:

* it is a 1-D, C-contiguous :class:`numpy.ndarray` (the layout every
  vectorized kernel and every ``SharedArrayBuffer`` view assumes);
* its dtype conforms to the declared spec (``"numeric"`` accepts any
  integer/float dtype — the column dtype is workload-chosen — while an
  exact name like ``"int64"`` must match exactly) and is never ``object``
  (a boxed-element array silently de-vectorizes every operation on it);
* buffers the kernel declares it ``mutates`` are writeable (a read-only
  shared-memory view reached a mutating kernel without ownership);

and, after the call, that no ``object``-dtype array escapes through the
return value (tuples/lists are walked one level deep).

Off by default with zero overhead beyond one global read per kernel call;
enabled by ``REPRO_TYPE_WITNESS=1`` (raise) / ``=log`` (warn only) or
programmatically via :func:`enable_type_witness`.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import List, Mapping, Optional, Tuple

import numpy as np

logger = logging.getLogger(__name__)

__all__ = [
    "TypeConformanceViolation",
    "TypeConformanceWitness",
    "type_witness",
    "enable_type_witness",
    "disable_type_witness",
    "parse_buffer_spec",
]


class TypeConformanceViolation(TypeError):
    """A typed-kernel call broke the declared buffer contract."""


#: dtype kind classes accepted for the spec bases that are not exact dtypes
_KIND_CLASSES = {
    "numeric": "if",  # any integer or float column dtype
    "integer": "iu",
    "float": "f",
}


def parse_buffer_spec(spec: str) -> Tuple[str, bool, bool]:
    """``"int64?*"`` -> ``("int64", optional=True, container=True)``.

    The base is either a dtype-kind class (``numeric``/``integer``/
    ``float``) or an exact numpy dtype name.  ``?`` allows None, ``*``
    declares a container (list/tuple) of buffers rather than one buffer.
    """
    base = spec
    optional = container = False
    while base and base[-1] in "?*":
        if base[-1] == "?":
            optional = True
        else:
            container = True
        base = base[:-1]
    if base not in _KIND_CLASSES:
        np.dtype(base)  # raises TypeError on an unknown dtype name
    return base, optional, container


def _dtype_conforms(dtype: np.dtype, base: str) -> bool:
    kinds = _KIND_CLASSES.get(base)
    if kinds is not None:
        return dtype.kind in kinds
    return dtype == np.dtype(base)


class TypeConformanceWitness:
    """Asserts the typed-buffer contract at every kernel call boundary."""

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "log"):
            raise ValueError(f"witness mode must be 'raise' or 'log', got {mode!r}")
        self.mode = mode
        self._lock = threading.Lock()
        self._violations: List[str] = []
        self.calls_checked = 0

    # -- the two hook points ----------------------------------------------------

    def check_call(
        self,
        kernel: str,
        buffers: Mapping[str, str],
        mutates: Tuple[str, ...],
        bound: Mapping[str, object],
    ) -> None:
        """Check every declared buffer argument of one kernel call."""
        with self._lock:
            self.calls_checked += 1
        for name, spec in buffers.items():
            if name not in bound:
                continue
            base, optional, container = parse_buffer_spec(spec)
            value = bound[name]
            if value is None:
                if not optional:
                    self._report(
                        f"type-conformance violation: {kernel}({name}=None) "
                        f"but spec {spec!r} does not allow None"
                    )
                continue
            if container:
                if isinstance(value, np.ndarray):
                    # the one-buffer shorthand every payload API accepts
                    elements = [value]
                elif isinstance(value, (list, tuple)):
                    elements = list(value)
                else:
                    self._report(
                        f"type-conformance violation: {kernel} buffer "
                        f"container {name!r} is {type(value).__name__}, "
                        f"expected a list/tuple of arrays (or one array)"
                    )
                    continue
            else:
                elements = [value]
            writeable_needed = name in mutates
            for element in elements:
                self._check_buffer(kernel, name, base, element, writeable_needed)

    def check_result(self, kernel: str, result: object) -> None:
        """No object-dtype array may escape a typed kernel's return value."""
        values = (
            list(result) if isinstance(result, (tuple, list)) else [result]
        )
        for value in values:
            if isinstance(value, np.ndarray) and value.dtype.kind == "O":
                self._report(
                    f"type-conformance violation: {kernel} returned an "
                    f"object-dtype array — boxed elements escaped the "
                    f"typed-buffer boundary"
                )

    # -- internals ---------------------------------------------------------------

    def _check_buffer(
        self, kernel: str, name: str, base: str, value: object,
        writeable_needed: bool,
    ) -> None:
        if not isinstance(value, np.ndarray):
            self._report(
                f"type-conformance violation: {kernel} buffer {name!r} is "
                f"{type(value).__name__}, expected numpy.ndarray"
            )
            return
        if value.dtype.kind == "O":
            self._report(
                f"type-conformance violation: {kernel} buffer {name!r} has "
                f"object dtype — elements are boxed Python objects"
            )
            return
        if not _dtype_conforms(value.dtype, base):
            self._report(
                f"type-conformance violation: {kernel} buffer {name!r} has "
                f"dtype {value.dtype} but the kernel declares {base!r}"
            )
        if value.ndim != 1:
            self._report(
                f"type-conformance violation: {kernel} buffer {name!r} is "
                f"{value.ndim}-dimensional, kernels take flat buffers"
            )
        elif not value.flags.c_contiguous:
            self._report(
                f"type-conformance violation: {kernel} buffer {name!r} is "
                f"not C-contiguous — a strided view reached a kernel that "
                f"assumes dense layout"
            )
        if writeable_needed and not value.flags.writeable:
            self._report(
                f"type-conformance violation: {kernel} mutates buffer "
                f"{name!r} but the array is read-only — a shared view "
                f"reached a mutating kernel without ownership"
            )

    def violations(self) -> List[str]:
        """Messages recorded so far (useful in ``log`` mode)."""
        with self._lock:
            return list(self._violations)

    def _report(self, message: str) -> None:
        with self._lock:
            self._violations.append(message)
        if self.mode == "raise":
            raise TypeConformanceViolation(message)
        logger.warning(message)


_WITNESS: Optional[TypeConformanceWitness] = None


def type_witness() -> Optional[TypeConformanceWitness]:
    """The active witness, or None when witnessing is disabled."""
    return _WITNESS


def enable_type_witness(mode: str = "raise") -> TypeConformanceWitness:
    """Install (and return) a fresh witness; replaces any previous one."""
    global _WITNESS
    _WITNESS = TypeConformanceWitness(mode)
    return _WITNESS


def disable_type_witness() -> None:
    """Remove the active witness (kernel calls revert to a no-op check)."""
    global _WITNESS
    _WITNESS = None


_env_witness = os.environ.get("REPRO_TYPE_WITNESS", "").strip().lower()
if _env_witness in {"1", "true", "raise", "strict"}:
    enable_type_witness("raise")
elif _env_witness in {"log", "warn"}:
    enable_type_witness("log")
del _env_witness
