"""Command-line interface.

Three subcommands cover the common interactive uses of the library without
writing any Python:

``python -m repro strategies``
    list the registered indexing strategies;
``python -m repro compare``
    run the adaptive-indexing benchmark over a synthetic column and workload
    for a set of strategies and print (or export) the summary;
``python -m repro demo``
    a tiny guided run of database cracking showing per-query cost collapse;
``python -m repro updates``
    drive a mixed query/insert/delete workload through the lock-aware
    session front door (``Database.session()`` — queries via the fluent
    builder, DML fenced on the table gate) for any indexing strategy and
    report update throughput and per-query cost;
``python -m repro batch``
    execute a batch of same-table range queries through
    ``Session.execute_many`` sequentially and (with ``--parallel``) under
    per-access-path concurrency control, verify the answers are identical,
    and report wall-clock plus the observed worker fan-out;
``python -m repro snapshot``
    recover a durable data directory and write a fresh column-store
    snapshot (truncating the journal it covers);
``python -m repro recover``
    crash-recover a durable data directory and report what recovery did:
    the snapshot used, replayed operation counts, journal records scanned,
    whether a torn tail was tolerated, and the wall-clock time.

Durability: ``updates`` and ``batch`` accept ``--data-dir`` (journal every
DML to a write-ahead log under that directory) and ``--sync`` (the fsync
policy: ``always``, ``batch`` group commit, or ``off``).  A directory
written by one run is reopened with ``repro recover``.

Adaptive repartitioning: the partitioned strategies accept
``--repartition`` (plus ``--max-partition-rows`` / ``--split-threshold``)
so a skewed insert or query stream cannot bloat one partition; the
``updates`` subcommand reports per-strategy split/merge counts and the
resulting partition row skew.  For example::

    python -m repro updates --strategy partitioned-updatable-cracking \
        --partitions 4 --repartition --updates-per-query 4
    python -m repro compare --strategies cracking,partitioned-cracking \
        --partitions 8 --parallel --repartition
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.partitioned import EXECUTORS
from repro.core.strategies import available_strategies
from repro.version import __version__
from repro.workloads.benchmark import AdaptiveIndexingBenchmark
from repro.workloads.generators import (
    WorkloadSpec,
    generate_column_data,
    make_workload,
)
from repro.workloads.reporting import (
    per_query_series_csv,
    render_markdown_table,
    render_text_table,
)


_EXAMPLES = """examples:
  repro compare --strategies cracking,partitioned-cracking --partitions 8 --parallel
  repro compare --strategies partitioned-cracking --parallel --executor process
  repro compare --strategies partitioned-cracking --repartition --pattern skewed
  repro updates --strategy partitioned-updatable-cracking --repartition \\
      --max-partition-rows 50000 --updates-per-query 4
  repro batch --mode scan --queries 16 --parallel --max-workers 4
  repro batch --mode cracking --parallel   # mutating path: serialized per path
  repro updates --strategy cracking --data-dir ./state --sync batch
  repro recover --data-dir ./state         # replay the journal, report counts
  repro snapshot --data-dir ./state        # compact the journal into a snapshot

Adaptive repartitioning (--repartition) lets the partitioned strategies
split hot partitions at crack boundaries (and merge cold siblings) so a
skewed insert or query stream cannot bloat one partition; answers stay
bit-identical to the unpartitioned strategies.
"""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive indexing in modern database kernels (EDBT 2012 reproduction)",
        epilog=_EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("strategies", help="list registered indexing strategies")

    compare = subparsers.add_parser(
        "compare", help="run the adaptive-indexing benchmark over a synthetic workload"
    )
    compare.add_argument("--rows", type=int, default=100_000, help="column size")
    compare.add_argument("--queries", type=int, default=500, help="number of range queries")
    compare.add_argument("--selectivity", type=float, default=0.01, help="query selectivity")
    compare.add_argument(
        "--pattern",
        default="random",
        choices=["random", "skewed", "sequential", "periodic", "piecewise"],
        help="workload access pattern",
    )
    compare.add_argument(
        "--strategies",
        default="scan,sort-first,cracking,adaptive-merging,hybrid-crack-sort",
        help="comma-separated strategy names (see `repro strategies`)",
    )
    compare.add_argument("--seed", type=int, default=0, help="random seed")
    compare.add_argument(
        "--partitions", type=int, default=4,
        help="shard count for the partitioned strategies",
    )
    compare.add_argument(
        "--parallel", action="store_true",
        help="fan partitioned sub-selections out over a worker pool",
    )
    compare.add_argument(
        "--executor", default="thread", choices=list(EXECUTORS),
        help="fan-out backend for the partitioned strategies: 'thread' "
             "(shared address space) or 'process' (shared-memory segments, "
             "escapes the GIL)",
    )
    compare.add_argument(
        "--policy", default="ripple", choices=["ripple", "gradual"],
        help="pending-update merge policy for the updatable strategies",
    )
    compare.add_argument(
        "--merge-batch", type=int, default=16,
        help="gradual-policy merge budget for the updatable strategies",
    )
    _add_repartition_arguments(compare)
    compare.add_argument(
        "--format", default="text", choices=["text", "markdown", "csv"],
        help="output format for the summary table",
    )
    compare.add_argument(
        "--series-csv", default=None, metavar="PATH",
        help="also write the per-query cost series as CSV to PATH",
    )

    demo = subparsers.add_parser("demo", help="tiny guided database-cracking demo")
    demo.add_argument("--rows", type=int, default=200_000)
    demo.add_argument("--queries", type=int, default=200)

    updates = subparsers.add_parser(
        "updates",
        help="run a mixed query/insert/delete workload through the Database DML",
    )
    updates.add_argument("--rows", type=int, default=100_000, help="initial table size")
    updates.add_argument("--queries", type=int, default=200, help="number of range queries")
    updates.add_argument(
        "--updates-per-query", type=float, default=1.0,
        help="expected inserts+deletes between consecutive queries",
    )
    updates.add_argument("--selectivity", type=float, default=0.01, help="query selectivity")
    updates.add_argument(
        "--strategy", default="updatable-cracking",
        help="indexing mode for the key column (any registered strategy, or scan)",
    )
    updates.add_argument(
        "--policy", default="ripple", choices=["ripple", "gradual"],
        help="pending-update merge policy for the updatable strategies",
    )
    updates.add_argument(
        "--merge-batch", type=int, default=16,
        help="gradual-policy merge budget for the updatable strategies",
    )
    updates.add_argument(
        "--partitions", type=int, default=4,
        help="shard count for the partitioned strategies",
    )
    updates.add_argument(
        "--parallel", action="store_true",
        help="fan partitioned sub-selections out over a worker pool",
    )
    updates.add_argument(
        "--executor", default="thread", choices=list(EXECUTORS),
        help="fan-out backend for the partitioned strategies: 'thread' "
             "(shared address space) or 'process' (shared-memory segments, "
             "escapes the GIL)",
    )
    _add_repartition_arguments(updates)
    _add_durability_arguments(updates)
    updates.add_argument("--seed", type=int, default=0, help="random seed")

    batch = subparsers.add_parser(
        "batch",
        help="run a query batch through execute_many (sequential vs parallel)",
    )
    batch.add_argument("--rows", type=int, default=200_000, help="table size")
    batch.add_argument(
        "--queries", type=int, default=16, help="number of range queries in the batch"
    )
    batch.add_argument(
        "--selectivity", type=float, default=0.05, help="per-query selectivity"
    )
    batch.add_argument(
        "--mode", default="scan",
        help="indexing mode for the key column (managed mode or any strategy)",
    )
    batch.add_argument(
        "--parallel", action="store_true",
        help="also run the batch with parallel=True and compare against the "
             "sequential run",
    )
    batch.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="thread-pool size for the parallel run (default: one worker "
             "per independent task, capped at the CPU count)",
    )
    _add_durability_arguments(batch)
    batch.add_argument("--seed", type=int, default=0, help="random seed")

    snapshot = subparsers.add_parser(
        "snapshot",
        help="recover a durable data directory and write a fresh snapshot",
    )
    snapshot.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="data directory holding the write-ahead journal and snapshots",
    )
    snapshot.add_argument(
        "--sync", default="batch", choices=["always", "batch", "off"],
        help="fsync policy for journal writes after the snapshot "
             "(default: batch group commit)",
    )

    recover = subparsers.add_parser(
        "recover",
        help="crash-recover a durable data directory and report what replayed",
    )
    recover.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="data directory holding the write-ahead journal and snapshots",
    )
    recover.add_argument(
        "--sync", default="batch", choices=["always", "batch", "off"],
        help="fsync policy for journal writes after recovery "
             "(default: batch group commit)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run reprolint, the concurrency-invariant static analyzer",
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src/repro; with "
             "--perf the perf analyzer keeps its own kernel-module default "
             "unless paths are given explicitly)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="TOML",
        help="suppression baseline (default: ./reprolint.toml when present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    lint.add_argument(
        "--style", action="store_true",
        help="also run the pystyle checker (unused imports, undefined names)",
    )
    lint.add_argument(
        "--perf", action="store_true",
        help="also run reproperf, the hot-path & cost-model analyzer "
             "(baseline: ./reproperf.toml when present)",
    )
    lint.add_argument(
        "--types", action="store_true",
        help="also run reprotype, the typed-kernel dataflow analyzer "
             "(baseline: ./reprotype.toml when present)",
    )
    lint.add_argument(
        "--strict-baseline", action="store_true",
        help="fail when a baseline contains entries no finding matches "
             "(stale suppressions)",
    )
    return parser


def _add_repartition_arguments(subparser: argparse.ArgumentParser) -> None:
    """Adaptive-repartitioning knobs shared by the partitioned strategies."""
    subparser.add_argument(
        "--repartition", action="store_true",
        help="adaptively split hot partitions (and merge cold siblings) "
             "in the partitioned strategies",
    )
    subparser.add_argument(
        "--max-partition-rows", type=int, default=None, metavar="ROWS",
        help="hard per-partition row cap enforced by adaptive repartitioning",
    )
    subparser.add_argument(
        "--split-threshold", type=float, default=2.0, metavar="FACTOR",
        help="split a partition once it exceeds FACTOR times the mean "
             "partition load (> 1.0, default 2.0)",
    )


def _add_durability_arguments(subparser: argparse.ArgumentParser) -> None:
    """Write-ahead-journal knobs shared by the DML-driving subcommands."""
    subparser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="journal every DML to a write-ahead log under DIR (the "
             "directory must not already hold durable state; reopen it "
             "with `repro recover`)",
    )
    subparser.add_argument(
        "--sync", default="batch", choices=["always", "batch", "off"],
        help="journal fsync policy: 'always' fsyncs every commit, 'batch' "
             "group-commits (default), 'off' leaves flushing to the OS",
    )


def _repartition_options(args: argparse.Namespace) -> dict:
    """Strategy options derived from the repartitioning flags."""
    options = {
        "repartition": args.repartition,
        "split_threshold": args.split_threshold,
    }
    if args.max_partition_rows is not None:
        options["max_partition_rows"] = args.max_partition_rows
    return options


def _partition_flags_error(args: argparse.Namespace) -> Optional[str]:
    """Validation message for the shared partition/update flags, or None."""
    if args.partitions < 1:
        return "--partitions must be >= 1"
    if args.merge_batch < 1:
        return "--merge-batch must be >= 1"
    if args.split_threshold <= 1.0:
        return "--split-threshold must be > 1.0"
    if args.max_partition_rows is not None and args.max_partition_rows < 1:
        return "--max-partition-rows must be >= 1"
    return None


def _command_strategies() -> int:
    for name in available_strategies():
        print(name)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    strategies = [name.strip() for name in args.strategies.split(",") if name.strip()]
    unknown = [name for name in strategies if name not in available_strategies()]
    if unknown:
        print(
            f"unknown strategies: {', '.join(unknown)}; "
            f"available: {', '.join(available_strategies())}",
            file=sys.stderr,
        )
        return 2
    error = _partition_flags_error(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    values = generate_column_data(args.rows, 0, 1_000_000, seed=args.seed)
    spec = WorkloadSpec(
        domain_low=0,
        domain_high=1_000_000,
        query_count=args.queries,
        selectivity=args.selectivity,
        seed=args.seed + 1,
    )
    queries = make_workload(args.pattern, spec)
    harness = AdaptiveIndexingBenchmark(values, queries)
    repartition_options = _repartition_options(args)
    options = {
        "partitioned-cracking": {
            "partitions": args.partitions,
            "parallel": args.parallel,
            "executor": args.executor,
            **repartition_options,
        },
        "updatable-cracking": {
            "policy": args.policy,
            "merge_batch": args.merge_batch,
        },
        "partitioned-updatable-cracking": {
            "partitions": args.partitions,
            "parallel": args.parallel,
            "executor": args.executor,
            "policy": args.policy,
            "merge_batch": args.merge_batch,
            **repartition_options,
        },
    }
    result = harness.run(strategies, options=options)

    if args.format == "markdown":
        print(render_markdown_table(result))
    elif args.format == "csv":
        from repro.workloads.reporting import summary_csv

        print(summary_csv(result), end="")
    else:
        print(
            f"column: {args.rows:,} rows | workload: {args.queries} {args.pattern} "
            f"queries at {args.selectivity:.2%} selectivity"
        )
        print(
            f"scan cost/query = {result.scan_cost:,.0f}, "
            f"full-index cost/query = {result.full_index_cost:,.0f}\n"
        )
        print(render_text_table(result))
        structures = {
            label: run.final_structure
            for label, run in result.runs.items()
            if run.final_structure and "partition" in run.final_structure
        }
        if structures:
            print()
            for label, structure in structures.items():
                print(f"physical state [{label}]: {structure}")
    if args.series_csv:
        with open(args.series_csv, "w") as handle:
            handle.write(per_query_series_csv(result))
        print(f"\nper-query series written to {args.series_csv}")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from repro.core.adaptive_index import AdaptiveIndex

    rng = np.random.default_rng(0)
    values = generate_column_data(args.rows, 0, 1_000_000, seed=0)
    index = AdaptiveIndex(values, strategy="cracking")
    width = 1_000
    for _ in range(args.queries):
        low = float(rng.uniform(0, 1_000_000 - width))
        index.search(low, low + width)
    costs = index.per_query_cost()
    checkpoints = [0, 1, 4, 9, 49, 99, len(costs) - 1]
    print(f"database cracking over {args.rows:,} rows, {args.queries} queries:")
    for point in checkpoints:
        if point < len(costs):
            print(f"  query {point + 1:>4d}: logical cost {costs[point]:>12.0f}")
    print(f"  structure: {index.structure_description()}")
    return 0


def _command_updates(args: argparse.Namespace) -> int:
    import time

    from repro.cost.model import DEFAULT_MAIN_MEMORY_MODEL
    from repro.engine.database import Database
    from repro.workloads.updates import mixed_update_workload

    if args.strategy != "scan" and args.strategy not in available_strategies():
        print(
            f"unknown strategy {args.strategy!r}; "
            f"available: {', '.join(available_strategies())}",
            file=sys.stderr,
        )
        return 2
    if args.rows < 1 or args.queries < 1:
        print("--rows and --queries must be >= 1", file=sys.stderr)
        return 2
    if args.updates_per_query < 0:
        print("--updates-per-query must be non-negative", file=sys.stderr)
        return 2
    error = _partition_flags_error(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    values = generate_column_data(args.rows, 0, 1_000_000, seed=args.seed)
    try:
        database = _make_database("updates-demo", args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    database.create_table("data", {"key": values})
    if args.strategy != "scan":
        options = {}
        if args.strategy in ("updatable-cracking", "partitioned-updatable-cracking"):
            options.update(policy=args.policy, merge_batch=args.merge_batch)
        if args.strategy in ("partitioned-cracking", "partitioned-updatable-cracking"):
            options.update(
                partitions=args.partitions,
                parallel=args.parallel,
                executor=args.executor,
            )
            options.update(_repartition_options(args))
        database.set_indexing("data", "key", args.strategy, **options)

    spec = WorkloadSpec(
        domain_low=0.0,
        domain_high=1_000_000.0,
        query_count=args.queries,
        selectivity=args.selectivity,
        seed=args.seed + 1,
    )
    stream = mixed_update_workload(spec, updates_per_query=args.updates_per_query)
    rng = np.random.default_rng(args.seed + 2)
    live_rowids = list(range(args.rows))
    query_costs: List[float] = []
    update_seconds = 0.0
    query_seconds = 0.0
    update_count = 0
    with database.session(name="updates-cli") as session:
        for operation in stream:
            if operation.kind == "insert":
                started = time.perf_counter()
                live_rowids.append(
                    session.insert_row("data", {"key": operation.value})
                )
                update_seconds += time.perf_counter() - started
                update_count += 1
            elif operation.kind == "delete":
                if live_rowids:
                    victim = live_rowids.pop(int(rng.integers(0, len(live_rowids))))
                    started = time.perf_counter()
                    session.delete_row("data", victim)
                    update_seconds += time.perf_counter() - started
                    update_count += 1
            else:
                query = operation.query
                started = time.perf_counter()
                result = (
                    session.query("data")
                    .where("key", query.low, query.high)
                    .run()
                )
                query_seconds += time.perf_counter() - started
                query_costs.append(DEFAULT_MAIN_MEMORY_MODEL.cost(result.counters))

    mean_cost = float(np.mean(query_costs)) if query_costs else 0.0
    tail = query_costs[-max(1, len(query_costs) // 10):]
    print(
        f"table: {args.rows:,} rows | strategy: {args.strategy} | "
        f"{len(query_costs)} queries, {update_count} updates "
        f"({args.updates_per_query:.2f} updates/query)"
    )
    if update_count:
        print(
            f"update throughput : {update_count / max(update_seconds, 1e-9):>12,.0f} updates/s "
            f"({update_seconds * 1e3:.1f} ms total)"
        )
    print(
        f"query cost        : mean {mean_cost:>12,.0f}, "
        f"tail mean {float(np.mean(tail)):>12,.0f} "
        f"(scan would be {3 * database.visible_row_count('data'):>12,.0f})"
    )
    print(f"query wall-clock  : {query_seconds * 1e3:.1f} ms total")
    for record in database.physical_design_report():
        print(f"physical design   : {record['mode']} — {record['structure']}")
    for record in database.rebalance_stats():
        print(
            f"repartitioning    : {record['partitions']} partitions, "
            f"{record['splits']} splits, {record['merges']} merges, "
            f"max/mean rows = {record['skew']:.2f} "
            f"(repartition {'on' if record['repartition'] else 'off'})"
        )
    _report_durability(database, args)
    database.close()
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    import time

    from repro.engine.database import Database
    from repro.engine.query import Query
    from repro.engine.session import validate_max_workers

    managed_modes = ("scan", "full-index", "online", "soft")
    if args.mode not in managed_modes and args.mode not in available_strategies():
        print(
            f"unknown mode {args.mode!r}; managed modes: "
            f"{', '.join(managed_modes)}; strategies: "
            f"{', '.join(available_strategies())}",
            file=sys.stderr,
        )
        return 2
    if args.rows < 1 or args.queries < 1:
        print("--rows and --queries must be >= 1", file=sys.stderr)
        return 2
    try:
        # the same validation the session applies, surfaced as a CLI error
        validate_max_workers(args.max_workers)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    domain = 1_000_000
    values = generate_column_data(args.rows, 0, domain, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    width = max(1.0, domain * args.selectivity)
    queries = []
    for _ in range(args.queries):
        low = float(rng.uniform(0, domain - width))
        queries.append(Query.range_query("data", "key", low, low + width))

    def run(parallel: bool):
        # each run gets its own journal directory: a data directory may
        # only ever be seeded once (reopening requires Database.open)
        label = "parallel" if parallel else "sequential"
        database = _make_database("batch-demo", args, subdirectory=label)
        database.create_table("data", {"key": values})
        if args.mode != "scan":
            database.set_indexing("data", "key", args.mode)
        with database.session(name="batch-cli") as session:
            started = time.perf_counter()
            results = session.execute_many(
                queries, parallel=parallel, max_workers=args.max_workers
            )
            elapsed = time.perf_counter() - started
            report = session.stats().last_batch_report
        _report_durability(database, args)
        database.close()
        return results, elapsed, report

    try:
        sequential_results, sequential_seconds, report = run(parallel=False)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    print(
        f"table: {args.rows:,} rows | mode: {args.mode} | "
        f"{args.queries} queries at {args.selectivity:.2%} selectivity"
    )
    print(
        f"schedule          : {report.task_count} tasks "
        f"({report.read_only_queries} read-only queries, "
        f"{report.exclusive_groups} serialized groups)"
    )
    print(f"sequential        : {sequential_seconds * 1e3:8.1f} ms")
    if not args.parallel:
        return 0

    try:
        parallel_results, parallel_seconds, report = run(parallel=True)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    identical = all(
        np.array_equal(sequential.positions, concurrent.positions)
        and sequential.counters == concurrent.counters
        for sequential, concurrent in zip(sequential_results, parallel_results)
    )
    speedup = sequential_seconds / max(parallel_seconds, 1e-9)
    print(
        f"parallel          : {parallel_seconds * 1e3:8.1f} ms "
        f"({speedup:.2f}x, {report.workers_used} workers observed)"
    )
    print(f"results identical : {'yes' if identical else 'NO — BUG'}")
    return 0 if identical else 1


def _make_database(name: str, args: argparse.Namespace, subdirectory: str = ""):
    """A Database honouring the shared ``--data-dir`` / ``--sync`` flags.

    Raises ``ValueError`` when the directory already holds durable state
    (the caller surfaces it as a CLI error pointing at ``repro recover``).
    """
    from pathlib import Path

    from repro.durability.manager import DurabilityConfig
    from repro.engine.database import Database

    if args.data_dir is None:
        return Database(name)
    data_dir = Path(args.data_dir)
    if subdirectory:
        data_dir = data_dir / subdirectory
    return Database(
        name,
        data_dir=data_dir,
        durability=DurabilityConfig(sync=args.sync),
    )


def _report_durability(database, args: argparse.Namespace) -> None:
    """One summary line for the journal a durable run just wrote."""
    manager = database.durability
    if manager is None:
        return
    stats = manager.stats()
    print(
        f"durability        : {stats['appended_records']} journal records, "
        f"{stats['fsync_calls']} fsyncs (sync={args.sync}), "
        f"{stats['rotations']} segment rotations, "
        f"{stats['snapshots_written']} snapshots "
        f"-> {args.data_dir}"
    )


def _print_recovery_report(report) -> None:
    replayed = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(report.replayed_operations.items())
    ) or "nothing"
    snapshot = (
        f"{report.snapshot_path} (high water {report.snapshot_high_water})"
        if report.snapshot_path is not None
        else "none (journal only)"
    )
    print(f"recovered         : {report.data_dir}")
    print(f"recovery time     : {report.elapsed_seconds * 1e3:.1f} ms")
    print(f"snapshot used     : {snapshot}")
    if report.skipped_snapshots:
        for reason in report.skipped_snapshots:
            print(f"snapshot skipped  : {reason}")
    print(
        f"journal scanned   : {report.wal_records} records"
        f"{' (torn tail truncated)' if report.torn_tail else ''}"
    )
    print(f"replayed          : {report.replayed_total} operations ({replayed})")
    print(f"next sequence     : {report.next_sequence}")


def _open_durable(args: argparse.Namespace):
    """``Database.open`` for the snapshot/recover subcommands, or None."""
    from pathlib import Path

    from repro.durability.manager import DurabilityConfig, has_durable_state
    from repro.engine.database import Database
    from repro.durability.recovery import RecoveryError

    data_dir = Path(args.data_dir)
    if not has_durable_state(data_dir):
        print(
            f"no durable state under {data_dir} (expected wal/*.seg or "
            f"snapshots/*.snap; seed one with `repro updates --data-dir`)",
            file=sys.stderr,
        )
        return None
    try:
        return Database.open(
            data_dir, durability=DurabilityConfig(sync=args.sync)
        )
    except RecoveryError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return None


def _command_recover(args: argparse.Namespace) -> int:
    database = _open_durable(args)
    if database is None:
        return 1
    _print_recovery_report(database.recovery_report)
    for table in sorted(database.table_names):
        print(
            f"table             : {table} "
            f"({database.visible_row_count(table):,} visible rows)"
        )
    database.close()
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    database = _open_durable(args)
    if database is None:
        return 1
    _print_recovery_report(database.recovery_report)
    path = database.snapshot()
    print(f"snapshot written  : {path}")
    database.close()
    return 0


def _command_lint(args) -> int:
    """Delegate to reprolint (and optionally reproperf/reprotype/pystyle)."""
    from repro.analysis_tools import pystyle, reprolint

    paths = list(args.paths) if args.paths else ["src/repro"]
    lint_argv = paths + ["--format", args.format]
    if args.no_baseline:
        lint_argv.append("--no-baseline")
    elif args.baseline is not None:
        lint_argv += ["--baseline", args.baseline]
    if args.strict_baseline:
        lint_argv.append("--strict-baseline")
    status = reprolint.main(lint_argv)
    # explicit paths flow through to the companion analyzers; the default
    # scope stays the kernel modules each one was calibrated for (their
    # own DEFAULT_TARGETS)
    companion_argv = (list(args.paths) if args.paths else []) + [
        "--format", args.format,
    ]
    if args.no_baseline:
        companion_argv.append("--no-baseline")
    if args.strict_baseline:
        companion_argv.append("--strict-baseline")
    if args.perf:
        from repro.analysis_tools import reproperf

        status = max(status, reproperf.main(list(companion_argv)))
    if args.types:
        from repro.analysis_tools import reprotype

        status = max(status, reprotype.main(list(companion_argv)))
    if args.style:
        status = max(status, pystyle.main(paths))
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (returns the process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "strategies":
        return _command_strategies()
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "updates":
        return _command_updates(args)
    if args.command == "batch":
        return _command_batch(args)
    if args.command == "snapshot":
        return _command_snapshot(args)
    if args.command == "recover":
        return _command_recover(args)
    if args.command == "lint":
        return _command_lint(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
