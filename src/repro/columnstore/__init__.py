"""MonetDB-style column-store substrate.

Database cracking "exploits and in fact relies on several column-store
properties, such as storage on fixed width dense arrays, bulk processing and
late tuple reconstruction" (EDBT 2012 tutorial, Section 2).  This package
provides exactly that substrate:

* :class:`~repro.columnstore.column.Column` — a fixed-width dense array
  (NumPy-backed) with an optional *head* of row identifiers, mirroring
  MonetDB's Binary Association Tables (BATs);
* :class:`~repro.columnstore.table.Table` — a set of aligned columns;
* :mod:`~repro.columnstore.bulk` — vectorised physical kernels (range
  filters, gathers, in-place two/three-way partitioning) used by scans and
  by the cracking/merging algorithms;
* :mod:`~repro.columnstore.select` — bulk select operators returning
  position lists (late materialisation);
* :mod:`~repro.columnstore.reconstruct` — early and late tuple
  reconstruction;
* :mod:`~repro.columnstore.operators` — joins, aggregation, projection;
* :mod:`~repro.columnstore.storage` — memory accounting and storage budgets
  (used by partial cracking).
"""

from repro.columnstore.column import Column
from repro.columnstore.table import Table
from repro.columnstore.types import DataType, FLOAT64, INT32, INT64, infer_dtype
from repro.columnstore.storage import MemoryTracker, StorageBudget

__all__ = [
    "Column",
    "Table",
    "DataType",
    "INT32",
    "INT64",
    "FLOAT64",
    "infer_dtype",
    "MemoryTracker",
    "StorageBudget",
]
