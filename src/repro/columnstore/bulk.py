"""Vectorised physical kernels (bulk processing primitives).

These are the low-level array kernels used by scans, cracking and adaptive
merging.  All of them operate on NumPy arrays, record their work on a
:class:`~repro.cost.counters.CostCounters` instance when one is provided, and
avoid per-element Python loops: this is the "bulk processing" pillar of the
column-store substrate the tutorial describes.

Physical reorganisation kernels (:func:`partition_two_way`,
:func:`partition_three_way`) rearrange a slice of an array **in place** and
return the resulting boundary positions, which is exactly what crack-in-two
and crack-in-three need.

The reorganisation kernels carry ``@typed_kernel`` declarations: their
buffer parameters are flat numeric ndarrays, checked statically by
:mod:`repro.analysis_tools.reprotype` and dynamically by the type witness
(``REPRO_TYPE_WITNESS=1``).  Both partition kernels are single-pass mask
selections (O(n)), not argsorts — the produced layout is identical to a
stable argsort of the group keys, without the O(n log n) sort.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analysis_tools.guards import charges, typed_kernel
from repro.cost.counters import CostCounters


@charges("scans", "comparisons")
def range_mask(
    values: np.ndarray,
    low: Optional[float],
    high: Optional[float],
    counters: Optional[CostCounters] = None,
    include_low: bool = True,
    include_high: bool = False,
) -> np.ndarray:
    """Boolean mask of ``low <= v < high`` (bounds optional / configurable).

    ``None`` bounds are treated as unbounded.  The default half-open
    interval ``[low, high)`` matches the convention used throughout the
    cracking literature.
    """
    values = np.asarray(values)
    mask = np.ones(len(values), dtype=bool)
    comparisons = 0
    if low is not None:
        mask &= (values >= low) if include_low else (values > low)
        comparisons += len(values)
    if high is not None:
        mask &= (values < high) if not include_high else (values <= high)
        comparisons += len(values)
    if counters is not None:
        counters.record_scan(len(values))
        counters.record_comparisons(comparisons)
    return mask


def filter_range(
    values: np.ndarray,
    low: Optional[float],
    high: Optional[float],
    counters: Optional[CostCounters] = None,
    include_low: bool = True,
    include_high: bool = False,
) -> np.ndarray:
    """Positions (indices into ``values``) whose value falls in the range."""
    mask = range_mask(
        values, low, high, counters, include_low=include_low, include_high=include_high
    )
    return np.flatnonzero(mask)


@charges("random_accesses")
def gather(
    values: np.ndarray,
    positions: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Fetch ``values[positions]`` (random-access gather)."""
    positions = np.asarray(positions)
    if counters is not None:
        counters.record_random_access(len(positions))
    return np.asarray(values)[positions]


@charges("random_accesses", "movements")
def scatter(
    target: np.ndarray,
    positions: np.ndarray,
    source: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> None:
    """Write ``source`` into ``target`` at ``positions`` (random scatter)."""
    positions = np.asarray(positions)
    target[positions] = source
    if counters is not None:
        counters.record_random_access(len(positions))
        counters.record_move(len(positions))


@typed_kernel(buffers={"payload": "numeric*?"})
def _payload_list(payload) -> list:
    """Normalise the ``payload`` argument to a list of aligned arrays."""
    if payload is None:
        return []
    if isinstance(payload, (list, tuple)):
        return [p for p in payload if p is not None]
    return [payload]


@typed_kernel(buffers={"values": "numeric", "payload": "numeric*?"},
              mutates=("values", "payload"))
@charges("scans", "comparisons", "movements")
def partition_two_way(
    values: np.ndarray,
    start: int,
    end: int,
    pivot: float,
    counters: Optional[CostCounters] = None,
    payload=None,
) -> int:
    """Partition ``values[start:end]`` in place around ``pivot``.

    After the call, all elements strictly less than ``pivot`` precede the
    returned split position and all elements greater than or equal to
    ``pivot`` follow it.  ``payload`` may be one aligned array or a sequence
    of aligned arrays (e.g. the row-identifier head of a cracker column and
    the dragged tail attribute of a cracker map); each is permuted
    identically.

    The layout produced — qualifying elements first, original order
    preserved within each side — is exactly a stable partition, computed
    with two mask selections in O(n).

    Returns the absolute index of the first element >= pivot.
    """
    segment = values[start:end]
    if len(segment) == 0:
        return start
    mask = segment < pivot
    left_count = int(mask.sum())
    # one O(n) stable permutation (qualifying positions first, original
    # order kept within each side), applied to values and every payload
    order = np.concatenate([np.flatnonzero(mask), np.flatnonzero(~mask)])
    values[start:end] = segment[order]
    for extra in _payload_list(payload):
        extra[start:end] = extra[start:end][order]
    if counters is not None:
        counters.record_scan(len(segment))
        counters.record_comparisons(len(segment))
        counters.record_move(len(segment))
    return start + left_count


@typed_kernel(buffers={"values": "numeric", "payload": "numeric*?"},
              mutates=("values", "payload"))
@charges("scans", "comparisons", "movements")
def partition_three_way(
    values: np.ndarray,
    start: int,
    end: int,
    low: float,
    high: float,
    counters: Optional[CostCounters] = None,
    payload=None,
) -> Tuple[int, int]:
    """Partition ``values[start:end]`` in place into ``< low | [low, high) | >= high``.

    Returns ``(split_low, split_high)``: absolute indices of the first
    element >= low and the first element >= high respectively.  This is the
    kernel behind crack-in-three.  ``payload`` may be one aligned array or a
    sequence of aligned arrays, permuted identically.  Like the two-way
    kernel, the grouping is a stable partition computed with three mask
    selections in O(n).
    """
    if high < low:
        raise ValueError("high must be >= low for three-way partitioning")
    segment = values[start:end]
    if len(segment) == 0:
        return start, start
    below = segment < low
    above = segment >= high
    middle = ~(below | above)
    # stable grouping (below, middle, above) as one O(n) permutation
    order = np.concatenate(
        [np.flatnonzero(below), np.flatnonzero(middle), np.flatnonzero(above)]
    )
    values[start:end] = segment[order]
    for extra in _payload_list(payload):
        extra[start:end] = extra[start:end][order]
    below_count = int(below.sum())
    middle_count = int(middle.sum())
    if counters is not None:
        counters.record_scan(len(segment))
        counters.record_comparisons(2 * len(segment))
        counters.record_move(len(segment))
    return start + below_count, start + below_count + middle_count


@typed_kernel(buffers={"values": "numeric", "payload": "numeric*?"},
              mutates=("values", "payload"))
@charges("comparisons", "movements")
def stable_sort_segment(
    values: np.ndarray,
    start: int,
    end: int,
    counters: Optional[CostCounters] = None,
    payload=None,
) -> None:
    """Sort ``values[start:end]`` in place (mergesort), permuting ``payload`` alike."""
    segment = values[start:end]
    if len(segment) <= 1:
        return
    order = np.argsort(segment, kind="stable")
    values[start:end] = segment[order]
    for extra in _payload_list(payload):
        extra[start:end] = extra[start:end][order]
    if counters is not None:
        n = len(segment)
        # n log n comparisons, n moves: the standard accounting for a sort.
        counters.record_comparisons(int(n * max(1.0, np.log2(n))))
        counters.record_move(n)


@charges("scans", "comparisons", "movements")
def radix_cluster(
    values: np.ndarray,
    bits: int,
    counters: Optional[CostCounters] = None,
    payload: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cluster ``values`` into ``2**bits`` range buckets (out of place).

    Used by the radix variants of the hybrid algorithms (PVLDB 2011).  The
    clustering is value-range based (most-significant bits of the normalised
    key), so each bucket covers a contiguous key range and buckets are
    ordered by key range.

    Returns ``(clustered_values, clustered_payload, bucket_offsets)`` where
    ``bucket_offsets`` has ``2**bits + 1`` entries delimiting each bucket.
    """
    values = np.asarray(values)
    n = len(values)
    buckets = 1 << bits
    if n == 0:
        empty_payload = payload if payload is not None else np.empty(0, dtype=np.int64)
        return values.copy(), np.asarray(empty_payload).copy(), np.zeros(
            buckets + 1, dtype=np.int64
        )
    lo = values.min()
    hi = values.max()
    if hi == lo:
        bucket_ids = np.zeros(n, dtype=np.int64)
    else:
        # normalise into [0, buckets) by value range
        scaled = (values.astype(np.float64) - lo) / (float(hi) - float(lo))
        bucket_ids = np.minimum((scaled * buckets).astype(np.int64), buckets - 1)
    order = np.argsort(bucket_ids, kind="stable")
    clustered = values[order]
    clustered_payload = (
        np.asarray(payload)[order] if payload is not None else order.astype(np.int64)
    )
    counts = np.bincount(bucket_ids, minlength=buckets)
    offsets = np.zeros(buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if counters is not None:
        counters.record_scan(n)
        counters.record_move(n)
        counters.record_comparisons(n)
    return clustered, clustered_payload, offsets


@typed_kernel(buffers={"left_values": "numeric", "left_positions": "integer",
                       "right_values": "numeric", "right_positions": "integer"})
@charges("scans", "comparisons", "movements")
def merge_sorted_with_positions(
    left_values: np.ndarray,
    left_positions: np.ndarray,
    right_values: np.ndarray,
    right_positions: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two sorted (values, positions) pairs into one sorted pair."""
    merged_values = np.concatenate([left_values, right_values])
    merged_positions = np.concatenate([left_positions, right_positions])
    order = np.argsort(merged_values, kind="stable")
    if counters is not None:
        n = len(merged_values)
        counters.record_scan(n)
        counters.record_move(n)
        counters.record_comparisons(n)
    return merged_values[order], merged_positions[order]


def binary_search_count(n: int) -> int:
    """Number of comparisons a binary search over ``n`` elements performs."""
    if n <= 0:
        return 0
    return int(np.ceil(np.log2(n + 1)))
