"""Fixed-width dense columns (BAT-style storage).

A :class:`Column` stores one attribute as a dense NumPy array — the *tail* in
MonetDB terminology.  Row identifiers (the *head*) are implicit: the value at
array position *i* belongs to row *i*.  Operators therefore exchange
position lists ("candidate lists") rather than materialised tuples, which is
the late-reconstruction execution model database cracking builds on.

Columns support appends (with geometric growth), deletions via tombstone-free
compaction, and expose zero-copy views of their valid region.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.columnstore.types import DataType, infer_dtype
from repro.cost.counters import CostCounters


class Column:
    """A dense, fixed-width, append-only column of numeric values."""

    __slots__ = ("name", "dtype", "_data", "_length")

    def __init__(
        self,
        values: Union[np.ndarray, Iterable],
        name: str = "",
        dtype: Optional[DataType] = None,
    ) -> None:
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError("columns must be one-dimensional")
        self.dtype = dtype or infer_dtype(array)
        self.name = name
        self._data = self.dtype.validate_array(array).copy()
        self._length = len(self._data)

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls, name: str = "", dtype: DataType = None, capacity: int = 0) -> "Column":
        """Create an empty column with optional pre-allocated capacity."""
        from repro.columnstore.types import INT64

        dtype = dtype or INT64
        column = cls(np.empty(0, dtype=dtype.numpy_dtype), name=name, dtype=dtype)
        if capacity:
            column._data = dtype.empty(capacity)
            column._length = 0
        return column

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, item):
        return self.values[item]

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column(name={self.name!r}, dtype={self.dtype.name}, length={len(self)})"

    @property
    def values(self) -> np.ndarray:
        """Zero-copy view of the valid region of the column."""
        return self._data[: self._length]

    @property
    def nbytes(self) -> int:
        """Bytes used by the valid region."""
        return self._length * self.dtype.width_bytes

    @property
    def capacity(self) -> int:
        """Allocated capacity in elements (>= len(self))."""
        return len(self._data)

    # -- mutation ------------------------------------------------------------

    def append(self, values: Union[np.ndarray, Iterable, int, float],
               counters: Optional[CostCounters] = None) -> None:
        """Append one value or an array of values, growing geometrically."""
        array = np.atleast_1d(np.asarray(values))
        array = self.dtype.validate_array(array)
        needed = self._length + len(array)
        if needed > len(self._data):
            new_capacity = max(needed, max(16, 2 * len(self._data)))
            grown = self.dtype.empty(new_capacity)
            grown[: self._length] = self._data[: self._length]
            self._data = grown
        self._data[self._length : needed] = array
        self._length = needed
        if counters is not None:
            counters.record_move(len(array))
            counters.record_allocation(len(array) * self.dtype.width_bytes)

    def delete_positions(self, positions: Union[np.ndarray, Iterable[int]],
                         counters: Optional[CostCounters] = None) -> None:
        """Remove the rows at ``positions``, compacting the column.

        Positions of subsequent rows shift down; callers that maintain
        auxiliary structures must account for this (the cracking update
        machinery does its own bookkeeping instead of using this method).
        """
        positions = np.unique(np.asarray(positions, dtype=np.int64))
        if len(positions) == 0:
            return
        if positions.min() < 0 or positions.max() >= self._length:
            raise IndexError("delete position out of range")
        keep = np.ones(self._length, dtype=bool)
        keep[positions] = False
        kept = self._data[: self._length][keep]
        self._data[: len(kept)] = kept
        self._length = len(kept)
        if counters is not None:
            counters.record_scan(len(keep))
            counters.record_move(len(kept))

    def copy(self, name: Optional[str] = None) -> "Column":
        """Deep copy of this column."""
        return Column(self.values.copy(), name=name or self.name, dtype=self.dtype)

    # -- serialization -------------------------------------------------------

    def tobytes(self) -> bytes:
        """Raw bytes of the valid region, in the dtype's native layout.

        Always materialises a contiguous copy, so it works no matter what
        buffer backs the array — including the shared-memory segments the
        process-executor partitions use.  The inverse is
        :meth:`from_bytes`.
        """
        return np.ascontiguousarray(self.values).tobytes()

    @classmethod
    def from_bytes(
        cls, raw: bytes, name: str, dtype: DataType, rows: int
    ) -> "Column":
        """Rebuild a column from :meth:`tobytes` output."""
        expected = rows * dtype.width_bytes
        if len(raw) < expected:
            raise ValueError(
                f"column {name!r} needs {expected} bytes for {rows} rows "
                f"of {dtype.name}, got {len(raw)}"
            )
        values = np.frombuffer(raw, dtype=dtype.numpy_dtype, count=rows)
        return cls(values, name=name, dtype=dtype)

    # -- statistics ----------------------------------------------------------

    def min(self):
        """Minimum value (raises ValueError on an empty column)."""
        if self._length == 0:
            raise ValueError("empty column has no minimum")
        return self.values.min()

    def max(self):
        """Maximum value (raises ValueError on an empty column)."""
        if self._length == 0:
            raise ValueError("empty column has no maximum")
        return self.values.max()

    def distinct_count(self) -> int:
        """Number of distinct values in the column."""
        if self._length == 0:
            return 0
        return len(np.unique(self.values))

    def is_sorted(self) -> bool:
        """True when the column is in non-decreasing order."""
        values = self.values
        if len(values) <= 1:
            return True
        return bool(np.all(values[:-1] <= values[1:]))
