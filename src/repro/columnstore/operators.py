"""Bulk relational operators: joins, aggregation, projection, group-by.

These operators complete the column-store substrate so the engine can run
multi-operator query plans (selections feeding joins feeding aggregations),
which is the setting in which sideways cracking and adaptive indexing for
"joins, selects and tuple reconstruction" (tutorial, Section 2) are studied.
All operators consume and produce position lists or plain arrays and record
their work on cost counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.columnstore.column import Column
from repro.cost.counters import CostCounters


@dataclass(frozen=True)
class JoinResult:
    """Positions of matching rows on both sides of a join."""

    left_positions: np.ndarray
    right_positions: np.ndarray

    def __len__(self) -> int:
        return len(self.left_positions)


def hash_join(
    left: Column,
    right: Column,
    counters: Optional[CostCounters] = None,
    left_candidates: Optional[np.ndarray] = None,
    right_candidates: Optional[np.ndarray] = None,
) -> JoinResult:
    """Equi-join two columns, returning matching position pairs.

    The smaller input builds the hash table, the larger probes.  Candidate
    position lists restrict either side (late-materialisation joins after a
    selection).
    """
    left_positions = (
        np.arange(len(left), dtype=np.int64)
        if left_candidates is None
        else np.asarray(left_candidates, dtype=np.int64)
    )
    right_positions = (
        np.arange(len(right), dtype=np.int64)
        if right_candidates is None
        else np.asarray(right_candidates, dtype=np.int64)
    )
    left_values = left.values[left_positions]
    right_values = right.values[right_positions]
    if counters is not None:
        counters.record_scan(len(left_values) + len(right_values))

    # Build on the smaller side.
    if len(left_values) <= len(right_values):
        build_values, build_positions = left_values, left_positions
        probe_values, probe_positions = right_values, right_positions
        build_is_left = True
    else:
        build_values, build_positions = right_values, right_positions
        probe_values, probe_positions = left_values, left_positions
        build_is_left = False

    table: Dict[float, list] = {}
    for value, position in zip(build_values.tolist(), build_positions.tolist()):
        table.setdefault(value, []).append(position)
    if counters is not None:
        counters.record_random_access(len(build_values))

    out_build = []
    out_probe = []
    for value, position in zip(probe_values.tolist(), probe_positions.tolist()):
        matches = table.get(value)
        if matches:
            out_build.extend(matches)
            out_probe.extend([position] * len(matches))
    if counters is not None:
        counters.record_random_access(len(probe_values))
        counters.record_comparisons(len(probe_values))

    build_array = np.asarray(out_build, dtype=np.int64)
    probe_array = np.asarray(out_probe, dtype=np.int64)
    if build_is_left:
        return JoinResult(left_positions=build_array, right_positions=probe_array)
    return JoinResult(left_positions=probe_array, right_positions=build_array)


def merge_join_sorted(
    left_values: np.ndarray,
    right_values: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> JoinResult:
    """Equi-join two *sorted* value arrays via a merge pass.

    Used when both inputs are already ordered (e.g. both sides come out of a
    full index or a converged adaptive index); its cost is linear in the
    inputs, which is what makes sorted representations attractive for joins.
    """
    left_values = np.asarray(left_values)
    right_values = np.asarray(right_values)
    if counters is not None:
        counters.record_scan(len(left_values) + len(right_values))
        counters.record_comparisons(len(left_values) + len(right_values))
    # np.searchsorted based merge for equal keys with duplicates
    out_left = []
    out_right = []
    i = j = 0
    nl, nr = len(left_values), len(right_values)
    while i < nl and j < nr:
        lv, rv = left_values[i], right_values[j]
        if lv < rv:
            i += 1
        elif lv > rv:
            j += 1
        else:
            # gather runs of equal values on both sides
            i_end = i
            while i_end < nl and left_values[i_end] == lv:
                i_end += 1
            j_end = j
            while j_end < nr and right_values[j_end] == rv:
                j_end += 1
            for a in range(i, i_end):
                for b in range(j, j_end):
                    out_left.append(a)
                    out_right.append(b)
            i, j = i_end, j_end
    return JoinResult(
        left_positions=np.asarray(out_left, dtype=np.int64),
        right_positions=np.asarray(out_right, dtype=np.int64),
    )


def aggregate(
    values: np.ndarray,
    function: str,
    counters: Optional[CostCounters] = None,
) -> float:
    """Aggregate an array with one of sum/min/max/mean/count."""
    values = np.asarray(values)
    if counters is not None:
        counters.record_scan(len(values))
    if function == "count":
        return float(len(values))
    if len(values) == 0:
        raise ValueError(f"cannot compute {function!r} of an empty input")
    functions = {
        "sum": np.sum,
        "min": np.min,
        "max": np.max,
        "mean": np.mean,
    }
    try:
        return float(functions[function](values))
    except KeyError:
        raise ValueError(
            f"unknown aggregate {function!r}; supported: count, sum, min, max, mean"
        ) from None


def group_by_aggregate(
    keys: np.ndarray,
    values: np.ndarray,
    function: str = "sum",
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Group ``values`` by ``keys`` and aggregate each group.

    Returns ``(unique_keys, aggregated_values)`` with keys in sorted order.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if len(keys) != len(values):
        raise ValueError("keys and values must have equal length")
    if counters is not None:
        counters.record_scan(2 * len(keys))
        counters.record_comparisons(int(len(keys) * max(1.0, np.log2(max(len(keys), 2)))))
    if len(keys) == 0:
        return np.empty(0, dtype=keys.dtype), np.empty(0, dtype=np.float64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    unique_keys, starts = np.unique(sorted_keys, return_index=True)
    boundaries = np.append(starts, len(sorted_keys))
    aggregated = np.empty(len(unique_keys), dtype=np.float64)
    for index in range(len(unique_keys)):
        segment = sorted_values[boundaries[index] : boundaries[index + 1]]
        aggregated[index] = aggregate(segment, function)
    return unique_keys, aggregated


def project(
    columns: Dict[str, Column],
    positions: np.ndarray,
    names: Iterable[str],
    counters: Optional[CostCounters] = None,
) -> Dict[str, np.ndarray]:
    """Materialise a projection of ``names`` at ``positions``."""
    positions = np.asarray(positions, dtype=np.int64)
    result = {}
    for name in names:
        column = columns[name]
        if counters is not None:
            counters.record_random_access(len(positions))
        result[name] = column.values[positions]
    return result
