"""Tuple reconstruction (early and late materialisation).

Column-stores answer multi-attribute queries by stitching columns back
together.  *Late* reconstruction carries position lists through the plan and
fetches payload columns only at the end; *early* reconstruction materialises
row tuples up front.  Sideways cracking (Idreos et al., SIGMOD 2009) exists
precisely because late reconstruction over cracked columns degenerates into
random access — these operators provide the baselines it is compared with.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.columnstore.column import Column
from repro.columnstore.table import Table
from repro.cost.counters import CostCounters


def late_reconstruct(
    table: Table,
    positions: np.ndarray,
    column_names: Iterable[str],
    counters: Optional[CostCounters] = None,
) -> Dict[str, np.ndarray]:
    """Fetch ``column_names`` for ``positions`` via positional gathers.

    Every column fetch is a random-access gather: cheap when positions are
    clustered (e.g. after cracking the projection columns sideways), very
    expensive when positions are scattered over a large column.
    """
    positions = np.asarray(positions, dtype=np.int64)
    result: Dict[str, np.ndarray] = {}
    for name in column_names:
        column = table.column(name)
        if counters is not None:
            counters.record_random_access(len(positions))
        result[name] = column.values[positions]
    return result


def early_reconstruct(
    table: Table,
    column_names: Iterable[str],
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Materialise the requested columns as a row-major record array.

    Early materialisation reads every requested column fully; it is the
    n-ary (row-store-like) processing model and pays the full width of the
    projection for every row regardless of selectivity.
    """
    names: List[str] = list(column_names)
    arrays = []
    for name in names:
        column = table.column(name)
        if counters is not None:
            counters.record_scan(len(column))
        arrays.append(column.values)
    if not arrays:
        return np.empty((table.row_count, 0))
    return np.column_stack(arrays)


def positions_to_values(
    column: Column,
    positions: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Fetch a single column's values for a position list."""
    positions = np.asarray(positions, dtype=np.int64)
    if counters is not None:
        counters.record_random_access(len(positions))
    return column.values[positions]


def intersect_positions(
    left: np.ndarray,
    right: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Intersect two sorted-or-unsorted position lists (conjunction)."""
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    if counters is not None:
        counters.record_scan(len(left) + len(right))
        counters.record_comparisons(len(left) + len(right))
    return np.intersect1d(left, right, assume_unique=False)


def union_positions(
    left: np.ndarray,
    right: np.ndarray,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Union two position lists (disjunction)."""
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    if counters is not None:
        counters.record_scan(len(left) + len(right))
        counters.record_comparisons(len(left) + len(right))
    return np.union1d(left, right)
