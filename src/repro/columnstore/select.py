"""Bulk select operators (scan-based selection).

Selection in a column-store is a bulk operation: a predicate is applied to an
entire column (or to an intermediate candidate list) at once and the result
is a position list.  These operators are the non-adaptive baseline that a
plain scan-based system uses for every query, and the building block that
the adaptive strategies are compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.columnstore.bulk import filter_range, range_mask
from repro.columnstore.column import Column
from repro.cost.counters import CostCounters


@dataclass(frozen=True)
class RangePredicate:
    """Half-open range predicate ``low <= value < high``.

    Either bound may be ``None`` (unbounded).  ``include_low`` /
    ``include_high`` adjust bound inclusivity; the default half-open
    convention matches the cracking literature.
    """

    low: Optional[float] = None
    high: Optional[float] = None
    include_low: bool = True
    include_high: bool = False

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.high < self.low:
            raise ValueError(f"empty predicate: high ({self.high}) < low ({self.low})")

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values satisfying the predicate (no cost recorded)."""
        return range_mask(
            values,
            self.low,
            self.high,
            include_low=self.include_low,
            include_high=self.include_high,
        )

    def selectivity_estimate(self, lo: float, hi: float) -> float:
        """Fraction of a uniform [lo, hi) domain selected by this predicate."""
        if hi <= lo:
            return 1.0
        lower = self.low if self.low is not None else lo
        upper = self.high if self.high is not None else hi
        lower = max(lower, lo)
        upper = min(upper, hi)
        if upper <= lower:
            return 0.0
        return (upper - lower) / (hi - lo)


def scan_select(
    column: Union[Column, np.ndarray],
    predicate: RangePredicate,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Full-column scan returning the positions satisfying ``predicate``.

    This is the cost every query pays when no index exists: the entire
    column is read and compared.
    """
    values = column.values if isinstance(column, Column) else np.asarray(column)
    return filter_range(
        values,
        predicate.low,
        predicate.high,
        counters,
        include_low=predicate.include_low,
        include_high=predicate.include_high,
    )


def refine_select(
    column: Union[Column, np.ndarray],
    candidate_positions: np.ndarray,
    predicate: RangePredicate,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Apply ``predicate`` only to the rows in ``candidate_positions``.

    Used for conjunctive multi-column selections under late materialisation:
    the first column produces a candidate list, subsequent columns refine it
    by gathering only the candidate rows.
    """
    values = column.values if isinstance(column, Column) else np.asarray(column)
    candidate_positions = np.asarray(candidate_positions, dtype=np.int64)
    fetched = values[candidate_positions]
    if counters is not None:
        counters.record_random_access(len(candidate_positions))
        counters.record_comparisons(len(candidate_positions))
    mask = predicate.matches(fetched)
    return candidate_positions[mask]


def count_select(
    column: Union[Column, np.ndarray],
    predicate: RangePredicate,
    counters: Optional[CostCounters] = None,
) -> int:
    """Count qualifying rows without materialising the position list."""
    values = column.values if isinstance(column, Column) else np.asarray(column)
    mask = range_mask(
        values,
        predicate.low,
        predicate.high,
        counters,
        include_low=predicate.include_low,
        include_high=predicate.include_high,
    )
    return int(mask.sum())


def between(low: Optional[float], high: Optional[float]) -> RangePredicate:
    """Shorthand constructor for the canonical half-open range predicate."""
    return RangePredicate(low=low, high=high)
