"""Memory accounting and storage budgets.

Partial cracking (Idreos et al., SIGMOD 2009) bounds the storage available to
auxiliary cracking structures; the :class:`StorageBudget` models that bound
and the :class:`MemoryTracker` gives a global view of the memory used by a
database instance (base columns plus all auxiliary index structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class StorageExceededError(RuntimeError):
    """Raised when an allocation would exceed a hard storage budget."""


@dataclass
class StorageBudget:
    """A byte budget for auxiliary index structures.

    ``limit_bytes`` of ``None`` means unlimited.  Consumers *reserve* bytes
    before allocating and *release* them when structures are dropped; the
    partial-cracking machinery uses the budget to decide when pieces must be
    evicted instead of materialised.
    """

    limit_bytes: int = None
    used_bytes: int = 0

    def can_allocate(self, nbytes: int) -> bool:
        """True when ``nbytes`` more bytes fit in the budget."""
        if self.limit_bytes is None:
            return True
        return self.used_bytes + nbytes <= self.limit_bytes

    def reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises :class:`StorageExceededError` if over budget."""
        if nbytes < 0:
            raise ValueError("cannot reserve a negative number of bytes")
        if not self.can_allocate(nbytes):
            raise StorageExceededError(
                f"allocation of {nbytes} bytes exceeds budget "
                f"({self.used_bytes}/{self.limit_bytes} bytes used)"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Release previously reserved bytes."""
        if nbytes < 0:
            raise ValueError("cannot release a negative number of bytes")
        self.used_bytes = max(0, self.used_bytes - nbytes)

    @property
    def remaining_bytes(self) -> int:
        """Remaining budget (a very large number when unlimited)."""
        if self.limit_bytes is None:
            return 2**63 - 1
        return max(0, self.limit_bytes - self.used_bytes)

    @property
    def utilisation(self) -> float:
        """Fraction of the budget in use (0.0 when unlimited)."""
        if self.limit_bytes in (None, 0):
            return 0.0
        return self.used_bytes / self.limit_bytes


@dataclass
class MemoryTracker:
    """Tracks memory used by named components of a database instance."""

    components: Dict[str, int] = field(default_factory=dict)

    def set_usage(self, component: str, nbytes: int) -> None:
        """Record the current memory footprint of a component."""
        if nbytes < 0:
            raise ValueError("memory usage cannot be negative")
        self.components[component] = int(nbytes)

    def add_usage(self, component: str, nbytes: int) -> None:
        """Add to the recorded footprint of a component."""
        self.components[component] = self.components.get(component, 0) + int(nbytes)

    def remove(self, component: str) -> None:
        """Forget a component (e.g. a dropped index)."""
        self.components.pop(component, None)

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())

    def breakdown(self) -> Dict[str, int]:
        """Per-component memory usage (copy)."""
        return dict(self.components)
