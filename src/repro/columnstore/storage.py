"""Memory accounting, storage budgets, and shared-memory column buffers.

Partial cracking (Idreos et al., SIGMOD 2009) bounds the storage available to
auxiliary cracking structures; the :class:`StorageBudget` models that bound
and the :class:`MemoryTracker` gives a global view of the memory used by a
database instance (base columns plus all auxiliary index structures).

:class:`SharedArrayBuffer` backs a numpy array with a named
``multiprocessing.shared_memory`` segment so partition worker *processes*
can attach to the same physical bytes by name: the creating process keeps
the only owning handle (it unlinks the segment on :meth:`close`), workers
attach read-write views and mutate them in place, and the segment name is
the only thing that ever crosses the process boundary.  Segment names are
``repro-{pid}-{counter}``, unique for the lifetime of the creating process,
so a re-created buffer never aliases a stale attachment.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np


class StorageExceededError(RuntimeError):
    """Raised when an allocation would exceed a hard storage budget."""


@dataclass
class StorageBudget:
    """A byte budget for auxiliary index structures.

    ``limit_bytes`` of ``None`` means unlimited.  Consumers *reserve* bytes
    before allocating and *release* them when structures are dropped; the
    partial-cracking machinery uses the budget to decide when pieces must be
    evicted instead of materialised.
    """

    limit_bytes: int = None
    used_bytes: int = 0

    def can_allocate(self, nbytes: int) -> bool:
        """True when ``nbytes`` more bytes fit in the budget."""
        if self.limit_bytes is None:
            return True
        return self.used_bytes + nbytes <= self.limit_bytes

    def reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises :class:`StorageExceededError` if over budget."""
        if nbytes < 0:
            raise ValueError("cannot reserve a negative number of bytes")
        if not self.can_allocate(nbytes):
            raise StorageExceededError(
                f"allocation of {nbytes} bytes exceeds budget "
                f"({self.used_bytes}/{self.limit_bytes} bytes used)"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Release previously reserved bytes."""
        if nbytes < 0:
            raise ValueError("cannot release a negative number of bytes")
        self.used_bytes = max(0, self.used_bytes - nbytes)

    @property
    def remaining_bytes(self) -> int:
        """Remaining budget (a very large number when unlimited)."""
        if self.limit_bytes is None:
            return 2**63 - 1
        return max(0, self.limit_bytes - self.used_bytes)

    @property
    def utilisation(self) -> float:
        """Fraction of the budget in use (0.0 when unlimited)."""
        if self.limit_bytes in (None, 0):
            return 0.0
        return self.used_bytes / self.limit_bytes


@dataclass
class MemoryTracker:
    """Tracks memory used by named components of a database instance."""

    components: Dict[str, int] = field(default_factory=dict)

    def set_usage(self, component: str, nbytes: int) -> None:
        """Record the current memory footprint of a component."""
        if nbytes < 0:
            raise ValueError("memory usage cannot be negative")
        self.components[component] = int(nbytes)

    def add_usage(self, component: str, nbytes: int) -> None:
        """Add to the recorded footprint of a component."""
        self.components[component] = self.components.get(component, 0) + int(nbytes)

    def remove(self, component: str) -> None:
        """Forget a component (e.g. a dropped index)."""
        self.components.pop(component, None)

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())

    def breakdown(self) -> Dict[str, int]:
        """Per-component memory usage (copy)."""
        return dict(self.components)


# -- shared-memory column buffers ----------------------------------------------

#: monotonically increasing suffix making segment names unique per process
_SEGMENT_COUNTER = itertools.count()

#: segments created (owned) by this process and not yet closed, by name —
#: the leak oracle for lifecycle tests and a debugging aid
_LIVE_SEGMENTS: Dict[str, "SharedArrayBuffer"] = {}
_REGISTRY_LOCK = threading.Lock()


def _next_segment_name() -> str:
    return f"repro-{os.getpid()}-{next(_SEGMENT_COUNTER)}"


def live_shared_segments() -> List[str]:
    """Names of shared segments this process owns and has not yet released."""
    with _REGISTRY_LOCK:
        return sorted(_LIVE_SEGMENTS)


def _release_segment(shm: shared_memory.SharedMemory,
                     owned_name: "str | None") -> None:
    """Unlink (owner only) and unmap one segment; finalizer-safe."""
    if owned_name is not None:
        with _REGISTRY_LOCK:
            _LIVE_SEGMENTS.pop(owned_name, None)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-release race
            pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a caller still holds a view
        # an escaped numpy view still exports the buffer; the segment is
        # already unlinked, so the mapping simply dies with that view
        pass


class SharedArrayBuffer:
    """A numpy array whose bytes live in a named shared-memory segment.

    Exactly one process *owns* a segment (:meth:`create`); any process can
    :meth:`attach` to it by name.  The owner's :meth:`close` unlinks the
    segment — attached mappings elsewhere stay valid until they close, but
    no new attach can happen — and rebinding a column's arrays always
    allocates a *new* segment under a fresh name, so attachments can be
    cached by name safely.
    """

    __slots__ = ("name", "array", "owner", "_shm", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray,
                 owner: bool) -> None:
        self._shm = shm
        self.array = array
        self.name = shm.name
        self.owner = bool(owner)
        if owner:
            with _REGISTRY_LOCK:
                _LIVE_SEGMENTS[self.name] = self
        self._finalizer = weakref.finalize(
            self, _release_segment, shm, self.name if owner else None
        )

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArrayBuffer":
        """Copy ``source`` into a fresh owned segment (uncharged, physical)."""
        source = np.ascontiguousarray(source)
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, source.nbytes),
                    name=_next_segment_name(),
                )
                break
            except FileExistsError:  # pragma: no cover - stale leftover segment
                continue
        array = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        array[...] = source
        return cls(shm, array, owner=True)

    @classmethod
    def attach(cls, name: str, dtype: str, shape: Tuple[int, ...]) -> "SharedArrayBuffer":
        """Attach to an existing segment by name (worker side, non-owning)."""
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 has no track=False, so attaching registers the
            # segment with the resource tracker a second time.  Our attachers
            # are always spawn-pool children *sharing* the owner's tracker,
            # whose cache is a set — the duplicate registration is a no-op
            # and the owner's unlink clears the single entry.  Unregistering
            # here (the classic workaround for independent processes) would
            # remove the owner's entry instead and make the owner's unlink
            # race the tracker.
            shm = shared_memory.SharedMemory(name=name)
        array = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
        return cls(shm, array, owner=False)

    def descriptor(self) -> Tuple[str, str, Tuple[int, ...]]:
        """``(name, dtype, shape)`` — everything a worker needs to attach."""
        return (self.name, self.array.dtype.str, tuple(self.array.shape))

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Release the mapping (and unlink the segment when owning); idempotent."""
        self.array = None
        self._finalizer()
