"""Tables: collections of aligned columns."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from repro.columnstore.column import Column
from repro.cost.counters import CostCounters


class Table:
    """A named collection of equal-length :class:`~repro.columnstore.column.Column`.

    Rows are identified by their position (0-based, dense).  All columns of a
    table are kept aligned: appending rows appends to every column, deleting
    rows compacts every column identically.
    """

    def __init__(self, name: str, columns: Optional[Mapping[str, Union[Column, np.ndarray, Iterable]]] = None) -> None:
        self.name = name
        self._columns: Dict[str, Column] = {}
        if columns:
            for column_name, values in columns.items():
                self.add_column(column_name, values)

    # -- column management ---------------------------------------------------

    def add_column(self, name: str, values: Union[Column, np.ndarray, Iterable]) -> Column:
        """Add a column; its length must match existing columns."""
        if name in self._columns:
            raise ValueError(f"column {name!r} already exists in table {self.name!r}")
        column = values if isinstance(values, Column) else Column(values, name=name)
        column.name = name
        if self._columns and len(column) != self.row_count:
            raise ValueError(
                f"column {name!r} has {len(column)} rows, expected {self.row_count}"
            )
        self._columns[name] = column
        return column

    def drop_column(self, name: str) -> None:
        """Remove a column from the table."""
        if name not in self._columns:
            raise KeyError(f"no column {name!r} in table {self.name!r}")
        del self._columns[name]

    def column(self, name: str) -> Column:
        """Return the column named ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in table {self.name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def columns(self) -> Dict[str, Column]:
        return dict(self._columns)

    @property
    def row_count(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def nbytes(self) -> int:
        return sum(column.nbytes for column in self._columns.values())

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table(name={self.name!r}, rows={self.row_count}, "
            f"columns={self.column_names})"
        )

    # -- row operations --------------------------------------------------------

    def append_rows(self, rows: Mapping[str, Union[np.ndarray, Iterable, int, float]],
                    counters: Optional[CostCounters] = None) -> None:
        """Append rows given as a mapping column-name -> values.

        Every column of the table must be present and all value arrays must
        have the same length (scalars are broadcast to length one).
        """
        if set(rows) != set(self._columns):
            missing = set(self._columns) - set(rows)
            extra = set(rows) - set(self._columns)
            raise ValueError(
                f"append_rows expects exactly the table's columns; "
                f"missing={sorted(missing)}, unexpected={sorted(extra)}"
            )
        arrays = {name: np.atleast_1d(np.asarray(values)) for name, values in rows.items()}
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise ValueError(f"all appended columns must have equal length, got {lengths}")
        # validate every value against its column's dtype *before* mutating
        # anything, so a failed conversion cannot leave columns with unequal
        # lengths (the append below must be all-or-nothing)
        arrays = {
            name: self._columns[name].dtype.validate_array(array)
            for name, array in arrays.items()
        }
        for name, array in arrays.items():
            self._columns[name].append(array, counters=counters)

    def delete_rows(self, positions: Union[np.ndarray, Iterable[int]],
                    counters: Optional[CostCounters] = None) -> None:
        """Delete the rows at ``positions`` from every column."""
        positions = np.asarray(list(positions) if not isinstance(positions, np.ndarray) else positions)
        for column in self._columns.values():
            column.delete_positions(positions, counters=counters)

    def fetch_rows(self, positions: Union[np.ndarray, Iterable[int]],
                   column_names: Optional[Iterable[str]] = None,
                   counters: Optional[CostCounters] = None) -> Dict[str, np.ndarray]:
        """Materialise the requested columns for the given row positions."""
        positions = np.asarray(positions, dtype=np.int64)
        names = list(column_names) if column_names is not None else self.column_names
        result = {}
        for name in names:
            column = self.column(name)
            if counters is not None:
                counters.record_random_access(len(positions))
            result[name] = column.values[positions]
        return result

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Export all columns as a dict of NumPy arrays (copies)."""
        return {name: column.values.copy() for name, column in self._columns.items()}
