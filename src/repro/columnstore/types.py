"""Fixed-width column data types.

A column-store stores every attribute as a dense array of fixed-width values.
This module provides lightweight type descriptors wrapping NumPy dtypes plus
validation and inference helpers.  Only fixed-width numeric types are
supported, mirroring the storage model that database cracking relies on
(cracking reorganises arrays in place, which requires fixed-width values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np


@dataclass(frozen=True)
class DataType:
    """Descriptor for a fixed-width column type."""

    name: str
    numpy_dtype: np.dtype
    width_bytes: int

    def validate_array(self, array: np.ndarray) -> np.ndarray:
        """Coerce ``array`` to this type, raising on lossy conversions."""
        array = np.asarray(array)
        if array.dtype == self.numpy_dtype:
            return array
        converted = array.astype(self.numpy_dtype)
        if np.issubdtype(self.numpy_dtype, np.integer) and np.issubdtype(
            array.dtype, np.floating
        ):
            if not np.allclose(converted.astype(array.dtype), array):
                raise TypeError(
                    f"cannot losslessly convert float data to {self.name}"
                )
        return converted

    def empty(self, capacity: int) -> np.ndarray:
        """Allocate an uninitialised array of ``capacity`` elements."""
        return np.empty(int(capacity), dtype=self.numpy_dtype)

    def zeros(self, capacity: int) -> np.ndarray:
        """Allocate a zero-initialised array of ``capacity`` elements."""
        return np.zeros(int(capacity), dtype=self.numpy_dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType({self.name})"


INT32 = DataType("int32", np.dtype(np.int32), 4)
INT64 = DataType("int64", np.dtype(np.int64), 8)
FLOAT32 = DataType("float32", np.dtype(np.float32), 4)
FLOAT64 = DataType("float64", np.dtype(np.float64), 8)

_BY_NAME = {t.name: t for t in (INT32, INT64, FLOAT32, FLOAT64)}
_BY_DTYPE = {t.numpy_dtype: t for t in (INT32, INT64, FLOAT32, FLOAT64)}


def dtype_by_name(name: str) -> DataType:
    """Look up a :class:`DataType` by its name (``"int64"`` etc.)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown data type {name!r}; supported: {sorted(_BY_NAME)}"
        ) from None


def infer_dtype(values: Union[np.ndarray, Iterable]) -> DataType:
    """Infer the narrowest supported :class:`DataType` for ``values``."""
    array = np.asarray(values)
    if array.dtype in _BY_DTYPE:
        return _BY_DTYPE[array.dtype]
    if np.issubdtype(array.dtype, np.integer):
        return INT64
    if np.issubdtype(array.dtype, np.floating):
        return FLOAT64
    if array.dtype == bool:
        return INT32
    raise TypeError(
        f"unsupported column dtype {array.dtype}; only fixed-width numeric "
        "types are supported by the column-store substrate"
    )


SUPPORTED_TYPES = tuple(_BY_NAME.values())
