"""Adaptive indexing core: cracking, adaptive merging and hybrids.

This package contains the paper's primary contribution area: the family of
adaptive indexing algorithms that refine physical design *as a side effect of
query execution*.

* :mod:`repro.core.cracking` — database cracking (selection cracking),
  stochastic cracking, cracking with updates, partial (storage-bounded)
  cracking and sideways cracking;
* :mod:`repro.core.merging` — adaptive merging over sorted runs
  (partitioned B-tree style);
* :mod:`repro.core.hybrids` — the hybrid algorithms of Idreos et al.
  (PVLDB 2011) that blend cracking-style and merging-style reorganisation;
* :mod:`repro.core.partitioned` — partitioned (and optionally parallel)
  cracking: contiguous shards cracked independently, with thread-pool
  fan-out for queries spanning several shards;
* :mod:`repro.core.strategies` — a uniform registry so that baselines and
  adaptive strategies are interchangeable in the engine and the benchmark;
* :mod:`repro.core.adaptive_index` — the user-facing facade.
"""

from repro.core.adaptive_index import AdaptiveIndex
from repro.core.partitioned import (
    PartitionedCrackedColumn,
    PartitionedUpdatableCrackedColumn,
)
from repro.core.strategies import (
    SearchStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
)

__all__ = [
    "AdaptiveIndex",
    "PartitionedCrackedColumn",
    "PartitionedUpdatableCrackedColumn",
    "SearchStrategy",
    "available_strategies",
    "create_strategy",
    "register_strategy",
]
