"""User-facing facade: one adaptive index, any strategy.

:class:`AdaptiveIndex` is the single entry point most applications need: it
wraps one column with the chosen adaptive (or baseline) strategy, exposes
the ``search`` operator, and records per-query statistics so the
adaptive-indexing benchmark metrics (initialization cost, convergence) can
be computed afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.columnstore.column import Column
from repro.core.strategies import SearchStrategy, create_strategy
from repro.cost.counters import CostCounters
from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL
from repro.cost.stats import QueryStatistics, WorkloadStatistics
from repro.cost.timer import Timer


class AdaptiveIndex:
    """An adaptively indexed column.

    Parameters
    ----------
    column:
        The column (or raw NumPy array) to index.
    strategy:
        Registry name of the indexing strategy (see
        :func:`repro.core.strategies.available_strategies`); defaults to
        classic database cracking.
    collect_statistics:
        When True (default) every query's wall-clock time and logical cost
        counters are recorded in :attr:`statistics`.
    options:
        Extra keyword arguments forwarded to the strategy constructor
        (e.g. ``run_size`` for adaptive merging, ``variant`` for stochastic
        cracking).
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        strategy: str = "cracking",
        collect_statistics: bool = True,
        **options,
    ) -> None:
        self.column = column
        self.strategy_name = strategy
        self.strategy: SearchStrategy = create_strategy(strategy, column, **options)
        self.collect_statistics = collect_statistics
        self.statistics = WorkloadStatistics(strategy=strategy)

    def __len__(self) -> int:
        return len(self.strategy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveIndex(strategy={self.strategy_name!r}, rows={len(self)}, "
            f"queries={self.queries_processed})"
        )

    @property
    def queries_processed(self) -> int:
        """Number of queries answered so far."""
        return self.strategy.queries_processed

    @property
    def nbytes(self) -> int:
        """Auxiliary storage currently held by the strategy."""
        return self.strategy.nbytes

    # -- querying ------------------------------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Positions of rows with ``low <= value < high`` (adapting as a side effect)."""
        own_counters = counters if counters is not None else CostCounters()
        timer = Timer()
        with timer:
            positions = self.strategy.search(low, high, own_counters)
        if self.collect_statistics:
            self.statistics.append(
                QueryStatistics(
                    query_index=len(self.statistics),
                    elapsed_seconds=timer.elapsed,
                    counters=own_counters.copy() if counters is None else own_counters.copy(),
                    result_count=len(positions),
                    strategy=self.strategy_name,
                    description=f"range [{low}, {high})",
                )
            )
        return positions

    def count(self, low: Optional[float], high: Optional[float]) -> int:
        """Number of qualifying rows (adapting as a side effect)."""
        return len(self.search(low, high))

    # -- analysis ------------------------------------------------------------------

    def per_query_cost(self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL) -> List[float]:
        """Logical cost of every query answered so far."""
        return self.statistics.per_query_cost(model)

    def cumulative_cost(self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL) -> List[float]:
        """Cumulative logical cost of the query sequence so far."""
        return self.statistics.cumulative_cost(model)

    def structure_description(self) -> str:
        """One-line summary of the strategy's physical state."""
        return self.strategy.structure_description
