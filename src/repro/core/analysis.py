"""Structural analysis of adaptive index state.

The adaptive-indexing papers characterise index state not only by query cost
but also structurally: how many pieces exist, how small they have become,
how much of the column is already fully ordered, how much of the key domain
the workload has touched.  This module computes those measures for any of
the library's adaptive structures, so experiments, examples and operators
(e.g. a future "finish the index in idle time" maintenance task, one of the
tutorial's open topics) can reason about convergence explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.hybrids.hybrid_index import HybridIndex
from repro.core.merging.adaptive_merge import AdaptiveMergingIndex


@dataclass(frozen=True)
class StructureReport:
    """Structural snapshot of an adaptive index."""

    kind: str
    row_count: int
    piece_count: int
    largest_piece: int
    median_piece: float
    sorted_fraction: float      # fraction of rows inside sorted/ordered regions
    optimised_fraction: float   # fraction of rows in "final"/converged form
    auxiliary_bytes: int

    def is_converged(self, piece_threshold: int = 64) -> bool:
        """Heuristic convergence test: no unsorted piece larger than the threshold."""
        return self.largest_piece <= piece_threshold or self.sorted_fraction >= 0.999

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "row_count": self.row_count,
            "piece_count": self.piece_count,
            "largest_piece": self.largest_piece,
            "median_piece": self.median_piece,
            "sorted_fraction": self.sorted_fraction,
            "optimised_fraction": self.optimised_fraction,
            "auxiliary_bytes": self.auxiliary_bytes,
        }


def _piece_sizes_cracked(cracked: CrackedColumn) -> List[int]:
    return [piece.size for piece in cracked.pieces()]


def analyze_cracked_column(cracked: CrackedColumn) -> StructureReport:
    """Structural report for a (plain or stochastic) cracked column."""
    n = len(cracked)
    if not cracked.materialised or n == 0:
        return StructureReport(
            kind="cracking", row_count=n, piece_count=1, largest_piece=n,
            median_piece=float(n), sorted_fraction=0.0, optimised_fraction=0.0,
            auxiliary_bytes=cracked.nbytes,
        )
    sizes = _piece_sizes_cracked(cracked)
    sorted_rows = sum(
        piece.size for piece in cracked.pieces() if piece.sorted or piece.size <= 1
    )
    # a piece is "optimised" when no further cracking can ever touch it:
    # single-valued or sorted pieces qualify
    optimised_rows = sorted_rows
    return StructureReport(
        kind="cracking",
        row_count=n,
        piece_count=len(sizes),
        largest_piece=max(sizes) if sizes else 0,
        median_piece=float(np.median(sizes)) if sizes else 0.0,
        sorted_fraction=sorted_rows / n,
        optimised_fraction=optimised_rows / n,
        auxiliary_bytes=cracked.nbytes,
    )


def analyze_adaptive_merging(index: AdaptiveMergingIndex) -> StructureReport:
    """Structural report for an adaptive merging index."""
    n = len(index)
    if not index.initialized or n == 0:
        return StructureReport(
            kind="adaptive-merging", row_count=n, piece_count=0, largest_piece=n,
            median_piece=float(n), sorted_fraction=0.0, optimised_fraction=0.0,
            auxiliary_bytes=index.nbytes,
        )
    run_sizes = [len(run) for run in index.runs if len(run)]
    merged = len(index.final_values)
    pieces = len(run_sizes) + (1 if merged else 0)
    largest = max(run_sizes + [merged]) if (run_sizes or merged) else 0
    return StructureReport(
        kind="adaptive-merging",
        row_count=n,
        piece_count=pieces,
        largest_piece=largest,
        median_piece=float(np.median(run_sizes + ([merged] if merged else []))) if pieces else 0.0,
        sorted_fraction=1.0,  # runs and the final partition are always sorted
        optimised_fraction=merged / n,
        auxiliary_bytes=index.nbytes,
    )


def analyze_hybrid(index: HybridIndex) -> StructureReport:
    """Structural report for a hybrid index."""
    n = len(index)
    if not index.initialized or n == 0:
        return StructureReport(
            kind=f"hybrid-{index.initial_mode}-{index.final_mode}", row_count=n,
            piece_count=0, largest_piece=n, median_piece=float(n),
            sorted_fraction=0.0, optimised_fraction=0.0, auxiliary_bytes=index.nbytes,
        )
    partition_sizes = [len(p) for p in index.partitions if len(p)]
    final_sizes = [len(piece) for piece in index.final.pieces]
    merged = len(index.final)
    sizes = partition_sizes + final_sizes
    sorted_rows = merged if index.final_mode == "sort" else 0
    if index.initial_mode == "sort":
        sorted_rows += sum(partition_sizes)
    return StructureReport(
        kind=f"hybrid-{index.initial_mode}-{index.final_mode}",
        row_count=n,
        piece_count=len(sizes),
        largest_piece=max(sizes) if sizes else 0,
        median_piece=float(np.median(sizes)) if sizes else 0.0,
        sorted_fraction=min(1.0, sorted_rows / n),
        optimised_fraction=merged / n,
        auxiliary_bytes=index.nbytes,
    )


def analyze(structure: Union[CrackedColumn, AdaptiveMergingIndex, HybridIndex, object]) -> StructureReport:
    """Dispatch to the right analyzer (also unwraps strategy objects)."""
    # unwrap strategy wrappers from repro.core.strategies
    for attribute in ("cracked", "index"):
        inner = getattr(structure, attribute, None)
        if isinstance(inner, (CrackedColumn, AdaptiveMergingIndex, HybridIndex)):
            structure = inner
            break
    if isinstance(structure, CrackedColumn):
        return analyze_cracked_column(structure)
    if isinstance(structure, AdaptiveMergingIndex):
        return analyze_adaptive_merging(structure)
    if isinstance(structure, HybridIndex):
        return analyze_hybrid(structure)
    raise TypeError(
        f"cannot analyze object of type {type(structure).__name__}; expected a "
        "CrackedColumn, AdaptiveMergingIndex, HybridIndex or a strategy wrapping one"
    )


def piece_size_histogram(
    structure: Union[CrackedColumn, AdaptiveMergingIndex, HybridIndex],
    bins: int = 10,
) -> List[tuple]:
    """Histogram of piece sizes as ``(upper_bound, count)`` pairs."""
    if isinstance(structure, CrackedColumn):
        sizes = _piece_sizes_cracked(structure) if structure.materialised else [len(structure)]
    elif isinstance(structure, AdaptiveMergingIndex):
        sizes = [len(run) for run in structure.runs if len(run)]
        if len(structure.final_values):
            sizes.append(len(structure.final_values))
    elif isinstance(structure, HybridIndex):
        sizes = [len(p) for p in structure.partitions if len(p)]
        sizes.extend(len(piece) for piece in structure.final.pieces)
    else:
        raise TypeError(f"unsupported structure type {type(structure).__name__}")
    if not sizes:
        return []
    counts, edges = np.histogram(sizes, bins=bins)
    return [(float(edges[i + 1]), int(counts[i])) for i in range(len(counts))]
