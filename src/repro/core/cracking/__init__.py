"""Database cracking: incremental index refinement during selections.

Database cracking (Idreos, Kersten, Manegold; CIDR 2007) treats every query
as advice on how data should be stored.  The first selection on a column
copies it into a *cracker column*; every subsequent selection partially
reorganises (cracks) that copy so all values qualifying for the query's
range end up contiguous.  A *cracker index* records the piece boundaries
introduced so far, so later queries only touch the piece(s) their bounds
fall into.

Modules
-------
``cracker_index``
    The piece-boundary bookkeeping structure (an ordered map from key values
    to array positions, with per-piece sortedness flags).
``crack_engine``
    The physical crack-in-two / crack-in-three kernels.
``cracked_column``
    :class:`CrackedColumn`: cracker column + cracker index + select operator.
``stochastic``
    Stochastic cracking (random auxiliary cuts) for robustness against
    adversarial query patterns.
``updates``
    :class:`UpdatableCrackedColumn`: pending insert/delete queues merged
    adaptively during query processing (ripple insertion/deletion).
``partial``
    :class:`PartialCrackedColumn`: cracking under a storage budget, with
    on-demand materialisation and eviction of value-range fragments.
``sideways``
    :class:`SidewaysCracker`: cracker maps keeping multiple columns aligned
    for multi-column selections and efficient tuple reconstruction.
"""

from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.cracker_index import CrackerIndex, Piece
from repro.core.cracking.partial import PartialCrackedColumn
from repro.core.cracking.sideways import SidewaysCracker
from repro.core.cracking.stochastic import StochasticCrackedColumn
from repro.core.cracking.updates import UpdatableCrackedColumn

__all__ = [
    "CrackedColumn",
    "CrackerIndex",
    "Piece",
    "StochasticCrackedColumn",
    "UpdatableCrackedColumn",
    "PartialCrackedColumn",
    "SidewaysCracker",
]
