"""Physical cracking kernels: crack-in-two and crack-in-three.

These functions combine the bulk partitioning primitives of
:mod:`repro.columnstore.bulk` with the bookkeeping of
:class:`~repro.core.cracking.cracker_index.CrackerIndex`.  They are shared by
plain cracking, stochastic cracking, the update machinery, sideways cracking
and the hybrid algorithms (which crack their initial partitions).

``rowids`` is the aligned row-identifier array of the cracker column;
``extra_payload`` is an optional additional aligned array (the dragged tail
attribute of a sideways cracker map) permuted identically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analysis_tools.guards import charges, typed_kernel
from repro.columnstore.bulk import (
    binary_search_count,
    partition_three_way,
    partition_two_way,
    stable_sort_segment,
)
from repro.core.cracking.cracker_index import CrackerIndex
from repro.cost.counters import CostCounters


@typed_kernel(buffers={"rowids": "integer?", "extra_payload": "numeric?"})
def _payloads(rowids, extra_payload):
    payloads = []
    if rowids is not None:
        payloads.append(rowids)
    if extra_payload is not None:
        payloads.append(extra_payload)
    return payloads or None


@typed_kernel(buffers={"values": "numeric", "rowids": "integer?",
                       "extra_payload": "numeric?"},
              mutates=("values", "rowids", "extra_payload"))
@charges("comparisons", "pieces")
def crack_value(
    values: np.ndarray,
    rowids: Optional[np.ndarray],
    index: CrackerIndex,
    pivot: float,
    counters: Optional[CostCounters] = None,
    sort_threshold: int = 0,
    extra_payload: Optional[np.ndarray] = None,
) -> int:
    """Ensure a boundary for ``pivot`` exists; return its position.

    If ``pivot`` is already a boundary the lookup is free of data movement.
    Otherwise the piece containing ``pivot`` is located and physically
    partitioned around ``pivot`` (crack-in-two).  When the piece is already
    sorted, a binary search replaces the physical crack.  When the piece is
    smaller than ``sort_threshold`` it is sorted outright (and marked so),
    which accelerates convergence at a small extra cost — the
    "sort small pieces" optimisation discussed for the hybrid variants.
    """
    payload = _payloads(rowids, extra_payload)
    existing = index.position_of(pivot)
    if existing is not None:
        if counters is not None:
            counters.record_comparisons(binary_search_count(index.piece_count))
        return existing

    piece = index.piece_for_value(pivot)
    if counters is not None:
        counters.record_comparisons(binary_search_count(index.piece_count))

    if piece.sorted:
        # no data movement needed: binary search inside the sorted piece
        offset = int(
            np.searchsorted(values[piece.start : piece.end], pivot, side="left")
        )
        split = piece.start + offset
        if counters is not None:
            counters.record_comparisons(binary_search_count(piece.size))
        index.add_boundary(pivot, split, left_sorted=True, right_sorted=True)
        if counters is not None:
            counters.record_pieces(1)
        return split

    if 0 < sort_threshold and piece.size <= sort_threshold and piece.size > 1:
        stable_sort_segment(values, piece.start, piece.end, counters, payload=payload)
        offset = int(
            np.searchsorted(values[piece.start : piece.end], pivot, side="left")
        )
        split = piece.start + offset
        index.add_boundary(pivot, split, left_sorted=True, right_sorted=True)
        if counters is not None:
            counters.record_pieces(1)
        return split

    split = partition_two_way(
        values, piece.start, piece.end, pivot, counters, payload=payload
    )
    index.add_boundary(pivot, split)
    if counters is not None:
        counters.record_pieces(1)
    return split


@typed_kernel(buffers={"values": "numeric", "rowids": "integer?",
                       "extra_payload": "numeric?"},
              mutates=("values", "rowids", "extra_payload"))
@charges("comparisons", "pieces")
def crack_range(
    values: np.ndarray,
    rowids: Optional[np.ndarray],
    index: CrackerIndex,
    low: Optional[float],
    high: Optional[float],
    counters: Optional[CostCounters] = None,
    sort_threshold: int = 0,
    extra_payload: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """Crack so that values in ``[low, high)`` occupy one contiguous region.

    Returns ``(start, end)`` positions of the qualifying region.  Uses
    crack-in-three when both bounds fall inside the same (unsorted,
    un-cracked-at-either-bound) piece, crack-in-two otherwise, mirroring the
    original algorithm.
    """
    if low is not None and high is not None and high < low:
        raise ValueError(f"empty range: high ({high}) < low ({low})")
    payload = _payloads(rowids, extra_payload)

    if low is None and high is None:
        return 0, index.size
    if low is None:
        end = crack_value(
            values, rowids, index, high, counters, sort_threshold, extra_payload
        )
        return 0, end
    if high is None:
        start = crack_value(
            values, rowids, index, low, counters, sort_threshold, extra_payload
        )
        return start, index.size

    low_known = index.position_of(low) is not None
    high_known = index.position_of(high) is not None

    if not low_known and not high_known:
        low_piece = index.piece_for_value(low)
        high_piece = index.piece_for_value(high)
        same_piece = (
            low_piece.start == high_piece.start and low_piece.end == high_piece.end
        )
        if same_piece and not low_piece.sorted and not (
            0 < sort_threshold and low_piece.size <= sort_threshold
        ):
            # charge the piece lookup before the physical partition (as
            # crack_value does) so mid-query counter snapshots attribute the
            # navigation cost to navigation, not to data movement
            if counters is not None:
                counters.record_comparisons(binary_search_count(index.piece_count))
            split_low, split_high = partition_three_way(
                values, low_piece.start, low_piece.end, low, high, counters,
                payload=payload,
            )
            if counters is not None:
                counters.record_pieces(2)
            index.add_boundary(low, split_low)
            index.add_boundary(high, split_high)
            return split_low, split_high

    start = crack_value(
        values, rowids, index, low, counters, sort_threshold, extra_payload
    )
    end = crack_value(
        values, rowids, index, high, counters, sort_threshold, extra_payload
    )
    return start, end
