"""The cracked column: selection cracking as a select operator.

A :class:`CrackedColumn` is the adaptive-indexing counterpart of a plain
scan: its :meth:`search` answers a range selection **and**, as a side
effect, physically reorganises its private copy of the column (the *cracker
column*) so that the qualifying values become contiguous.  The more a key
range is queried, the more refined that region of the cracker column
becomes; ranges never queried are never touched.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.analysis_tools.guards import guarded_by
from repro.columnstore.bulk import binary_search_count
from repro.columnstore.column import Column
from repro.core.cracking.cracker_index import CrackerIndex, Piece
from repro.core.cracking.crack_engine import crack_range
from repro.cost.counters import CostCounters


@guarded_by(queries_processed="_stats_lock")
class CrackedColumn:
    """Cracker column + cracker index + adaptive select operator.

    Parameters
    ----------
    column:
        The base column (or a raw array).  The cracked column keeps its own
        copy — the cracker column — plus an aligned array of original row
        identifiers, so search results are positions into the *base* column.
    sort_threshold:
        When a crack targets a piece of at most this many elements, the
        piece is sorted outright instead of partitioned, and marked sorted
        so later cracks inside it need no data movement.  ``0`` disables the
        optimisation (the classic CIDR 2007 algorithm).
    counters:
        Optional cost counters charged with the initial copy (the
        "initialization cost" of the first query is the copy plus the first
        crack; callers that want to charge the copy to the first query pass
        ``lazy_copy=True`` instead).
    lazy_copy:
        When True, the cracker column copy is deferred to the first
        :meth:`search` call and charged to that call's counters, matching
        how the literature accounts the first-query overhead.
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        sort_threshold: int = 0,
        counters: Optional[CostCounters] = None,
        lazy_copy: bool = True,
        name: str = "",
    ) -> None:
        base = column.values if isinstance(column, Column) else np.asarray(column)
        if base.ndim != 1:
            raise ValueError("cracked columns are one-dimensional")
        self.name = name or (column.name if isinstance(column, Column) else "")
        self.sort_threshold = int(sort_threshold)
        self._base = base
        self._fragment = False
        self.values: Optional[np.ndarray] = None
        self.rowids: Optional[np.ndarray] = None
        self.index = CrackerIndex(len(base))
        self.queries_processed = 0
        # once True, search answers by pure binary search and never mutates
        # the cracker column again (see :attr:`converged`)
        self._converged = False
        # guards the shared query counter: converged columns serve
        # concurrent readers, whose increments must not be lost
        self._stats_lock = threading.Lock()
        if not lazy_copy:
            self._materialise(counters)

    @classmethod
    def from_fragment(
        cls,
        base: np.ndarray,
        values: np.ndarray,
        rowids: np.ndarray,
        index: CrackerIndex,
        sort_threshold: int = 0,
        name: str = "",
    ) -> "CrackedColumn":
        """A cracked column over a *fragment* of ``base`` (repartitioning splits).

        ``rowids`` are positions into ``base`` — not necessarily contiguous
        or complete — and ``values`` must equal ``base[rowids]`` in cracker
        order; ``index`` describes the fragment.  The fragment is
        materialised from birth (its arrays were carved out of an already
        materialised parent), and its length is the fragment's row count,
        not ``len(base)``.
        """
        if len(values) != len(rowids) or index.size != len(values):
            raise ValueError("fragment arrays and index sizes must agree")
        fragment = cls(base, sort_threshold=sort_threshold, lazy_copy=True, name=name)
        fragment._fragment = True
        fragment.values = values
        fragment.rowids = rowids
        fragment.index = index
        return fragment

    # -- materialisation ---------------------------------------------------------

    @property
    def materialised(self) -> bool:
        """True once the cracker column copy exists."""
        return self.values is not None

    def _materialise(self, counters: Optional[CostCounters]) -> None:
        if self.materialised:
            return
        self.values = np.array(self._base, copy=True)
        self.rowids = np.arange(len(self._base), dtype=np.int64)
        if counters is not None:
            counters.record_scan(len(self._base))
            counters.record_move(len(self._base))
            counters.record_allocation(self.values.nbytes + self.rowids.nbytes)

    def __len__(self) -> int:
        return len(self.values) if self._fragment else len(self._base)

    @property
    def converged(self) -> bool:
        """True once the cracker column is fully sorted.

        A converged column answers by pure binary search over its sorted
        values (see :meth:`_sorted_range`) and never mutates itself again:
        it is read-only under selection, which the batch scheduler
        (:mod:`repro.engine.concurrency`) exploits to fan concurrent
        queries out over it.  The check is an O(n) vectorised sortedness
        test, so it is performed on demand (typically once per batch by
        the scheduler's classification, never on the per-query hot path)
        and latched: cracks only ever add order, so a sorted cracker
        column stays sorted.  Callers that may race a concurrent crack of
        this column (batch classification across concurrently issued
        batches) must evaluate this under the column's access-path lock —
        the sortedness of a mid-crack array is not meaningful.
        """
        if not self._converged and self.is_fully_sorted():
            self._converged = True
        return self._converged

    def _count_query(self) -> None:
        """Thread-safely note one processed query (converged columns are
        served by concurrent readers; a bare ``+= 1`` could lose counts)."""
        with self._stats_lock:
            self.queries_processed += 1

    def _sorted_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters],
    ) -> Tuple[int, int]:
        """Qualifying region of a *converged* column: two binary searches.

        Charges the same navigation costs a full index charges per probed
        bound; no data moves and no boundary is added, so the call is free
        of side effects and safe under concurrent readers.
        """
        n = len(self.values)
        probes = 0
        if low is None:
            start = 0
        else:
            start = int(np.searchsorted(self.values, low, side="left"))
            probes += 1
        if high is None:
            end = n
        else:
            end = int(np.searchsorted(self.values, high, side="left"))
            probes += 1
        if counters is not None and probes:
            counters.record_comparisons(probes * binary_search_count(n))
            counters.record_random_access(probes)
        return start, max(start, end)

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary storage currently held (cracker column + rowids)."""
        if not self.materialised:
            return 0
        return int(self.values.nbytes + self.rowids.nbytes)

    @property
    def piece_count(self) -> int:
        """Number of pieces in the cracker index."""
        return self.index.piece_count

    def pieces(self) -> List[Piece]:
        """Pieces of the cracker column (for inspection and tests)."""
        return self.index.pieces()

    # -- the adaptive select operator ----------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Positions (into the base column) of rows with ``low <= value < high``.

        Cracks the cracker column as a side effect — until the column has
        been recognised as :attr:`converged`, after which the answer is a
        pure binary search with no physical reorganisation.  Either bound
        may be ``None`` (unbounded).
        """
        self._count_query()
        if not self.materialised:
            self._materialise(counters)
        if self._converged:
            start, end = self._sorted_range(low, high, counters)
        else:
            start, end = crack_range(
                self.values,
                self.rowids,
                self.index,
                low,
                high,
                counters,
                sort_threshold=self.sort_threshold,
            )
        if counters is not None:
            counters.record_scan(max(0, end - start))
        return self.rowids[start:end].copy()

    def search_values(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Qualifying *values* rather than base positions (cracks as a side effect)."""
        self._count_query()
        if not self.materialised:
            self._materialise(counters)
        if self._converged:
            start, end = self._sorted_range(low, high, counters)
        else:
            start, end = crack_range(
                self.values,
                self.rowids,
                self.index,
                low,
                high,
                counters,
                sort_threshold=self.sort_threshold,
            )
        if counters is not None:
            counters.record_scan(max(0, end - start))
        return self.values[start:end].copy()

    def count(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Number of qualifying rows (cracks as a side effect)."""
        self._count_query()
        if not self.materialised:
            self._materialise(counters)
        if self._converged:
            start, end = self._sorted_range(low, high, counters)
        else:
            start, end = crack_range(
                self.values, self.rowids, self.index, low, high, counters,
                sort_threshold=self.sort_threshold,
            )
        return max(0, end - start)

    # -- maintenance / inspection -----------------------------------------------------

    def crack_at(
        self,
        pivot: float,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Introduce a boundary at ``pivot`` without answering a query.

        Used by stochastic cracking (auxiliary random cuts) and by sideways
        cracking's alignment replay.
        """
        from repro.core.cracking.crack_engine import crack_value

        if not self.materialised:
            self._materialise(counters)
        return crack_value(
            self.values, self.rowids, self.index, pivot, counters,
            sort_threshold=self.sort_threshold,
        )

    def is_fully_sorted(self) -> bool:
        """True when the cracker column has become completely sorted."""
        if not self.materialised:
            return False
        return bool(np.all(self.values[:-1] <= self.values[1:])) if len(self.values) > 1 else True

    def check_invariants(self) -> None:
        """Verify piece bounds and content preservation (test helper)."""
        self.index.check_invariants()
        if not self.materialised:
            return
        if self._fragment:
            # a fragment owns an arbitrary subset of the base rows: its
            # rowids must be distinct and aligned, but they are neither
            # contiguous nor a permutation of the whole base
            assert len(np.unique(self.rowids)) == len(self.rowids), (
                "fragment rowids contain duplicates"
            )
        else:
            assert len(self.values) == len(self._base)
            # content preservation: same multiset of values, rowids a permutation
            assert np.array_equal(np.sort(self.values), np.sort(self._base))
            assert np.array_equal(np.sort(self.rowids), np.arange(len(self._base)))
        # rowid alignment: values[i] == base[rowids[i]]
        assert np.array_equal(self.values, self._base[self.rowids])
        # piece bounds respected
        for piece in self.index.pieces():
            segment = self.values[piece.start : piece.end]
            if piece.low is not None and len(segment):
                assert segment.min() >= piece.low, f"piece {piece} violates low bound"
            if piece.high is not None and len(segment):
                assert segment.max() < piece.high, f"piece {piece} violates high bound"
            if piece.sorted and len(segment) > 1:
                assert np.all(segment[:-1] <= segment[1:]), f"piece {piece} not sorted"
