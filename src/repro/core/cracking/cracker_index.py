"""The cracker index: piece boundaries over a cracker column.

The cracker index is an ordered mapping from key values to positions in the
cracker column.  A boundary ``(value, position)`` asserts the invariant:

    every element before ``position`` is strictly smaller than ``value``, and
    every element at or after ``position`` is greater than or equal to
    ``value``.

Consecutive boundaries delimit *pieces*.  The index additionally tracks, per
piece, whether the piece happens to be fully sorted (pieces become sorted
when a strategy decides to sort small pieces, or when hybrid algorithms sort
merged pieces), because boundaries inside a sorted piece can be introduced
with a binary search instead of a physical crack.

MonetDB implements this structure as an AVL tree; here an ordered pair of
Python lists with :mod:`bisect` gives the same O(log #pieces) navigation,
and the number of pieces is at most two per query so the lists stay small.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Piece:
    """A contiguous region of the cracker column with known value bounds.

    ``low``/``high`` are value bounds: every value in ``[start, end)`` is
    ``>= low`` (if ``low`` is not ``None``) and ``< high`` (if ``high`` is
    not ``None``).  ``sorted`` indicates the region is in non-decreasing
    order.
    """

    start: int
    end: int
    low: Optional[float]
    high: Optional[float]
    sorted: bool = False

    @property
    def size(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = "-inf" if self.low is None else self.low
        hi = "+inf" if self.high is None else self.high
        flag = ", sorted" if self.sorted else ""
        return f"Piece([{self.start}:{self.end}), values [{lo}, {hi}){flag})"


class CrackerIndex:
    """Ordered boundary structure over a cracker column of ``size`` elements."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.size = size
        # boundary i: values[0.._positions[i]) < _values[i] <= values[_positions[i]..)
        self._values: List[float] = []
        self._positions: List[int] = []
        # _sorted_flags[i] describes the piece *before* boundary i;
        # _sorted_flags[len(_values)] describes the last piece.
        self._sorted_flags: List[bool] = [False]

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        """Number of boundaries currently registered."""
        return len(self._values)

    @property
    def piece_count(self) -> int:
        """Number of pieces (boundaries + 1)."""
        return len(self._values) + 1

    @property
    def boundary_values(self) -> List[float]:
        return list(self._values)

    @property
    def boundary_positions(self) -> List[int]:
        return list(self._positions)

    def positions_for_values_above(self, value: float) -> np.ndarray:
        """Boundary positions whose boundary value is strictly above ``value``.

        Returned as an int64 array: these are the pieces a ripple insert or
        delete walks (one relocated element per returned position), and the
        vectorized ripple kernels consume them as a typed buffer.  Boundary
        values are kept sorted, so the filter is a bisect, not a scan.
        """
        index = bisect.bisect_right(self._values, value)
        return np.asarray(self._positions[index:], dtype=np.int64)

    def has_boundary(self, value: float) -> bool:
        """True when a boundary for exactly ``value`` exists."""
        index = bisect.bisect_left(self._values, value)
        return index < len(self._values) and self._values[index] == value

    # -- lookups --------------------------------------------------------------

    def position_of(self, value: float) -> Optional[int]:
        """Position registered for ``value``, or None when not a boundary."""
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            return self._positions[index]
        return None

    def piece_for_value(self, value: float) -> Piece:
        """The piece whose value range contains ``value``.

        A value equal to a boundary belongs to the piece *after* it (the
        boundary's semantics are "values >= boundary start here").
        """
        index = bisect.bisect_right(self._values, value)
        return self._piece_at(index)

    def piece_index_for_value(self, value: float) -> int:
        """Index (0-based) of the piece whose value range contains ``value``."""
        return bisect.bisect_right(self._values, value)

    def piece_at_index(self, index: int) -> Piece:
        """The ``index``-th piece (0-based, left to right)."""
        if not 0 <= index < self.piece_count:
            raise IndexError(
                f"piece index {index} out of range for {self.piece_count} pieces"
            )
        return self._piece_at(index)

    def _piece_at(self, index: int) -> Piece:
        start = self._positions[index - 1] if index > 0 else 0
        end = self._positions[index] if index < len(self._positions) else self.size
        low = self._values[index - 1] if index > 0 else None
        high = self._values[index] if index < len(self._values) else None
        return Piece(start=start, end=end, low=low, high=high,
                     sorted=self._sorted_flags[index])

    def pieces(self) -> List[Piece]:
        """All pieces, left to right."""
        return [self._piece_at(i) for i in range(self.piece_count)]

    def lower_bound_position(self, value: float) -> Optional[int]:
        """Position of the first element >= value, if derivable from boundaries.

        Returns the exact position when ``value`` is a registered boundary,
        otherwise None (a crack is needed to learn it).
        """
        return self.position_of(value)

    # -- mutation --------------------------------------------------------------

    def add_boundary(self, value: float, position: int,
                     left_sorted: Optional[bool] = None,
                     right_sorted: Optional[bool] = None) -> None:
        """Register that the first element >= ``value`` sits at ``position``.

        ``left_sorted`` / ``right_sorted`` override the sortedness flags of
        the two pieces the split produces; by default both inherit the flag
        of the piece that was split.
        """
        if not 0 <= position <= self.size:
            raise ValueError(
                f"boundary position {position} outside column of size {self.size}"
            )
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            existing = self._positions[index]
            if existing != position:
                raise ValueError(
                    f"conflicting boundary for value {value!r}: "
                    f"existing position {existing}, new position {position}"
                )
            if left_sorted is not None:
                self._sorted_flags[index] = left_sorted
            if right_sorted is not None:
                self._sorted_flags[index + 1] = right_sorted
            return
        # monotonicity check against neighbours
        if index > 0 and self._positions[index - 1] > position:
            raise ValueError(
                f"boundary ({value}, {position}) violates ordering against "
                f"({self._values[index - 1]}, {self._positions[index - 1]})"
            )
        if index < len(self._positions) and self._positions[index] < position:
            raise ValueError(
                f"boundary ({value}, {position}) violates ordering against "
                f"({self._values[index]}, {self._positions[index]})"
            )
        inherited = self._sorted_flags[index]
        self._values.insert(index, value)
        self._positions.insert(index, position)
        self._sorted_flags.insert(
            index, inherited if left_sorted is None else left_sorted
        )
        if right_sorted is not None:
            self._sorted_flags[index + 1] = right_sorted

    def mark_piece_sorted(self, piece_index: int, is_sorted: bool = True) -> None:
        """Set the sortedness flag of the ``piece_index``-th piece."""
        if not 0 <= piece_index < self.piece_count:
            raise IndexError(f"piece index {piece_index} out of range")
        self._sorted_flags[piece_index] = is_sorted

    def shift_positions(self, from_position: int, delta: int) -> None:
        """Shift every boundary at or after ``from_position`` by ``delta``.

        Used by the update machinery (ripple insert/delete) and by partial
        cracking when the underlying cracker column grows or shrinks.
        ``size`` is adjusted by the same delta.
        """
        self._positions = [
            p + delta if p >= from_position else p for p in self._positions
        ]
        self.size += delta
        if self.size < 0:
            raise ValueError("shift_positions made the column size negative")
        if any(p < 0 or p > self.size for p in self._positions):
            raise ValueError("shift_positions produced out-of-range boundaries")

    def shift_positions_for_values_above(self, value: float, delta: int) -> None:
        """Shift boundaries whose *value* is strictly greater than ``value``.

        This is the boundary adjustment performed by ripple insertion and
        deletion: when an element enters (``delta=+1``) or leaves
        (``delta=-1``) the piece containing ``value``, every piece to the
        right of it — identified by boundary values above ``value`` — shifts
        by one position.  ``size`` is adjusted by the same delta.
        """
        index = bisect.bisect_right(self._values, value)
        self._positions = self._positions[:index] + [
            p + delta for p in self._positions[index:]
        ]
        self.size += delta
        if self.size < 0:
            raise ValueError("shift made the column size negative")
        if any(p < 0 or p > self.size for p in self._positions):
            raise ValueError("shift produced out-of-range boundaries")

    def mark_pieces_unsorted_from(self, piece_index: int) -> None:
        """Clear the sortedness flag of every piece at or after ``piece_index``."""
        if piece_index < 0:
            piece_index = 0
        for index in range(piece_index, self.piece_count):
            self._sorted_flags[index] = False

    def split_at_boundary(self, value: float) -> Tuple["CrackerIndex", "CrackerIndex"]:
        """Split the index at the existing boundary for ``value``.

        Returns two independent indexes: the left one describes positions
        ``[0, position)`` (every boundary strictly below ``value``), the
        right one positions ``[position, size)`` re-based at zero (every
        boundary strictly above ``value``).  Piece sortedness flags are
        carried over, so no refinement learned by earlier cracks is lost.
        Used by adaptive repartitioning to split a partition at a crack
        boundary without re-reading the data.
        """
        position = self.position_of(value)
        if position is None:
            raise ValueError(f"no boundary for value {value!r} to split at")
        index = bisect.bisect_left(self._values, value)
        left = CrackerIndex(position)
        left._values = self._values[:index]
        left._positions = self._positions[:index]
        left._sorted_flags = self._sorted_flags[: index + 1]
        right = CrackerIndex(self.size - position)
        right._values = self._values[index + 1 :]
        right._positions = [p - position for p in self._positions[index + 1 :]]
        right._sorted_flags = self._sorted_flags[index + 1 :]
        return left, right

    def drop_boundaries_in_position_range(self, start: int, end: int) -> None:
        """Remove boundaries whose position lies in ``(start, end)`` exclusive.

        Used when a contiguous region is extracted (hybrid algorithms move
        qualifying tuples out of initial partitions) — boundaries strictly
        inside the removed region no longer describe anything.
        """
        keep = [
            (v, p, flag)
            for v, p, flag in zip(self._values, self._positions, self._sorted_flags)
            if not (start < p < end)
        ]
        trailing_flag = self._sorted_flags[-1]
        self._values = [v for v, _, _ in keep]
        self._positions = [p for _, p, _ in keep]
        self._sorted_flags = [flag for _, _, flag in keep] + [trailing_flag]

    # -- validation ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when internal invariants are violated (tests)."""
        assert len(self._values) == len(self._positions)
        assert len(self._sorted_flags) == len(self._values) + 1
        assert all(
            self._values[i] < self._values[i + 1] for i in range(len(self._values) - 1)
        ), "boundary values must be strictly increasing"
        assert all(
            self._positions[i] <= self._positions[i + 1]
            for i in range(len(self._positions) - 1)
        ), "boundary positions must be non-decreasing"
        assert all(0 <= p <= self.size for p in self._positions), (
            "boundary positions must lie within the column"
        )
