"""Partial (storage-bounded) cracking.

Sideways/partial cracking (Idreos et al., SIGMOD 2009) observes that the
auxiliary cracking structures need not be complete copies of the base
columns: they can be materialised *partially*, only for the value ranges the
workload actually touches, and dropped again under storage pressure.

:class:`PartialCrackedColumn` models this: the value domain is split into a
configurable number of *fragments*; a fragment's cracker structure (its slice
of the column, plus row identifiers) is materialised the first time a query
touches its value range, is cracked independently from then on, and is
evicted (least-recently-used first) when the total auxiliary storage would
exceed the configured :class:`~repro.columnstore.storage.StorageBudget`.
Queries over ranges whose fragments cannot be materialised (budget too
small) fall back to scanning the base column for that part of the range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.columnstore.column import Column
from repro.columnstore.storage import StorageBudget
from repro.core.cracking.cracked_column import CrackedColumn
from repro.cost.counters import CostCounters


@dataclass
class _Fragment:
    """A materialised cracker structure for one value-range fragment."""

    fragment_index: int
    low: float
    high: float  # half-open [low, high); the last fragment is closed at the top
    cracked: CrackedColumn
    rowids: np.ndarray  # base positions of the rows in this fragment
    last_used: int = 0

    @property
    def nbytes(self) -> int:
        return self.cracked.nbytes + self.rowids.nbytes


class PartialCrackedColumn:
    """Cracking with partially materialised, storage-bounded structures."""

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        budget: Optional[StorageBudget] = None,
        fragments: int = 16,
        sort_threshold: int = 0,
        name: str = "",
    ) -> None:
        if fragments < 1:
            raise ValueError("fragments must be >= 1")
        base = column.values if isinstance(column, Column) else np.asarray(column)
        if len(base) == 0:
            raise ValueError("cannot build a partial cracked column over an empty column")
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.budget = budget or StorageBudget(limit_bytes=None)
        self.fragment_count = int(fragments)
        self.sort_threshold = int(sort_threshold)
        self._domain_low = float(np.min(base))
        self._domain_high = float(np.max(base))
        self._fragments: Dict[int, _Fragment] = {}
        self.queries_processed = 0
        self.evictions = 0
        self.fallback_scans = 0

    def __len__(self) -> int:
        return len(self._base)

    @property
    def materialised_fragments(self) -> int:
        """Number of fragments currently materialised."""
        return len(self._fragments)

    @property
    def nbytes(self) -> int:
        """Auxiliary storage currently held by all materialised fragments."""
        return sum(f.nbytes for f in self._fragments.values())

    # -- fragment geometry ----------------------------------------------------------

    def _fragment_bounds(self, index: int) -> Tuple[float, float]:
        """Value range [low, high) covered by fragment ``index``."""
        span = (self._domain_high - self._domain_low) or 1.0
        width = span / self.fragment_count
        low = self._domain_low + index * width
        high = self._domain_low + (index + 1) * width
        if index == self.fragment_count - 1:
            high = np.nextafter(self._domain_high, np.inf)
        return low, high

    def _fragments_for_range(self, low: Optional[float], high: Optional[float]) -> List[int]:
        """Indices of fragments whose value range intersects [low, high)."""
        query_low = self._domain_low if low is None else max(low, self._domain_low)
        query_high = (
            np.nextafter(self._domain_high, np.inf) if high is None else high
        )
        if query_high <= query_low:
            return []
        indices = []
        for index in range(self.fragment_count):
            fragment_low, fragment_high = self._fragment_bounds(index)
            if fragment_high > query_low and fragment_low < query_high:
                indices.append(index)
        return indices

    # -- materialisation and eviction ---------------------------------------------------

    def _expected_fragment_bytes(self) -> int:
        """Estimated footprint of one fragment (used to avoid futile scans)."""
        expected_rows = max(1, len(self._base) // self.fragment_count)
        return int(expected_rows * (self._base.itemsize + 16))

    def _materialise_fragment(
        self, index: int, counters: Optional[CostCounters]
    ) -> Optional[_Fragment]:
        """Scan the base column and build the fragment's cracker structure.

        Returns ``None`` when the fragment does not fit in the budget even
        after evicting everything else.  When the budget is too small to
        ever hold a typical fragment, the scan is skipped entirely — the
        caller falls back to scanning the base column anyway, so paying an
        additional build scan every query would be pure waste.
        """
        if (
            self.budget.limit_bytes is not None
            and self.budget.limit_bytes < self._expected_fragment_bytes()
        ):
            return None
        low, high = self._fragment_bounds(index)
        mask = (self._base >= low) & (self._base < high)
        if counters is not None:
            counters.record_scan(len(self._base))
            counters.record_comparisons(2 * len(self._base))
        rowids = np.flatnonzero(mask).astype(np.int64)
        values = self._base[rowids]
        needed = int(values.nbytes + 2 * rowids.nbytes)

        while not self.budget.can_allocate(needed) and self._fragments:
            self._evict_one(exclude=index)
        if not self.budget.can_allocate(needed):
            return None

        cracked = CrackedColumn(values, sort_threshold=self.sort_threshold, lazy_copy=False)
        fragment = _Fragment(
            fragment_index=index, low=low, high=high, cracked=cracked, rowids=rowids,
            last_used=self.queries_processed,
        )
        self.budget.reserve(needed)
        if counters is not None:
            counters.record_allocation(needed)
            counters.record_move(len(values))
            counters.record_pieces(1)
        self._fragments[index] = fragment
        return fragment

    def _evict_one(self, exclude: Optional[int] = None) -> None:
        """Drop the least-recently-used fragment (except ``exclude``)."""
        candidates = [f for i, f in self._fragments.items() if i != exclude]
        if not candidates:
            return
        victim = min(candidates, key=lambda f: f.last_used)
        self.budget.release(victim.nbytes)
        del self._fragments[victim.fragment_index]
        self.evictions += 1

    # -- the select operator -----------------------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Base positions of rows with ``low <= value < high``.

        Touched fragments are materialised (subject to the budget) and
        cracked; fragments that cannot be materialised are answered with a
        base-column scan restricted to their value range.
        """
        self.queries_processed += 1
        results: List[np.ndarray] = []
        fallback_ranges: List[Tuple[float, float]] = []
        for index in self._fragments_for_range(low, high):
            fragment_low, fragment_high = self._fragment_bounds(index)
            effective_low = fragment_low if low is None else max(low, fragment_low)
            effective_high = fragment_high if high is None else min(high, fragment_high)
            fragment = self._fragments.get(index)
            if fragment is None:
                fragment = self._materialise_fragment(index, counters)
            if fragment is None:
                # budget too small: remember the range and scan the base
                # column once for all such fragments below
                fallback_ranges.append((effective_low, effective_high))
                continue
            fragment.last_used = self.queries_processed
            local_positions = fragment.cracked.search(
                effective_low, effective_high, counters
            )
            results.append(fragment.rowids[local_positions])
        if fallback_ranges:
            # one shared scan answers every non-materialisable fragment range
            self.fallback_scans += 1
            base = self._base  # hoisted out of the range loop (PF002)
            mask = np.zeros(len(base), dtype=bool)
            for effective_low, effective_high in fallback_ranges:
                mask |= (base >= effective_low) & (base < effective_high)
            if counters is not None:
                counters.record_scan(len(base))
                counters.record_comparisons(2 * len(base))
            results.append(np.flatnonzero(mask).astype(np.int64))
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(results)

    # -- verification ---------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Budget accounting and fragment content checks (test helper)."""
        total = sum(f.nbytes for f in self._fragments.values())
        assert total == self.budget.used_bytes, (
            f"budget accounting drifted: fragments hold {total} bytes, "
            f"budget thinks {self.budget.used_bytes}"
        )
        if self.budget.limit_bytes is not None:
            assert total <= self.budget.limit_bytes
        for fragment in self._fragments.values():
            fragment.cracked.check_invariants()
            values = self._base[fragment.rowids]
            assert np.array_equal(
                np.sort(values), np.sort(fragment.cracked.values)
            ), "fragment content does not match base column slice"
