"""Sideways cracking: self-organising tuple reconstruction (SIGMOD 2009).

Late tuple reconstruction over a *cracked* column is expensive: cracking
permutes the selection column's copy, so fetching the other attributes of
qualifying rows becomes scattered random access.  Sideways cracking solves
this with *cracker maps*: for a selection attribute ``A`` and any other
attribute ``B`` that queries project, the map ``M(A, B)`` stores aligned
copies of both attributes and is cracked **on A**, dragging the B values
along.  After cracking, the B values of qualifying rows are contiguous — no
random access.

Alignment.  All maps of the same selection attribute must stay aligned (the
same physical row order) so multi-attribute projections can simply zip their
contiguous segments.  Because crack-in-two/three is deterministic given the
same initial order and the same pivot sequence, alignment is maintained by
*adaptive alignment*: the map set records the full crack history of ``A``;
each map records how much of that history it has applied, and catches up
lazily when it is next used.  Maps are created lazily, only for attribute
pairs actually queried (partial sideways cracking), optionally under a
storage budget with LRU eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnstore.storage import StorageBudget
from repro.columnstore.table import Table
from repro.core.cracking.cracker_index import CrackerIndex
from repro.core.cracking.crack_engine import crack_range, crack_value
from repro.cost.counters import CostCounters


@dataclass
class CrackerMap:
    """A cracker map M(head, tail): head values cracked, tail dragged along."""

    head_name: str
    tail_name: str
    head_values: np.ndarray
    tail_values: np.ndarray
    rowids: np.ndarray
    index: CrackerIndex
    applied_cracks: int = 0
    last_used: int = 0

    @property
    def nbytes(self) -> int:
        return int(
            self.head_values.nbytes + self.tail_values.nbytes + self.rowids.nbytes
        )


class SidewaysCracker:
    """Cracker-map manager for one table and one selection attribute.

    Parameters
    ----------
    table:
        The base table.
    head:
        The selection attribute all maps of this set are cracked on.
    budget:
        Optional storage budget for the materialised maps (partial sideways
        cracking); least-recently-used maps are evicted under pressure and
        re-materialised on demand.
    """

    def __init__(
        self,
        table: Table,
        head: str,
        budget: Optional[StorageBudget] = None,
        sort_threshold: int = 0,
    ) -> None:
        if head not in table:
            raise KeyError(f"selection attribute {head!r} not in table {table.name!r}")
        self.table = table
        self.head = head
        self.budget = budget or StorageBudget(limit_bytes=None)
        self.sort_threshold = int(sort_threshold)
        # full crack history of the head attribute: sequence of pivots
        self.crack_history: List[float] = []
        self.maps: Dict[str, CrackerMap] = {}
        self.queries_processed = 0
        self.evictions = 0

    # -- map lifecycle -----------------------------------------------------------

    def _create_map(self, tail: str, counters: Optional[CostCounters]) -> CrackerMap:
        """Materialise the cracker map M(head, tail) from the base table."""
        if tail not in self.table:
            raise KeyError(f"attribute {tail!r} not in table {self.table.name!r}")
        head_column = self.table.column(self.head)
        tail_column = self.table.column(tail)
        head_values = head_column.values.copy()
        tail_values = tail_column.values.copy()
        rowids = np.arange(len(head_values), dtype=np.int64)
        needed = int(head_values.nbytes + tail_values.nbytes + rowids.nbytes)
        while not self.budget.can_allocate(needed) and self.maps:
            self._evict_one(exclude=tail)
        self.budget.reserve(needed)
        cracker_map = CrackerMap(
            head_name=self.head,
            tail_name=tail,
            head_values=head_values,
            tail_values=tail_values,
            rowids=rowids,
            index=CrackerIndex(len(head_values)),
            applied_cracks=0,
            last_used=self.queries_processed,
        )
        if counters is not None:
            counters.record_scan(2 * len(head_values))
            counters.record_move(2 * len(head_values))
            counters.record_allocation(needed)
        self.maps[tail] = cracker_map
        return cracker_map

    def _evict_one(self, exclude: Optional[str] = None) -> None:
        candidates = [m for name, m in self.maps.items() if name != exclude]
        if not candidates:
            return
        victim = min(candidates, key=lambda m: m.last_used)
        self.budget.release(victim.nbytes)
        del self.maps[victim.tail_name]
        self.evictions += 1

    def get_map(self, tail: str, counters: Optional[CostCounters] = None) -> CrackerMap:
        """Return the map M(head, tail), creating and aligning it as needed."""
        cracker_map = self.maps.get(tail)
        if cracker_map is None:
            cracker_map = self._create_map(tail, counters)
        self._align(cracker_map, counters)
        cracker_map.last_used = self.queries_processed
        return cracker_map

    # -- adaptive alignment ----------------------------------------------------------

    def _align(self, cracker_map: CrackerMap, counters: Optional[CostCounters]) -> None:
        """Replay missed cracks so this map catches up with the history."""
        # replaying cracks never appends to the history, so its length is
        # loop-invariant (PF004) — measure once, index through a local
        history = self.crack_history
        total = len(history)
        while cracker_map.applied_cracks < total:
            pivot = history[cracker_map.applied_cracks]
            crack_value(
                cracker_map.head_values,
                cracker_map.rowids,
                cracker_map.index,
                pivot,
                counters,
                sort_threshold=0,
                extra_payload=cracker_map.tail_values,
            )
            cracker_map.applied_cracks += 1

    def _record_crack(self, pivot: float) -> None:
        if pivot not in self.crack_history:
            self.crack_history.append(pivot)

    # -- the select/project operator ----------------------------------------------------

    def select_project(
        self,
        low: Optional[float],
        high: Optional[float],
        projections: Sequence[str],
        counters: Optional[CostCounters] = None,
    ) -> Dict[str, np.ndarray]:
        """Select on the head attribute, project ``projections`` sideways.

        Returns a dict column-name -> values of qualifying rows, plus the
        special key ``"__rowids__"`` with the base row positions.  All
        returned arrays are aligned with each other.
        """
        self.queries_processed += 1
        requested = list(projections)
        head_requested = self.head in requested
        tails = [name for name in requested if name != self.head]
        if not tails:
            # a map is still needed to answer the selection; use any other
            # attribute of the table (or fall back to a head-only map).
            others = [n for n in self.table.column_names if n != self.head]
            tails = [others[0]] if others else [self.head]

        # record the cracks this query introduces (for later alignment)
        if low is not None:
            self._record_crack(low)
        if high is not None:
            self._record_crack(high)

        result: Dict[str, np.ndarray] = {}
        rowids_out: Optional[np.ndarray] = None
        head_segment: Optional[np.ndarray] = None
        for tail in tails:
            cracker_map = self.get_map(tail, counters)
            start, end = crack_range(
                cracker_map.head_values,
                cracker_map.rowids,
                cracker_map.index,
                low,
                high,
                counters,
                sort_threshold=self.sort_threshold,
                extra_payload=cracker_map.tail_values,
            )
            if counters is not None:
                counters.record_scan(max(0, end - start))
            if tail in requested:
                result[tail] = cracker_map.tail_values[start:end].copy()
            if rowids_out is None:
                rowids_out = cracker_map.rowids[start:end].copy()
                head_segment = cracker_map.head_values[start:end].copy()
        if head_requested and head_segment is not None:
            result[self.head] = head_segment
        result["__rowids__"] = (
            rowids_out if rowids_out is not None else np.empty(0, dtype=np.int64)
        )
        return result

    def select_project_where(
        self,
        low: Optional[float],
        high: Optional[float],
        extra_predicates: Dict[str, Tuple[Optional[float], Optional[float]]],
        projections: Sequence[str],
        counters: Optional[CostCounters] = None,
    ) -> Dict[str, np.ndarray]:
        """Multi-column selection: crack on head, refine with the other predicates.

        ``extra_predicates`` maps attribute name -> (low, high) half-open
        range.  Refinement uses the sideways maps of those attributes, so no
        random access into the base table is required.
        """
        self.queries_processed += 1
        if low is not None:
            self._record_crack(low)
        if high is not None:
            self._record_crack(high)

        needed_tails = list(dict.fromkeys(list(extra_predicates) + list(projections)))
        needed_tails = [name for name in needed_tails if name != self.head]

        segments: Dict[str, np.ndarray] = {}
        rowids_out: Optional[np.ndarray] = None
        head_segment: Optional[np.ndarray] = None
        for tail in needed_tails:
            cracker_map = self.get_map(tail, counters)
            start, end = crack_range(
                cracker_map.head_values,
                cracker_map.rowids,
                cracker_map.index,
                low,
                high,
                counters,
                sort_threshold=self.sort_threshold,
                extra_payload=cracker_map.tail_values,
            )
            if counters is not None:
                counters.record_scan(max(0, end - start))
            segments[tail] = cracker_map.tail_values[start:end]
            if rowids_out is None:
                rowids_out = cracker_map.rowids[start:end]
                head_segment = cracker_map.head_values[start:end]

        if rowids_out is None:
            return {"__rowids__": np.empty(0, dtype=np.int64)}
        if head_segment is not None:
            segments[self.head] = head_segment

        keep = np.ones(len(rowids_out), dtype=bool)
        for attribute, (attr_low, attr_high) in extra_predicates.items():
            if attribute == self.head:
                continue
            values = segments[attribute]
            if attr_low is not None:
                keep &= values >= attr_low
            if attr_high is not None:
                keep &= values < attr_high
            if counters is not None:
                counters.record_comparisons(len(values))

        result = {name: segments[name][keep].copy() for name in projections}
        result["__rowids__"] = rowids_out[keep].copy()
        return result

    # -- inspection ---------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total auxiliary storage held by all materialised maps."""
        return sum(m.nbytes for m in self.maps.values())

    def map_names(self) -> List[str]:
        """Tail attributes for which a map is currently materialised."""
        return sorted(self.maps)

    def check_invariants(self) -> None:
        """Verify alignment and content preservation of every map (tests)."""
        base_head = self.table.column(self.head).values
        for cracker_map in self.maps.values():
            cracker_map.index.check_invariants()
            base_tail = self.table.column(cracker_map.tail_name).values
            assert np.array_equal(
                cracker_map.head_values, base_head[cracker_map.rowids]
            ), f"map {cracker_map.tail_name}: head values misaligned with rowids"
            assert np.array_equal(
                cracker_map.tail_values, base_tail[cracker_map.rowids]
            ), f"map {cracker_map.tail_name}: tail values misaligned with rowids"
        # all fully-aligned maps must share the same physical row order
        aligned = [
            m for m in self.maps.values()
            if m.applied_cracks == len(self.crack_history)
        ]
        for first, second in zip(aligned, aligned[1:]):
            assert np.array_equal(first.rowids, second.rowids), (
                "aligned cracker maps diverged in row order"
            )
