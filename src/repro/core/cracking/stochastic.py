"""Stochastic cracking: robustness against adversarial query patterns.

Plain cracking only ever cracks at the query bounds.  Under adversarial (for
example, strictly sequential) workloads every query then re-partitions one
huge piece by shaving a sliver off its edge, so per-query cost stays close
to a scan for a very long time.  Stochastic cracking (Halim et al., PVLDB
2012 — discussed in the tutorial's optimisation/robustness section) injects
additional *random* cuts so large pieces keep shrinking regardless of where
the query bounds fall.

Two classic flavours are provided:

* **DDC (data-driven center)**: before cracking at a query bound, recursively
  crack oversized pieces at the median-ish value (approximated by the value
  at the middle position) until the piece containing the bound is small.
* **DDR (data-driven random)**: the same, but the auxiliary cut uses a value
  picked at a random position of the piece.

``MDD1R`` (the paper's recommended default) is approximated by performing a
single random cut per oversized piece per query, which preserves its key
property: per-query overhead stays bounded while large unindexed pieces
cannot survive long.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.columnstore.column import Column
from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.crack_engine import crack_value
from repro.cost.counters import CostCounters

#: how many alternate random positions a DDR/MDD1R cut may probe before
#: declaring a piece uncuttable (a drawn pivot equal to the piece minimum —
#: or an already existing boundary — does not prove the piece degenerate,
#: it may simply be an unlucky draw)
_AUX_PIVOT_ATTEMPTS = 8


class StochasticCrackedColumn(CrackedColumn):
    """Cracked column with auxiliary random cuts on oversized pieces.

    Parameters
    ----------
    variant:
        ``"ddr"`` (random pivot, default), ``"ddc"`` (centre pivot) or
        ``"mdd1r"`` (one random cut per oversized piece per query).
    size_threshold_fraction:
        A piece is "oversized" when it is larger than this fraction of the
        column; oversized pieces touched by a query receive auxiliary cuts.
    seed:
        Seed of the private random generator (for reproducible runs).
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        variant: str = "ddr",
        size_threshold_fraction: float = 0.01,
        seed: Optional[int] = 0,
        sort_threshold: int = 0,
        counters: Optional[CostCounters] = None,
        lazy_copy: bool = True,
        name: str = "",
    ) -> None:
        variant = variant.lower()
        if variant not in ("ddr", "ddc", "mdd1r"):
            raise ValueError(f"unknown stochastic cracking variant {variant!r}")
        if not 0.0 < size_threshold_fraction <= 1.0:
            raise ValueError("size_threshold_fraction must be in (0, 1]")
        super().__init__(
            column,
            sort_threshold=sort_threshold,
            counters=counters,
            lazy_copy=lazy_copy,
            name=name,
        )
        self.variant = variant
        self.size_threshold_fraction = size_threshold_fraction
        self._rng = np.random.default_rng(seed)

    # -- auxiliary cuts ------------------------------------------------------------

    def _piece_size_threshold(self) -> int:
        return max(2, int(len(self) * self.size_threshold_fraction))

    def _auxiliary_pivot(self, start: int, end: int) -> float:
        """Pick the auxiliary cut value for the piece [start, end)."""
        if self.variant == "ddc":
            position = (start + end) // 2
        else:  # ddr and mdd1r use a random position
            position = int(self._rng.integers(start, end))
        return float(self.values[position])

    def _shrink_piece_containing(
        self,
        bound: float,
        counters: Optional[CostCounters],
        recursive: bool,
    ) -> None:
        """Apply auxiliary cuts to the piece containing ``bound``."""
        threshold = self._piece_size_threshold()
        # the centre pivot of DDC is deterministic: retrying it would only
        # re-derive the same value, so a single attempt suffices there
        attempts = 1 if self.variant == "ddc" else _AUX_PIVOT_ATTEMPTS
        while True:
            piece = self.index.piece_for_value(bound)
            if piece.sorted or piece.size <= threshold:
                return
            # A pivot at the piece minimum (or an existing boundary) cannot
            # cut the piece — but for the random variants one unlucky draw
            # does not prove the piece degenerate: probe a bounded number
            # of alternate positions before giving up on this piece.
            pivot = None
            piece_low = piece.low  # hoisted out of the probe loop (PF002)
            for _ in range(attempts):
                candidate = self._auxiliary_pivot(piece.start, piece.end)
                if piece_low is not None and candidate <= piece_low:
                    continue
                if self.index.has_boundary(candidate):
                    continue
                pivot = candidate
                break
            if pivot is None:
                return
            crack_value(
                self.values, self.rowids, self.index, pivot, counters,
                sort_threshold=self.sort_threshold,
            )
            if not recursive:
                return

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Range selection with auxiliary stochastic cuts before the query cracks."""
        if not self.materialised:
            self._materialise(counters)
        # a converged (fully sorted) column takes the pure binary-search
        # path in the parent class; auxiliary cuts could only mutate it
        if not self._converged:
            recursive = self.variant in ("ddr", "ddc")
            if low is not None:
                self._shrink_piece_containing(low, counters, recursive)
            if high is not None:
                self._shrink_piece_containing(high, counters, recursive)
        return super().search(low, high, counters)
