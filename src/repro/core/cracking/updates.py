"""Cracking under updates (Idreos, Kersten, Manegold; SIGMOD 2007).

Updates are handled "in the same adaptive philosophy" as cracking itself:
inserts and deletes are queued in pending structures and merged into the
cracker column *on demand*, only when a query's range touches the pending
values, and only the touched values are merged.  The physical merge uses
*ripple* movements: to make room for (or close the hole left by) one value
inside a piece, exactly one element per subsequent piece is relocated, so
the cost is proportional to the number of pieces — not to the column size.

Two merging policies are provided:

* ``"ripple"`` — merge every qualifying pending update before answering
  (the default, complete-merge policy);
* ``"gradual"`` — merge at most ``merge_batch`` pending updates *in total*
  per query — inserts and deletes share the one budget and are served
  round-robin, so neither class can starve the other — and answer the
  remainder directly from the pending structures, spreading the
  maintenance cost over more queries.

Cost accounting follows the convention established for the cracking
kernels: whenever the pending structures are non-empty, a query is charged
one comparison per pending entry for deciding which updates qualify — the
scan happens whether or not anything qualifies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis_tools.guards import charges, typed_kernel
from repro.columnstore.column import Column
from repro.core.cracking.cracker_index import CrackerIndex
from repro.core.cracking.crack_engine import crack_range, crack_value
from repro.cost.counters import CostCounters

#: work-queue tags for the interleaved merge batch (int8 kind buffer)
_KIND_INSERT, _KIND_DELETE = 0, 1


@typed_kernel(buffers={"values": "numeric", "rowids": "int64",
                       "boundary_positions": "int64"},
              mutates=("values", "rowids"))
@charges("movements", "random_accesses")
def ripple_insert_value(
    values: np.ndarray,
    rowids: np.ndarray,
    length: int,
    value: float,
    rowid: int,
    boundary_positions: np.ndarray,
    counters: Optional[CostCounters],
) -> None:
    """Ripple one value into ``values[:length]``, one move per later piece.

    ``boundary_positions`` are the boundaries whose value lies strictly
    above ``value`` — the pieces the hole ripples through, right to left,
    starting from the spare slot at ``values[length]``.  The per-piece
    walk is expressed as one gather/scatter over the move chain: the
    chain positions are pairwise distinct, so every source is read before
    any step would overwrite it, which is exactly what fancy indexing
    (gather first, then scatter) computes.
    """
    # the walk visits each distinct boundary position once, skipping a
    # boundary already equal to the hole (only possible at the array end)
    chain = np.unique(boundary_positions[boundary_positions != length])[::-1]
    if len(chain):
        destinations = np.concatenate(
            [np.array([length], dtype=np.int64), chain[:-1]]
        )
        values[destinations] = values[chain]
        rowids[destinations] = rowids[chain]
        hole = int(chain[-1])
    else:
        hole = length
    values[hole] = value
    rowids[hole] = rowid
    moves = len(chain)
    if counters is not None:
        counters.record_move(moves + 1)
        counters.record_random_access(moves + 1)


@typed_kernel(buffers={"values": "numeric", "rowids": "int64",
                       "boundary_positions": "int64"},
              mutates=("values", "rowids"))
@charges("movements", "random_accesses")
def ripple_delete_position(
    values: np.ndarray,
    rowids: np.ndarray,
    position: int,
    length: int,
    boundary_positions: np.ndarray,
    counters: Optional[CostCounters],
) -> int:
    """Close the hole at ``position`` by rippling it right, piece by piece.

    Each piece after the target (delimited by ``boundary_positions``, the
    boundaries strictly above the deleted value, plus the column end)
    donates its last element into the hole; the hole ends up at
    ``length - 1``.  Vectorized as one gather/scatter over the chain of
    per-piece last positions, which are pairwise distinct and ascending.
    Returns the number of moves performed.
    """
    piece_lasts = np.unique(
        np.concatenate(
            [boundary_positions, np.array([length], dtype=np.int64)]
        )
    ) - 1
    # a piece whose last element *is* the hole donates nothing (only
    # possible for the target piece itself)
    piece_lasts = piece_lasts[piece_lasts != position]
    if len(piece_lasts):
        destinations = np.concatenate(
            [np.array([position], dtype=np.int64), piece_lasts[:-1]]
        )
        values[destinations] = values[piece_lasts]
        rowids[destinations] = rowids[piece_lasts]
    moves = len(piece_lasts)
    if counters is not None:
        counters.record_move(moves)
        counters.record_random_access(moves)
    return moves


class UpdatableCrackedColumn:
    """A cracked column that accepts inserts and deletes between queries.

    Row identifiers: rows of the original column keep their position
    (shifted by ``rowid_base``) as identifier; rows inserted later receive
    fresh identifiers starting at ``rowid_base + len(original column)``, or
    an identifier supplied by the caller.  :meth:`search` returns
    identifiers of all *visible* qualifying rows (original minus deleted
    plus inserted).

    ``rowid_base`` lets a partitioned owner number each shard's original
    rows in global (base-column) coordinates, so per-partition answers need
    no shifting and externally assigned insert identifiers stay globally
    unique.
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        policy: str = "ripple",
        merge_batch: int = 16,
        sort_threshold: int = 0,
        rowid_base: int = 0,
        name: str = "",
    ) -> None:
        if policy not in ("ripple", "gradual"):
            raise ValueError(f"unknown update policy {policy!r}")
        if merge_batch < 1:
            raise ValueError("merge_batch must be >= 1")
        base = column.values if isinstance(column, Column) else np.asarray(column)
        self.name = name or (column.name if isinstance(column, Column) else "")
        self.policy = policy
        self.merge_batch = int(merge_batch)
        self.sort_threshold = int(sort_threshold)
        self.rowid_base = int(rowid_base)

        self._initial_size = len(base)
        # None = original rows are the contiguous range
        # [rowid_base, rowid_base + initial size); a repartitioning split
        # scatters a fragment's original rows, so fragments carry them as an
        # explicit set instead (see :meth:`split_at`)
        self._original_rowids: Optional[set] = None
        self._next_rowid = self.rowid_base + len(base)
        # cracker column storage with spare capacity for ripple inserts
        capacity = max(16, int(len(base) * 1.2))
        self._values = np.empty(capacity, dtype=np.asarray(base).dtype
                                if np.asarray(base).dtype.kind in "if" else np.float64)
        self._values[: len(base)] = base
        self._rowids = np.empty(capacity, dtype=np.int64)
        self._rowids[: len(base)] = np.arange(
            self.rowid_base, self.rowid_base + len(base), dtype=np.int64
        )
        self._length = len(base)
        self.index = CrackerIndex(len(base))

        # pending structures
        self._pending_insert_values: List[float] = []
        self._pending_insert_rowids: List[int] = []
        # mirror of _pending_insert_rowids for O(1) membership tests
        self._pending_insert_rowid_set: set = set()
        self._pending_delete_rowids: Dict[int, float] = {}
        # values of rows inserted at any point (needed to delete them later)
        self._inserted_values: Dict[int, float] = {}

        self.queries_processed = 0
        self.merges_performed = 0

    # -- public state -----------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The live region of the cracker column (read-only view)."""
        return self._values[: self._length]

    @property
    def rowids(self) -> np.ndarray:
        """Row identifiers aligned with :attr:`values` (read-only view)."""
        return self._rowids[: self._length]

    def __len__(self) -> int:
        """Number of currently visible rows (merged + pending inserts).

        Every queued delete targets a merged row (deleting a still-pending
        insert cancels it instead), so the pending-delete count is exactly
        the number of merged-but-deleted rows — O(1), which matters because
        adaptive repartitioning polls partition sizes on every update.
        """
        return (self._length + len(self._pending_insert_values)
                - len(self._pending_delete_rowids))

    @property
    def pending_inserts(self) -> int:
        return len(self._pending_insert_values)

    @property
    def pending_deletes(self) -> int:
        return len(self._pending_delete_rowids)

    @property
    def piece_count(self) -> int:
        return self.index.piece_count

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary storage (cracker column, rowids, pending queues)."""
        pending = (len(self._pending_insert_values) + len(self._pending_delete_rowids)
                   + len(self._inserted_values)) * 16
        return int(self._values.nbytes + self._rowids.nbytes + pending)

    def _is_original(self, rowid: int) -> bool:
        """True when ``rowid`` identifies a row of the original column."""
        if self._original_rowids is not None:
            return rowid in self._original_rowids
        return self.rowid_base <= rowid < self.rowid_base + self._initial_size

    def _is_merged(self, rowid: int) -> bool:
        """True when ``rowid`` currently lives in the cracker column."""
        if self._is_original(rowid):
            return True
        return (rowid in self._inserted_values
                and rowid not in self._pending_insert_rowid_set)

    def knows_rowid(self, rowid: int) -> bool:
        """True when ``rowid`` belongs to this column (original or a live insert).

        Used by the partitioned owner to route deletes of inserted rows;
        rowids of fully removed rows (cancelled pending inserts, merged
        deletes) are unknown again.
        """
        return self._is_original(rowid) or rowid in self._inserted_values

    def value_of(self, rowid: int) -> float:
        """Current value of a visible row (original or inserted)."""
        if rowid in self._pending_delete_rowids:
            raise KeyError(f"row {rowid} has been deleted")
        if self._is_original(rowid):
            position = np.flatnonzero(self.rowids == rowid)
            if len(position) == 0:
                raise KeyError(f"row {rowid} not found")
            return float(self.values[position[0]])
        try:
            return self._inserted_values[rowid]
        except KeyError:
            raise KeyError(f"row {rowid} not found") from None

    # -- updates -----------------------------------------------------------------

    def check_insertable(self, value: float) -> None:
        """Raise TypeError when ``value`` cannot be stored in this column."""
        if np.issubdtype(self._values.dtype, np.integer) and float(value) != int(value):
            raise TypeError(
                f"cannot insert non-integer value {value!r} into an integer column"
            )

    def insert(self, value: float, counters: Optional[CostCounters] = None,
               rowid: Optional[int] = None) -> int:
        """Queue the insertion of ``value``; returns its new row identifier.

        ``rowid`` lets an external owner (the partitioned column) assign
        globally unique identifiers; it must be fresh and outside the
        original row range.
        """
        self.check_insertable(value)
        if rowid is None:
            rowid = self._next_rowid
            self._next_rowid += 1
        else:
            rowid = int(rowid)
            if self._is_original(rowid) or rowid in self._inserted_values:
                raise ValueError(f"row identifier {rowid} is already in use")
            self._next_rowid = max(self._next_rowid, rowid + 1)
        self._pending_insert_values.append(float(value))
        self._pending_insert_rowids.append(rowid)
        self._pending_insert_rowid_set.add(rowid)
        self._inserted_values[rowid] = float(value)
        if counters is not None:
            counters.record_move(1)
        return rowid

    def delete(self, rowid: int, counters: Optional[CostCounters] = None) -> None:
        """Queue the deletion of the row identified by ``rowid``."""
        if rowid in self._pending_delete_rowids:
            return
        if not self._is_original(rowid) and rowid not in self._inserted_values:
            raise KeyError(f"unknown row identifier {rowid}")
        # deleting a still-pending insert simply cancels it
        if rowid in self._pending_insert_rowid_set:
            position = self._pending_insert_rowids.index(rowid)
            self._pending_insert_rowids.pop(position)
            self._pending_insert_values.pop(position)
            self._pending_insert_rowid_set.discard(rowid)
            del self._inserted_values[rowid]
            return
        value = (
            self._inserted_values[rowid]
            if rowid in self._inserted_values
            else None
        )
        if value is None:
            # original row: its value can move around the cracker column but
            # never changes, so look it up from the base positions once.
            positions = np.flatnonzero(self.rowids == rowid)
            if len(positions) == 0:
                raise KeyError(f"unknown row identifier {rowid}")
            value = float(self.values[positions[0]])
        self._pending_delete_rowids[rowid] = value
        if counters is not None:
            counters.record_move(1)

    def update(self, rowid: int, new_value: float,
               counters: Optional[CostCounters] = None) -> int:
        """Update = delete old row + insert new value; returns the new rowid.

        The new value is validated before the delete is queued, so a
        rejected value leaves the old row untouched.
        """
        self.check_insertable(new_value)
        self.delete(rowid, counters)
        return self.insert(new_value, counters)

    # -- repartitioning support -----------------------------------------------------

    @classmethod
    def _from_parts(
        cls,
        values: np.ndarray,
        rowids: np.ndarray,
        original_rowids: Iterable[int],
        index: CrackerIndex,
        *,
        policy: str,
        merge_batch: int,
        sort_threshold: int,
        next_rowid: int,
        pending_inserts: Sequence[Tuple[float, int]],
        pending_deletes: Dict[int, float],
        inserted_values: Dict[int, float],
        merges_performed: int = 0,
        name: str = "",
    ) -> "UpdatableCrackedColumn":
        """Build a column fragment from pre-cracked state (split/merge helper).

        ``values``/``rowids`` are the merged cracker arrays (globally
        numbered), ``original_rowids`` the subset of rowids that identify
        original base rows, and ``index`` must describe exactly
        ``len(values)`` elements.
        """
        if len(values) != len(rowids) or index.size != len(values):
            raise ValueError("fragment arrays and index sizes must agree")
        fragment = cls.__new__(cls)
        fragment.name = name
        fragment.policy = policy
        fragment.merge_batch = int(merge_batch)
        fragment.sort_threshold = int(sort_threshold)
        fragment.rowid_base = 0
        fragment._initial_size = 0
        fragment._original_rowids = set(int(r) for r in original_rowids)
        fragment._next_rowid = int(next_rowid)
        capacity = max(16, int(len(values) * 1.2))
        fragment._values = np.empty(capacity, dtype=values.dtype)
        fragment._values[: len(values)] = values
        fragment._rowids = np.empty(capacity, dtype=np.int64)
        fragment._rowids[: len(rowids)] = rowids
        fragment._length = len(values)
        fragment.index = index
        fragment._pending_insert_values = [float(v) for v, _ in pending_inserts]
        fragment._pending_insert_rowids = [int(r) for _, r in pending_inserts]
        fragment._pending_insert_rowid_set = set(fragment._pending_insert_rowids)
        fragment._pending_delete_rowids = dict(pending_deletes)
        fragment._inserted_values = dict(inserted_values)
        fragment.queries_processed = 0
        fragment.merges_performed = int(merges_performed)
        return fragment

    def _original_rowid_subset(self, rowids: np.ndarray) -> set:
        """The original-row identifiers among ``rowids``."""
        if self._original_rowids is not None:
            return self._original_rowids.intersection(rowids.tolist())
        mask = (rowids >= self.rowid_base) & (
            rowids < self.rowid_base + self._initial_size
        )
        return set(rowids[mask].tolist())

    @charges("comparisons", "movements", "allocations")
    def split_at(
        self, pivot: float, counters: Optional[CostCounters] = None
    ) -> Tuple["UpdatableCrackedColumn", "UpdatableCrackedColumn"]:
        """Split into two independent columns around ``pivot``.

        The merged region is cracked at ``pivot`` (values below it on the
        left), the cracker index is cut at the resulting boundary, and every
        pending insert/delete is routed to the side its value belongs to —
        so the union of the two fragments is indistinguishable from the
        parent: same visible rows, same rowids, same refinement.  The parent
        must not be used afterwards.
        """
        pivot = float(pivot)
        length = self._length
        mid = crack_value(
            self._values[:length], self._rowids[:length], self.index, pivot,
            counters, sort_threshold=self.sort_threshold,
        )
        left_index, right_index = self.index.split_at_boundary(pivot)
        left_values = self._values[:mid].copy()
        left_rowids = self._rowids[:mid].copy()
        right_values = self._values[mid:length].copy()
        right_rowids = self._rowids[mid:length].copy()
        if counters is not None:
            # carving the two fragments out touches every merged element
            counters.record_move(length)
            counters.record_allocation(
                left_values.nbytes + left_rowids.nbytes
                + right_values.nbytes + right_rowids.nbytes
            )
            pending_total = (
                len(self._pending_insert_values) + len(self._pending_delete_rowids)
            )
            if pending_total:
                counters.record_comparisons(pending_total)
        # pending updates and live inserted rows are routed by value, which
        # matches the crack: merged rows with value < pivot sit on the left
        left_pending_inserts, right_pending_inserts = [], []
        for value, rowid in zip(self._pending_insert_values,
                                self._pending_insert_rowids):
            side = left_pending_inserts if value < pivot else right_pending_inserts
            # routing a pending entry re-queues it, it does not touch the
            # cracker arrays (the record_move(length) above covers the carve)
            side.append((value, rowid))  # reproperf: ignore[PF001, PF003]
        left_pending_deletes = {
            r: v for r, v in self._pending_delete_rowids.items() if v < pivot
        }
        right_pending_deletes = {
            r: v for r, v in self._pending_delete_rowids.items() if v >= pivot
        }
        left_inserted = {
            r: v for r, v in self._inserted_values.items() if v < pivot
        }
        right_inserted = {
            r: v for r, v in self._inserted_values.items() if v >= pivot
        }
        common = dict(
            policy=self.policy, merge_batch=self.merge_batch,
            sort_threshold=self.sort_threshold, next_rowid=self._next_rowid,
        )
        left = UpdatableCrackedColumn._from_parts(
            left_values, left_rowids, self._original_rowid_subset(left_rowids),
            left_index, pending_inserts=left_pending_inserts,
            pending_deletes=left_pending_deletes, inserted_values=left_inserted,
            merges_performed=self.merges_performed,
            name=f"{self.name}<{pivot}" if self.name else "", **common,
        )
        right = UpdatableCrackedColumn._from_parts(
            right_values, right_rowids, self._original_rowid_subset(right_rowids),
            right_index, pending_inserts=right_pending_inserts,
            pending_deletes=right_pending_deletes, inserted_values=right_inserted,
            name=f"{self.name}>={pivot}" if self.name else "", **common,
        )
        return left, right

    @classmethod
    @charges("movements", "allocations")
    def merged(
        cls,
        left: "UpdatableCrackedColumn",
        right: "UpdatableCrackedColumn",
        pivot: float,
        counters: Optional[CostCounters] = None,
    ) -> "UpdatableCrackedColumn":
        """Concatenate two *value-disjoint* columns back into one.

        Every value of ``left`` (merged or pending) must be strictly below
        ``pivot`` and every value of ``right`` at or above it; the merged
        column keeps one boundary at ``pivot`` (the per-side refinement is
        deliberately dropped — merges target cold partitions, whose
        refinement is no longer paying for itself).
        """
        pivot = float(pivot)
        values = np.concatenate([left.values, right.values])
        rowids = np.concatenate([left.rowids, right.rowids])
        index = CrackerIndex(len(values))
        if len(left.values) and len(right.values):
            index.add_boundary(pivot, len(left.values))
        if counters is not None:
            counters.record_move(len(values))
            counters.record_allocation(values.nbytes + rowids.nbytes)
        original = left._original_rowid_subset(left.rowids)
        original |= right._original_rowid_subset(right.rowids)
        pending_inserts = list(
            zip(left._pending_insert_values, left._pending_insert_rowids)
        ) + list(zip(right._pending_insert_values, right._pending_insert_rowids))
        pending_deletes = dict(left._pending_delete_rowids)
        pending_deletes.update(right._pending_delete_rowids)
        inserted = dict(left._inserted_values)
        inserted.update(right._inserted_values)
        return cls._from_parts(
            values, rowids, original, index,
            policy=left.policy, merge_batch=left.merge_batch,
            sort_threshold=left.sort_threshold,
            next_rowid=max(left._next_rowid, right._next_rowid),
            pending_inserts=pending_inserts, pending_deletes=pending_deletes,
            inserted_values=inserted,
            merges_performed=left.merges_performed + right.merges_performed,
            name=left.name or right.name,
        )

    # -- ripple kernels -------------------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._length + extra
        if needed <= len(self._values):
            return
        new_capacity = max(needed, 2 * len(self._values))
        grown_values = np.empty(new_capacity, dtype=self._values.dtype)
        grown_values[: self._length] = self._values[: self._length]
        grown_rowids = np.empty(new_capacity, dtype=np.int64)
        grown_rowids[: self._length] = self._rowids[: self._length]
        self._values = grown_values
        self._rowids = grown_rowids

    def _ripple_insert_one(self, value: float, rowid: int,
                           counters: Optional[CostCounters]) -> None:
        """Physically place one value into its piece via ripple shifts."""
        self._ensure_capacity(1)
        target_index = self.index.piece_index_for_value(value)
        # content of target piece and of every piece after it will change order
        self.index.mark_pieces_unsorted_from(target_index)
        ripple_insert_value(
            self._values, self._rowids, self._length, value, rowid,
            self.index.positions_for_values_above(value), counters,
        )
        self._length += 1
        self.index.shift_positions_for_values_above(value, +1)

    @charges("scans")
    def _ripple_delete_one(self, rowid: int, value: float,
                           counters: Optional[CostCounters]) -> bool:
        """Physically remove one row from its piece via ripple shifts."""
        target_index = self.index.piece_index_for_value(value)
        target = self.index.piece_at_index(target_index)
        segment_rowids = self._rowids[target.start : target.end]
        offsets = np.flatnonzero(segment_rowids == rowid)
        if counters is not None:
            counters.record_scan(target.size)
        if len(offsets) == 0:
            return False
        position = target.start + int(offsets[0])
        self.index.mark_pieces_unsorted_from(target_index)
        # fill the hole with the last element of the target piece, then let
        # the hole ripple right through every subsequent piece.
        ripple_delete_position(
            self._values, self._rowids, position, self._length,
            self.index.positions_for_values_above(value), counters,
        )
        self._length -= 1
        self.index.shift_positions_for_values_above(value, -1)
        return True

    # -- merge-on-demand -----------------------------------------------------------

    def _qualifying_pending(self, low, high) -> Tuple[np.ndarray, np.ndarray]:
        """Indices of pending inserts / rowids of pending deletes in range.

        Both sides are computed with vectorized range masks over the
        pending values; only the merged-membership filter on the delete
        side stays per-candidate (a set lookup per qualifying delete).
        """
        pending_values = np.asarray(self._pending_insert_values,
                                    dtype=np.float64)
        mask = np.ones(len(pending_values), dtype=bool)
        if low is not None:
            mask &= pending_values >= low
        if high is not None:
            mask &= pending_values < high
        insert_indices = np.flatnonzero(mask)

        delete_count = len(self._pending_delete_rowids)
        if delete_count:
            candidate_rowids = np.fromiter(
                self._pending_delete_rowids.keys(), dtype=np.int64,
                count=delete_count,
            )
            candidate_values = np.fromiter(
                self._pending_delete_rowids.values(), dtype=np.float64,
                count=delete_count,
            )
            delete_mask = np.ones(delete_count, dtype=bool)
            if low is not None:
                delete_mask &= candidate_values >= low
            if high is not None:
                delete_mask &= candidate_values < high
            delete_rowids = np.asarray(
                [r for r in candidate_rowids[delete_mask].tolist()
                 if self._is_merged(r)],
                dtype=np.int64,
            )
        else:
            delete_rowids = np.empty(0, dtype=np.int64)
        return insert_indices, delete_rowids

    def _merge_pending(self, low, high, counters: Optional[CostCounters]) -> Tuple[List[int], List[int]]:
        """Merge qualifying pending updates (policy dependent).

        Returns ``(unmerged_insert_indices, unmerged_delete_rowids)`` — the
        qualifying pending updates that were *not* merged (only non-empty
        under the gradual policy) so the caller can still answer correctly.

        The qualifying inserts and deletes are interleaved round-robin into
        one typed work queue (an int8 kind buffer and an int64 item buffer,
        built with strided assignments) and dispatched by
        :meth:`_apply_ripple_batch`.
        """
        pending_total = (
            len(self._pending_insert_values) + len(self._pending_delete_rowids)
        )
        if counters is not None and pending_total:
            # deciding what qualifies scans every pending entry, whether or
            # not anything ends up qualifying
            counters.record_comparisons(pending_total)
        insert_indices, delete_rowids = self._qualifying_pending(low, high)

        # round-robin interleave: insert[0], delete[0], insert[1], ... with
        # the longer queue's tail appended once the shorter runs out
        insert_count = len(insert_indices)
        delete_count = len(delete_rowids)
        paired = min(insert_count, delete_count)
        kinds = np.empty(insert_count + delete_count, dtype=np.int8)
        items = np.empty(insert_count + delete_count, dtype=np.int64)
        kinds[0 : 2 * paired : 2] = _KIND_INSERT
        kinds[1 : 2 * paired : 2] = _KIND_DELETE
        items[0 : 2 * paired : 2] = insert_indices[:paired]
        items[1 : 2 * paired : 2] = delete_rowids[:paired]
        if insert_count > paired:
            kinds[2 * paired :] = _KIND_INSERT
            items[2 * paired :] = insert_indices[paired:]
        elif delete_count > paired:
            kinds[2 * paired :] = _KIND_DELETE
            items[2 * paired :] = delete_rowids[paired:]

        remaining_deletes = self._apply_ripple_batch(kinds, items, counters)

        unmerged_inserts = [
            i for i in range(len(self._pending_insert_values))
            if self._in_range(self._pending_insert_values[i], low, high)
        ]
        return unmerged_inserts, remaining_deletes

    @typed_kernel(buffers={"kinds": "int8", "items": "int64"})
    def _apply_ripple_batch(
        self,
        kinds: np.ndarray,
        items: np.ndarray,
        counters: Optional[CostCounters],
    ) -> List[int]:
        """Dispatch one interleaved batch of pending updates to the ripple kernels.

        Deliberately per-element (the one reasoned TB001 baseline entry):
        each queue entry is a distinct physical reorganisation whose target
        piece depends on the value being merged — and changes the piece
        layout the next entry sees — so the dispatch cannot be batched
        without replaying the ripple dependency chain.  The per-piece data
        movement inside each step *is* vectorized (the module-level ripple
        kernels).

        Under the gradual policy one ``merge_batch`` budget is shared by
        inserts and deletes, served round-robin — at most ``merge_batch``
        pending updates in total are merged per query, and a steady stream
        of qualifying inserts cannot starve the pending deletes (or vice
        versa), so both queues always drain.  Returns the qualifying
        deletes left unmerged.
        """
        budget = None
        if self.policy == "gradual":
            budget = self.merge_batch

        merged_insert_indices: List[int] = []
        remaining_deletes: List[int] = []
        pending_deletes = self._pending_delete_rowids  # hoisted (PF002)
        for position in range(len(kinds)):
            kind = int(kinds[position])
            item = int(items[position])
            if budget is not None and budget <= 0:
                if kind == _KIND_DELETE:
                    remaining_deletes.append(item)
                continue
            if kind == _KIND_INSERT:
                value = self._pending_insert_values[item]
                rowid = self._pending_insert_rowids[item]
                self._ripple_insert_one(value, rowid, counters)
                merged_insert_indices.append(item)
                self.merges_performed += 1
            else:
                value = pending_deletes[item]
                if not self._ripple_delete_one(item, value, counters):
                    remaining_deletes.append(item)
                    continue
                del pending_deletes[item]
                # a merged delete of an inserted row removes the row for
                # good: forget its value so the rowid becomes unknown (and
                # the bookkeeping doesn't grow with every insert ever made)
                self._inserted_values.pop(item, None)
                self.merges_performed += 1
            if budget is not None:
                budget -= 1
        for pending_index in sorted(merged_insert_indices, reverse=True):
            self._pending_insert_values.pop(pending_index)
            rowid = self._pending_insert_rowids.pop(pending_index)
            self._pending_insert_rowid_set.discard(rowid)
        return remaining_deletes

    @staticmethod
    def _in_range(value, low, high) -> bool:
        if low is not None and value < low:
            return False
        if high is not None and value >= high:
            return False
        return True

    # -- the select operator ----------------------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Row identifiers of visible rows with ``low <= value < high``.

        Merges qualifying pending updates first (per the configured policy),
        then cracks and answers from the cracker column.
        """
        self.queries_processed += 1
        unmerged_inserts, unmerged_deletes = self._merge_pending(low, high, counters)

        start, end = crack_range(
            self._values[: self._length],
            self._rowids[: self._length],
            self.index,
            low,
            high,
            counters,
            sort_threshold=self.sort_threshold,
        )
        result_rowids = self._rowids[start:end]
        if counters is not None:
            counters.record_scan(max(0, end - start))

        # under the gradual policy some qualifying updates may still be pending
        extra = [self._pending_insert_rowids[i] for i in unmerged_inserts]
        exclude = set(unmerged_deletes)
        exclude.update(
            r for r, v in self._pending_delete_rowids.items()
            if self._in_range(v, low, high)
        )
        if exclude:
            mask = ~np.isin(result_rowids, np.fromiter(exclude, dtype=np.int64))
            result_rowids = result_rowids[mask]
        if extra:
            result_rowids = np.concatenate(
                [result_rowids, np.asarray(extra, dtype=np.int64)]
            )
        return result_rowids.copy() if isinstance(result_rowids, np.ndarray) else result_rowids

    # -- verification -----------------------------------------------------------------

    def visible_values(self) -> np.ndarray:
        """Multiset of currently visible values (reference for tests)."""
        merged_mask = ~np.isin(
            self.rowids,
            np.fromiter(self._pending_delete_rowids.keys(), dtype=np.int64)
            if self._pending_delete_rowids
            else np.empty(0, dtype=np.int64),
        )
        merged = self.values[merged_mask]
        pending = np.asarray(self._pending_insert_values, dtype=merged.dtype)
        return np.concatenate([merged, pending]) if len(pending) else merged.copy()

    def check_invariants(self) -> None:
        """Verify piece bounds and boundary consistency (test helper)."""
        self.index.check_invariants()
        assert self.index.size == self._length
        for piece in self.index.pieces():
            segment = self._values[piece.start : piece.end]
            if len(segment) == 0:
                continue
            if piece.low is not None:
                assert segment.min() >= piece.low, f"{piece} violates low bound"
            if piece.high is not None:
                assert segment.max() < piece.high, f"{piece} violates high bound"
