"""Hybrid adaptive indexing (Idreos, Manegold, Kuno, Graefe; PVLDB 2011).

Database cracking and adaptive merging sit at two ends of a spectrum:
cracking does almost no work per query (great first query, slow
convergence), adaptive merging does a lot (expensive first queries, fast
convergence).  The hybrid algorithms explore the space in between by
choosing, independently, how much structure to impose on

* the **initial partitions** the column is split into on the first query
  (``crack`` = none, organised lazily by cracking; ``sort`` = fully sorted
  runs; ``radix`` = range-clustered), and
* the **final partition** that qualifying tuples are moved into
  (``crack`` = value-disjoint pieces cracked further on demand;
  ``sort`` = every merged piece is sorted on arrival).

The canonical algorithms are named by those two choices: hybrid crack-crack
(HCC), crack-sort (HCS), crack-radix (HCR), sort-sort (HSS ≈ adaptive
merging in main memory), radix-radix (HRR), ...
"""

from repro.core.hybrids.hybrid_index import HybridIndex
from repro.core.hybrids.initial_partitions import (
    CrackedInitialPartition,
    InitialPartition,
    RadixInitialPartition,
    SortedInitialPartition,
)
from repro.core.hybrids.final_partition import FinalPartition

__all__ = [
    "HybridIndex",
    "InitialPartition",
    "CrackedInitialPartition",
    "SortedInitialPartition",
    "RadixInitialPartition",
    "FinalPartition",
]
