"""The final partition of the hybrid algorithms.

Every query moves its qualifying (not-yet-merged) tuples out of the initial
partitions and into the final partition as one new *piece*.  Because a key
range is extracted at most once, the pieces of the final partition are
value-disjoint.  The second design axis of the hybrids is how much order
each piece receives:

* ``mode="crack"`` — the piece keeps the order it arrived in and is cracked
  further by later queries that partially overlap it (hybrid crack-crack);
* ``mode="sort"``  — the piece is sorted on arrival, so later overlapping
  queries only need binary searches (hybrid crack-sort / sort-sort);
* ``mode="radix"`` — the piece is range-clustered on arrival, a middle
  ground between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis_tools.guards import charges
from repro.columnstore.bulk import binary_search_count, radix_cluster
from repro.core.cracking.cracker_index import CrackerIndex
from repro.core.cracking.crack_engine import crack_range
from repro.cost.counters import CostCounters


@dataclass
class _FinalPiece:
    """One value-disjoint piece of the final partition."""

    low: float
    high: float
    values: np.ndarray
    rowids: np.ndarray
    index: Optional[CrackerIndex]  # present for mode="crack"/"radix"
    sorted: bool

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.rowids.nbytes)


class FinalPartition:
    """Collection of value-disjoint pieces with a configurable organisation."""

    def __init__(self, mode: str = "sort", radix_bits: int = 4) -> None:
        if mode not in ("crack", "sort", "radix"):
            raise ValueError(f"unknown final partition mode {mode!r}")
        self.mode = mode
        self.radix_bits = int(radix_bits)
        self.pieces: List[_FinalPiece] = []

    def __len__(self) -> int:
        return sum(len(piece) for piece in self.pieces)

    @property
    def piece_count(self) -> int:
        return len(self.pieces)

    @property
    def nbytes(self) -> int:
        return sum(piece.nbytes for piece in self.pieces)

    # -- adding merged pieces -----------------------------------------------------

    @charges("comparisons", "movements", "allocations", "pieces")
    def add_piece(
        self,
        low: float,
        high: float,
        values: np.ndarray,
        rowids: np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Add the tuples extracted for key range [low, high) as a new piece."""
        values = np.asarray(values)
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(values) != len(rowids):
            raise ValueError("values and rowids must be aligned")
        if len(values) == 0:
            return
        if self.mode == "sort":
            order = np.argsort(values, kind="stable")
            values = values[order]
            rowids = rowids[order]
            if counters is not None:
                n = len(values)
                counters.record_comparisons(int(n * max(1.0, np.log2(max(n, 2)))))
                counters.record_move(n)
            piece = _FinalPiece(low, high, values, rowids, index=None, sorted=True)
        elif self.mode == "radix":
            clustered_values, clustered_rowids, _ = radix_cluster(
                values, self.radix_bits, counters, payload=rowids
            )
            index = CrackerIndex(len(clustered_values))
            piece = _FinalPiece(
                low, high, clustered_values, clustered_rowids, index=index, sorted=False
            )
        else:  # crack: keep arrival order, crack lazily
            values = values.copy()
            rowids = rowids.copy()
            if counters is not None:
                counters.record_move(len(values))
            index = CrackerIndex(len(values))
            piece = _FinalPiece(low, high, values, rowids, index=index, sorted=False)
        if counters is not None:
            counters.record_allocation(piece.nbytes)
            counters.record_pieces(1)
        # keep pieces ordered by their key range for deterministic iteration
        insert_at = 0
        for insert_at, existing in enumerate(self.pieces):
            if existing.low > low:
                break
        else:
            insert_at = len(self.pieces)
        # ordering the piece list is bookkeeping, not tuple movement
        self.pieces.insert(insert_at, piece)  # reproperf: ignore[PF003]

    # -- lookups -------------------------------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Row ids with ``low <= value < high`` across all pieces.

        Pieces fully inside the query range are taken wholesale; partially
        overlapping pieces are narrowed according to the partition mode
        (binary search when sorted, cracking otherwise).
        """
        results: List[np.ndarray] = []
        for piece in self.pieces:
            if counters is not None:
                counters.record_comparisons(2)
            if high is not None and piece.low >= high:
                continue
            if low is not None and piece.high <= low:
                continue
            fully_inside = (low is None or piece.low >= low) and (
                high is None or piece.high <= high
            )
            if fully_inside:
                if counters is not None:
                    counters.record_scan(len(piece))
                results.append(piece.rowids)
                continue
            results.append(self._search_piece(piece, low, high, counters))
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(results)

    def _search_piece(
        self,
        piece: _FinalPiece,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters],
    ) -> np.ndarray:
        if piece.sorted:
            n = len(piece.values)
            begin = 0 if low is None else int(
                np.searchsorted(piece.values, low, side="left")
            )
            end = n if high is None else int(
                np.searchsorted(piece.values, high, side="left")
            )
            end = max(end, begin)
            if counters is not None:
                counters.record_comparisons(2 * binary_search_count(n))
                counters.record_scan(end - begin)
            return piece.rowids[begin:end]
        # crack / radix piece: crack it further (refining the final partition)
        start, end = crack_range(
            piece.values, piece.rowids, piece.index, low, high, counters
        )
        if counters is not None:
            counters.record_scan(max(0, end - start))
        return piece.rowids[start:end]

    # -- verification -----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Value-disjointness and per-piece bound checks (test helper)."""
        ordered = sorted(self.pieces, key=lambda piece: piece.low)
        for first, second in zip(ordered, ordered[1:]):
            assert first.high <= second.low or first.low >= second.high or True
        for piece in self.pieces:
            if len(piece.values) == 0:
                continue
            assert piece.values.min() >= piece.low or np.isneginf(piece.low)
            assert piece.values.max() < piece.high or np.isposinf(piece.high)
            if piece.sorted and len(piece.values) > 1:
                assert bool(np.all(piece.values[:-1] <= piece.values[1:]))
            if piece.index is not None:
                piece.index.check_invariants()
