"""The hybrid adaptive index: initial-partition mode × final-partition mode.

:class:`HybridIndex` implements the algorithm family of PVLDB 2011.  The
first query splits the column into initial partitions (organised per
``initial_mode``); every query moves the not-yet-merged part of its key
range from the initial partitions into the final partition (organised per
``final_mode``) and answers from the final partition plus the tuples just
moved.

Canonical instances (exposed through the strategy registry):

====================  =============  ===========
name                  initial_mode   final_mode
====================  =============  ===========
hybrid-crack-crack    crack          crack
hybrid-crack-sort     crack          sort
hybrid-crack-radix    crack          radix
hybrid-sort-sort      sort           sort
hybrid-radix-radix    radix          radix
====================  =============  ===========

``hybrid-sort-sort`` is the main-memory formulation of adaptive merging;
``hybrid-crack-crack`` is closest to plain cracking but with bounded piece
sizes from the start.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Union

import numpy as np

from repro.analysis_tools.guards import guarded_by
from repro.columnstore.column import Column
from repro.core.hybrids.final_partition import FinalPartition
from repro.core.hybrids.initial_partitions import (
    CrackedInitialPartition,
    InitialPartition,
    RadixInitialPartition,
    SortedInitialPartition,
)
from repro.core.merging.intervals import IntervalSet
from repro.cost.counters import CostCounters


@guarded_by(queries_processed="_stats_lock")
class HybridIndex:
    """Adaptive index combining one initial-partition and one final-partition mode."""

    INITIAL_MODES = ("crack", "sort", "radix")
    FINAL_MODES = ("crack", "sort", "radix")

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        initial_mode: str = "crack",
        final_mode: str = "sort",
        partition_size: Optional[int] = None,
        radix_bits: int = 4,
        name: str = "",
    ) -> None:
        if initial_mode not in self.INITIAL_MODES:
            raise ValueError(f"unknown initial_mode {initial_mode!r}")
        if final_mode not in self.FINAL_MODES:
            raise ValueError(f"unknown final_mode {final_mode!r}")
        base = column.values if isinstance(column, Column) else np.asarray(column)
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.initial_mode = initial_mode
        self.final_mode = final_mode
        self.partition_size = partition_size
        self.radix_bits = int(radix_bits)
        self.partitions: List[InitialPartition] = []
        self.final = FinalPartition(mode=final_mode, radix_bits=radix_bits)
        self.merged_ranges = IntervalSet()
        self.queries_processed = 0
        self.initialized = False
        # guards the shared query counter: a converged hybrid serves
        # concurrent readers, whose increments must not be lost
        self._stats_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._base)

    @property
    def nbytes(self) -> int:
        """Auxiliary storage of initial partitions plus the final partition."""
        return sum(p.nbytes for p in self.partitions) + self.final.nbytes

    @property
    def fully_merged(self) -> bool:
        """True when every tuple has moved into the final partition."""
        return self.initialized and all(len(p) == 0 for p in self.partitions)

    @property
    def read_only_under_selection(self) -> bool:
        """True when a search can no longer reorganise any physical state.

        Requires convergence on both axes: every tuple has been merged into
        the final partition (no gap extraction left) *and* every final
        piece is sorted, so lookups are binary searches.  Pieces organised
        by ``final_mode`` "crack"/"radix" keep cracking on partial overlap
        and never satisfy the second condition.
        """
        return self.fully_merged and all(
            piece.sorted for piece in self.final.pieces
        )

    # -- initialization --------------------------------------------------------------

    def _initialize(self, counters: Optional[CostCounters]) -> None:
        n = len(self._base)
        size = self.partition_size or max(1, int(np.sqrt(n))) if n else 1
        mode = self.initial_mode  # hoisted out of the partition loop (PF002)
        for start in range(0, n, size):
            end = min(start + size, n)
            values = self._base[start:end]
            rowids = np.arange(start, end, dtype=np.int64)
            if mode == "crack":
                partition: InitialPartition = CrackedInitialPartition(
                    values, rowids, counters
                )
            elif mode == "sort":
                partition = SortedInitialPartition(values, rowids, counters)
            else:
                partition = RadixInitialPartition(
                    values, rowids, bits=self.radix_bits, counters=counters
                )
            self.partitions.append(partition)
        self.initialized = True

    # -- the select operator ------------------------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Base positions of rows with ``low <= value < high`` (merging as a side effect)."""
        with self._stats_lock:
            self.queries_processed += 1
        if not self.initialized:
            self._initialize(counters)
        if len(self._base) == 0:
            return np.empty(0, dtype=np.int64)

        # Once every initial partition has drained there are no gaps left
        # to extract: skip the merged-range bookkeeping entirely so that a
        # converged hybrid (sorted final pieces) is a pure read and can
        # serve concurrent queries without racing on the interval set.
        if not self.fully_merged:
            effective_low = (
                float(low) if low is not None else float(np.min(self._base))
            )
            effective_high = (
                float(high)
                if high is not None
                else float(np.nextafter(np.max(self._base), np.inf))
            )

            if not self.merged_ranges.covers(effective_low, effective_high):
                for gap_low, gap_high in self.merged_ranges.uncovered(
                    effective_low, effective_high
                ):
                    self._merge_gap(gap_low, gap_high, counters)
                self.merged_ranges.add(effective_low, effective_high)

        return self.final.search(low, high, counters)

    def _merge_gap(
        self, gap_low: float, gap_high: float, counters: Optional[CostCounters]
    ) -> None:
        """Move [gap_low, gap_high) from every initial partition into the final one."""
        values_parts: List[np.ndarray] = []
        rowid_parts: List[np.ndarray] = []
        for partition in self.partitions:
            if len(partition) == 0:
                continue
            values, rowids = partition.extract_range(gap_low, gap_high, counters)
            if len(values):
                values_parts.append(values)
                rowid_parts.append(rowids)
        if not values_parts:
            return
        self.final.add_piece(
            gap_low,
            gap_high,
            np.concatenate(values_parts),
            np.concatenate(rowid_parts),
            counters,
        )

    # -- verification --------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Content preservation across partitions and the final partition (tests)."""
        if not self.initialized:
            return
        remaining = sum(len(p) for p in self.partitions)
        assert remaining + len(self.final) == len(self._base), (
            "tuples lost or duplicated during hybrid merging"
        )
        self.final.check_invariants()
        self.merged_ranges.check_invariants()
