"""Initial partitions of the hybrid algorithms.

On the first query a hybrid algorithm splits the column into partitions of
roughly equal size.  How much order each partition gets *at creation time*
is the first design axis:

* ``CrackedInitialPartition`` — no order at creation; the partition is
  cracked on demand, and qualifying tuples are carved out of it.
* ``SortedInitialPartition`` — the partition is fully sorted at creation
  (a sorted run), so extraction is two binary searches.
* ``RadixInitialPartition`` — the partition is range-clustered into
  ``2**bits`` buckets at creation; extraction touches only the overlapping
  buckets, each of which is cracked on demand.

All three expose the same interface: ``extract_range(low, high)`` removes
and returns the qualifying ``(values, rowids)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analysis_tools.guards import charges
from repro.columnstore.bulk import binary_search_count, radix_cluster
from repro.core.cracking.cracker_index import CrackerIndex
from repro.core.cracking.crack_engine import crack_range
from repro.cost.counters import CostCounters


class InitialPartition:
    """Interface of an initial partition (see module docstring)."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def nbytes(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def extract_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError


class CrackedInitialPartition(InitialPartition):
    """An initial partition organised lazily by cracking."""

    def __init__(self, values: np.ndarray, rowids: np.ndarray,
                 counters: Optional[CostCounters] = None) -> None:
        self.values = np.array(values, copy=True)
        self.rowids = np.array(rowids, copy=True)
        self.index = CrackerIndex(len(self.values))
        if counters is not None:
            counters.record_scan(len(self.values))
            counters.record_move(len(self.values))
            counters.record_allocation(self.values.nbytes + self.rowids.nbytes)
            counters.record_pieces(1)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.rowids.nbytes)

    @charges("movements")
    def extract_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Crack the partition on [low, high), then carve the middle out."""
        if len(self.values) == 0:
            return np.empty(0, dtype=self.values.dtype), np.empty(0, dtype=np.int64)
        start, end = crack_range(
            self.values, self.rowids, self.index, low, high, counters
        )
        if start >= end:
            return np.empty(0, dtype=self.values.dtype), np.empty(0, dtype=np.int64)
        extracted_values = self.values[start:end].copy()
        extracted_rowids = self.rowids[start:end].copy()
        removed = end - start
        # physically remove the extracted region and fix up the boundaries
        self.values = np.concatenate([self.values[:start], self.values[end:]])
        self.rowids = np.concatenate([self.rowids[:start], self.rowids[end:]])
        self.index.drop_boundaries_in_position_range(start, end)
        self.index.shift_positions(end, -removed)
        if counters is not None:
            counters.record_move(removed)
        return extracted_values, extracted_rowids


class SortedInitialPartition(InitialPartition):
    """An initial partition fully sorted at creation time (a sorted run)."""

    def __init__(self, values: np.ndarray, rowids: np.ndarray,
                 counters: Optional[CostCounters] = None) -> None:
        order = np.argsort(values, kind="stable")
        self.values = np.asarray(values)[order]
        self.rowids = np.asarray(rowids)[order]
        if counters is not None:
            n = len(self.values)
            counters.record_scan(n)
            counters.record_move(n)
            counters.record_comparisons(int(n * max(1.0, np.log2(max(n, 2)))))
            counters.record_allocation(self.values.nbytes + self.rowids.nbytes)
            counters.record_pieces(1)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.rowids.nbytes)

    @charges("scans", "comparisons", "movements", "random_accesses")
    def extract_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Binary-search the sorted partition and carve the range out."""
        n = len(self.values)
        if n == 0:
            return np.empty(0, dtype=self.values.dtype), np.empty(0, dtype=np.int64)
        begin = 0 if low is None else int(np.searchsorted(self.values, low, side="left"))
        end = n if high is None else int(np.searchsorted(self.values, high, side="left"))
        end = max(end, begin)
        if counters is not None:
            counters.record_comparisons(2 * binary_search_count(n))
            counters.record_random_access(2)
        if begin == end:
            return np.empty(0, dtype=self.values.dtype), np.empty(0, dtype=np.int64)
        extracted_values = self.values[begin:end].copy()
        extracted_rowids = self.rowids[begin:end].copy()
        self.values = np.concatenate([self.values[:begin], self.values[end:]])
        self.rowids = np.concatenate([self.rowids[:begin], self.rowids[end:]])
        if counters is not None:
            counters.record_scan(end - begin)
            counters.record_move(end - begin)
        return extracted_values, extracted_rowids


class RadixInitialPartition(InitialPartition):
    """An initial partition range-clustered into radix buckets at creation.

    Each bucket covers a contiguous value range; extraction cracks only the
    buckets overlapping the query range, so creation is cheaper than a full
    sort while extraction is cheaper than cracking one monolithic partition.
    """

    def __init__(self, values: np.ndarray, rowids: np.ndarray, bits: int = 4,
                 counters: Optional[CostCounters] = None) -> None:
        if bits < 1:
            raise ValueError("radix bits must be >= 1")
        clustered_values, clustered_rowids, offsets = radix_cluster(
            np.asarray(values), bits, counters, payload=np.asarray(rowids)
        )
        self.buckets: List[CrackedInitialPartition] = []
        for index in range(len(offsets) - 1):
            start, end = int(offsets[index]), int(offsets[index + 1])
            bucket = CrackedInitialPartition.__new__(CrackedInitialPartition)
            bucket.values = clustered_values[start:end].copy()
            bucket.rowids = clustered_rowids[start:end].copy()
            bucket.index = CrackerIndex(end - start)
            self.buckets.append(bucket)
        if counters is not None:
            counters.record_allocation(
                clustered_values.nbytes + clustered_rowids.nbytes
            )
            counters.record_pieces(len(self.buckets))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)

    @property
    def nbytes(self) -> int:
        return sum(bucket.nbytes for bucket in self.buckets)

    @charges("comparisons")
    def extract_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Extract from every bucket whose value range overlaps the query."""
        values_parts: List[np.ndarray] = []
        rowid_parts: List[np.ndarray] = []
        for bucket in self.buckets:
            if len(bucket) == 0:
                continue
            bucket_min = bucket.values.min()
            bucket_max = bucket.values.max()
            if counters is not None:
                counters.record_comparisons(2)
            if (high is not None and bucket_min >= high) or (
                low is not None and bucket_max < low
            ):
                continue
            extracted_values, extracted_rowids = bucket.extract_range(
                low, high, counters
            )
            if len(extracted_values):
                # collecting the per-bucket blocks is bookkeeping; the data
                # movement is charged inside bucket.extract_range
                values_parts.append(extracted_values)  # reproperf: ignore[PF003]
                rowid_parts.append(extracted_rowids)  # reproperf: ignore[PF003]
        if not values_parts:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        return np.concatenate(values_parts), np.concatenate(rowid_parts)
