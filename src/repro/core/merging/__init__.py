"""Adaptive merging (Graefe & Kuno, SMDB/EDBT 2010).

Adaptive merging follows the same continuous-adaptation principle as
database cracking but reacts *more actively*: the first query partitions the
column into sorted runs (cheap, sequential, partitioned-B-tree style); every
subsequent query extracts its qualifying key range from all runs and merges
it into a final, fully optimised partition.  Key ranges never queried are
never merged; key ranges already merged are served at full-index cost with
no further overhead.  The more-active reorganisation converges to the full
index in far fewer queries than cracking, at the price of more expensive
early queries — the trade-off the hybrid algorithms then explore.

Modules
-------
``intervals``
    Bookkeeping of which key ranges have been fully merged.
``runs``
    Sorted run creation and range extraction from runs.
``partitioned_btree``
    A partitioned B-tree: one artificial leading key per partition/run, used
    as the disk-oriented realisation of run storage.
``adaptive_merge``
    :class:`AdaptiveMergingIndex`: the adaptive select operator.
"""

from repro.core.merging.adaptive_merge import AdaptiveMergingIndex
from repro.core.merging.intervals import IntervalSet
from repro.core.merging.partitioned_btree import PartitionedBTree
from repro.core.merging.runs import SortedRun, create_runs

__all__ = [
    "AdaptiveMergingIndex",
    "IntervalSet",
    "PartitionedBTree",
    "SortedRun",
    "create_runs",
]
