"""The adaptive merging select operator.

Behaviour (Graefe & Kuno, EDBT 2010):

* The **first query** performs run generation: the column is cut into
  sorted runs (partitioned-B-tree partitions) and the query's own range is
  immediately merged into the final partition.
* **Every subsequent query** first serves whatever part of its range is
  already in the final partition (two binary searches), then extracts the
  still-unmerged part of the range from every run (binary searches + bulk
  moves) and merges it into the final partition.
* Once a key range has been merged, queries inside it touch only the final
  partition — the adaptation overhead for that range is gone.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Union

import numpy as np

from repro.analysis_tools.guards import charges, guarded_by
from repro.columnstore.bulk import binary_search_count
from repro.columnstore.column import Column
from repro.core.merging.intervals import IntervalSet
from repro.core.merging.runs import SortedRun, create_runs
from repro.cost.counters import CostCounters


@guarded_by(queries_processed="_stats_lock")
class AdaptiveMergingIndex:
    """Adaptive merging over sorted runs with a growing final partition."""

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        run_size: Optional[int] = None,
        name: str = "",
    ) -> None:
        base = column.values if isinstance(column, Column) else np.asarray(column)
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.run_size = run_size
        self.runs: List[SortedRun] = []
        self.final_values = np.empty(0, dtype=base.dtype)
        self.final_rowids = np.empty(0, dtype=np.int64)
        self.merged_ranges = IntervalSet()
        self.queries_processed = 0
        self.initialized = False
        # guards the shared query counter: a fully merged index serves
        # concurrent readers, whose increments must not be lost
        self._stats_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._base)

    @property
    def nbytes(self) -> int:
        """Auxiliary storage: runs plus the final partition."""
        run_bytes = sum(run.nbytes for run in self.runs)
        return int(run_bytes + self.final_values.nbytes + self.final_rowids.nbytes)

    @property
    def run_count(self) -> int:
        """Number of non-empty runs remaining."""
        return sum(1 for run in self.runs if len(run) > 0)

    @property
    def fully_merged(self) -> bool:
        """True once every tuple has moved into the final partition."""
        return self.initialized and all(len(run) == 0 for run in self.runs)

    # -- initialization --------------------------------------------------------------

    def _initialize(self, counters: Optional[CostCounters]) -> None:
        self.runs = create_runs(self._base, run_size=self.run_size, counters=counters)
        self.initialized = True

    # -- merging -----------------------------------------------------------------------

    @charges("comparisons", "movements")
    def _merge_range(
        self,
        low: float,
        high: float,
        counters: Optional[CostCounters],
    ) -> None:
        """Extract [low, high) from every run and merge into the final partition.

        Callers must pass a range that contains no already-merged values
        (the search path iterates over the *uncovered* gaps of the query
        range), so the extracted block is contiguous in value space with
        respect to the final partition and can be spliced in at one spot.
        """
        extracted_values: List[np.ndarray] = []
        extracted_rowids: List[np.ndarray] = []
        for run in self.runs:
            if len(run) == 0:
                continue
            values, rowids = run.extract_range(low, high, counters)
            if len(values):
                extracted_values.append(values)
                extracted_rowids.append(rowids)
        if not extracted_values:
            return
        new_values = np.concatenate(extracted_values)
        new_rowids = np.concatenate(extracted_rowids)
        order = np.argsort(new_values, kind="stable")
        new_values = new_values[order]
        new_rowids = new_rowids[order]
        if counters is not None:
            k = len(new_values)
            counters.record_comparisons(int(k * max(1.0, np.log2(max(k, 2)))))
            counters.record_move(k)

        if len(self.final_values) == 0:
            self.final_values = new_values
            self.final_rowids = new_rowids
        else:
            # splice the new sorted block into the sorted final partition
            insert_at = int(np.searchsorted(self.final_values, new_values[0], side="left"))
            self.final_values = np.concatenate(
                [self.final_values[:insert_at], new_values, self.final_values[insert_at:]]
            )
            self.final_rowids = np.concatenate(
                [self.final_rowids[:insert_at], new_rowids, self.final_rowids[insert_at:]]
            )
            if counters is not None:
                counters.record_move(len(new_values))
                counters.record_comparisons(binary_search_count(len(self.final_values)))

    # -- the select operator --------------------------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Base positions of rows with ``low <= value < high`` (merging as a side effect)."""
        with self._stats_lock:
            self.queries_processed += 1
        if not self.initialized:
            self._initialize(counters)

        # Once every run has drained into the final partition there is
        # nothing left to merge: skip the merged-range bookkeeping entirely
        # so the search is a pure read (concurrent queries may then fan out
        # over the index without racing on the interval set).
        if not self.fully_merged:
            effective_low = float(low) if low is not None else float(np.min(self._base)) if len(self._base) else 0.0
            effective_high = (
                float(high)
                if high is not None
                else float(np.nextafter(np.max(self._base), np.inf)) if len(self._base) else 0.0
            )

            if not self.merged_ranges.covers(effective_low, effective_high):
                for gap_low, gap_high in self.merged_ranges.uncovered(
                    effective_low, effective_high
                ):
                    self._merge_range(gap_low, gap_high, counters)
                self.merged_ranges.add(effective_low, effective_high)

        n = len(self.final_values)
        begin = 0 if low is None else int(np.searchsorted(self.final_values, low, side="left"))
        end = n if high is None else int(np.searchsorted(self.final_values, high, side="left"))
        end = max(end, begin)
        if counters is not None:
            counters.record_comparisons(2 * binary_search_count(n))
            counters.record_scan(end - begin)
        return self.final_rowids[begin:end].copy()

    def search_values(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Qualifying values in sorted order (merging as a side effect)."""
        positions = self.search(low, high, counters)
        return self._base[positions]

    # -- verification ----------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Content preservation and sortedness checks (test helper)."""
        if not self.initialized:
            return
        total = len(self.final_values) + sum(len(run) for run in self.runs)
        assert total == len(self._base), "tuples lost or duplicated during merging"
        assert bool(
            np.all(self.final_values[:-1] <= self.final_values[1:])
        ) if len(self.final_values) > 1 else True, "final partition not sorted"
        for run in self.runs:
            assert run.is_sorted(), "run lost its sortedness"
        # rowid alignment
        if len(self.final_values):
            assert np.array_equal(
                self._base[self.final_rowids], self.final_values
            ), "final partition misaligned with base column"
        self.merged_ranges.check_invariants()
