"""Disjoint half-open interval bookkeeping.

Adaptive merging must remember which key ranges have already been merged
into the final partition so that (a) fully-merged ranges are served without
touching the runs at all ("overhead ... disappears when a range has been
fully-optimized") and (b) convergence can be measured structurally.
"""

from __future__ import annotations

from typing import List, Tuple


class IntervalSet:
    """A set of disjoint half-open intervals ``[low, high)`` over floats."""

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    @property
    def intervals(self) -> List[Tuple[float, float]]:
        """The disjoint intervals, sorted by lower bound (copy)."""
        return list(self._intervals)

    def is_empty(self) -> bool:
        return not self._intervals

    def total_length(self) -> float:
        """Sum of interval lengths."""
        return sum(high - low for low, high in self._intervals)

    def add(self, low: float, high: float) -> None:
        """Add ``[low, high)``, merging with overlapping or adjacent intervals."""
        if high < low:
            raise ValueError(f"invalid interval: high ({high}) < low ({low})")
        if high == low:
            return
        merged: List[Tuple[float, float]] = []
        placed = False
        for existing_low, existing_high in self._intervals:
            if existing_high < low or existing_low > high:
                merged.append((existing_low, existing_high))
            else:
                low = min(low, existing_low)
                high = max(high, existing_high)
        for index, (existing_low, _) in enumerate(merged):
            if existing_low > low:
                merged.insert(index, (low, high))
                placed = True
                break
        if not placed:
            merged.append((low, high))
        self._intervals = merged

    def covers(self, low: float, high: float) -> bool:
        """True when ``[low, high)`` is entirely inside one stored interval."""
        if high <= low:
            return True
        for existing_low, existing_high in self._intervals:
            if existing_low <= low and high <= existing_high:
                return True
        return False

    def contains_point(self, value: float) -> bool:
        """True when ``value`` lies inside some stored interval."""
        return any(low <= value < high for low, high in self._intervals)

    def uncovered(self, low: float, high: float) -> List[Tuple[float, float]]:
        """Sub-intervals of ``[low, high)`` not covered by the set."""
        if high <= low:
            return []
        gaps: List[Tuple[float, float]] = []
        cursor = low
        for existing_low, existing_high in self._intervals:
            if existing_high <= cursor:
                continue
            if existing_low >= high:
                break
            if existing_low > cursor:
                gaps.append((cursor, min(existing_low, high)))
            cursor = max(cursor, existing_high)
            if cursor >= high:
                break
        if cursor < high:
            gaps.append((cursor, high))
        return gaps

    def check_invariants(self) -> None:
        """Disjointness and ordering checks (test helper)."""
        for (low1, high1), (low2, high2) in zip(self._intervals, self._intervals[1:]):
            assert low1 < high1, "degenerate interval stored"
            assert low2 < high2, "degenerate interval stored"
            assert high1 < low2 or (high1 <= low2), "intervals overlap or are unsorted"
            assert low1 <= low2, "intervals are unsorted"
