"""Partitioned B-tree: the storage substrate of adaptive merging.

A partitioned B-tree (Graefe) stores multiple partitions inside a single
B-tree by prefixing every key with an artificial partition identifier.  Run
generation creates one partition per sorted run; merging moves records from
high-numbered partitions into partition 0 (the "final" partition).  When
only partition 0 remains, the tree is equivalent to a conventional fully
optimised B-tree index.

This implementation keeps one :class:`~repro.indexes.btree.BTree` whose keys
are ``(partition_id, value)`` tuples, giving exactly the single-structure
behaviour of the original design, while the adaptive-merging operator keeps
its own lighter-weight run representation for bulk extraction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cost.counters import CostCounters
from repro.indexes.btree import BTree


class PartitionedBTree:
    """A B-tree whose keys are prefixed with an artificial partition number."""

    FINAL_PARTITION = 0

    def __init__(self, order: int = 64) -> None:
        self._tree = BTree(order=order)
        self._partition_sizes: dict = {}

    # -- loading ---------------------------------------------------------------

    def load_partition(
        self,
        partition_id: int,
        sorted_values: np.ndarray,
        rowids: np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Bulk-append one partition (values must already be sorted)."""
        if partition_id < 0:
            raise ValueError("partition ids must be non-negative")
        if len(sorted_values) != len(rowids):
            raise ValueError("values and rowids must be aligned")
        for value, rowid in zip(sorted_values.tolist(), rowids.tolist()):
            self._tree.insert((partition_id, value), rowid, counters)
        self._partition_sizes[partition_id] = (
            self._partition_sizes.get(partition_id, 0) + len(sorted_values)
        )

    # -- queries -----------------------------------------------------------------

    def search_partition_range(
        self,
        partition_id: int,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Row ids with ``low <= value < high`` inside one partition."""
        low_key = (partition_id, -np.inf if low is None else low)
        high_key = (partition_id, np.inf if high is None else high)
        return self._tree.search_range(low_key, high_key, counters)

    def search_all_partitions(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Row ids in range across every partition (probes each partition)."""
        results = [
            self.search_partition_range(partition_id, low, high, counters)
            for partition_id in sorted(self._partition_sizes)
        ]
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(results)

    # -- merging -------------------------------------------------------------------

    def move_range_to_final(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Move all records in range from every partition into partition 0.

        Returns the number of records moved.  This is the logical essence of
        an adaptive-merging step expressed directly over the partitioned
        B-tree (the production-path operator uses the bulk run
        representation instead, which is far cheaper in Python).  The move
        is realised as one ordered pass over the tree that re-keys the
        qualifying entries to partition 0 and rebuilds the tree from the
        resulting sorted sequence.
        """
        kept: List[Tuple[Tuple[int, float], int]] = []
        moved_entries: List[Tuple[Tuple[int, float], int]] = []
        final = self.FINAL_PARTITION  # hoisted out of the entry loop (PF002)
        for key, payload in self._tree.items():
            partition_id, value = key
            inside = (low is None or value >= low) and (high is None or value < high)
            if partition_id != final and inside:
                moved_entries.append(((final, value), payload))
                self._partition_sizes[partition_id] -= 1
            else:
                kept.append((key, payload))
        if not moved_entries:
            return 0
        merged = sorted(kept + moved_entries, key=lambda item: item[0])
        keys = [k for k, _ in merged]
        payloads = [p for _, p in merged]
        self._tree = BTree.from_sorted(keys, payloads, order=self._tree.order)
        self._partition_sizes[self.FINAL_PARTITION] = (
            self._partition_sizes.get(self.FINAL_PARTITION, 0) + len(moved_entries)
        )
        if counters is not None:
            counters.record_scan(len(merged))
            counters.record_move(len(moved_entries))
            counters.record_comparisons(len(merged))
        return len(moved_entries)

    # -- inspection ------------------------------------------------------------------

    @property
    def partition_count(self) -> int:
        """Number of non-empty partitions."""
        return sum(1 for size in self._partition_sizes.values() if size > 0)

    def partition_size(self, partition_id: int) -> int:
        return self._partition_sizes.get(partition_id, 0)

    def __len__(self) -> int:
        return len(self._tree)
