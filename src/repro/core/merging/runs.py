"""Sorted run creation and range extraction.

The first query of adaptive merging performs *run generation*: the column is
cut into equal-size chunks, each chunk is sorted (with its row identifiers),
and the chunks become the initial partitions of a partitioned B-tree.  Run
generation is a single sequential pass plus per-run sorts — far cheaper than
a full sort in a disk-based setting (one pass instead of log-many) and the
only moment adaptive merging touches rows the workload never asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.columnstore.bulk import binary_search_count
from repro.columnstore.column import Column
from repro.cost.counters import CostCounters


@dataclass
class SortedRun:
    """One sorted run: values in non-decreasing order with aligned row ids."""

    values: np.ndarray
    rowids: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != len(self.rowids):
            raise ValueError("run values and rowids must be aligned")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.rowids.nbytes)

    def key_range(self) -> Tuple[float, float]:
        """(min, max) key in the run; raises on an empty run."""
        if len(self.values) == 0:
            raise ValueError("empty run has no key range")
        return float(self.values[0]), float(self.values[-1])

    def extract_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Remove and return ``(values, rowids)`` with ``low <= value < high``.

        The qualifying entries are located with binary searches (the run is
        sorted) and physically removed from the run, exactly like adaptive
        merging moves tuples out of initial partitions into the final one.
        """
        n = len(self.values)
        if n == 0:
            return (
                np.empty(0, dtype=self.values.dtype),
                np.empty(0, dtype=np.int64),
            )
        begin = 0 if low is None else int(np.searchsorted(self.values, low, side="left"))
        end = n if high is None else int(np.searchsorted(self.values, high, side="left"))
        end = max(end, begin)
        if counters is not None:
            counters.record_comparisons(2 * binary_search_count(n))
            counters.record_random_access(2)
        if begin == end:
            return (
                np.empty(0, dtype=self.values.dtype),
                np.empty(0, dtype=np.int64),
            )
        extracted_values = self.values[begin:end].copy()
        extracted_rowids = self.rowids[begin:end].copy()
        self.values = np.concatenate([self.values[:begin], self.values[end:]])
        self.rowids = np.concatenate([self.rowids[:begin], self.rowids[end:]])
        if counters is not None:
            counters.record_scan(end - begin)
            counters.record_move(end - begin)
        return extracted_values, extracted_rowids

    def peek_range_count(
        self, low: Optional[float], high: Optional[float]
    ) -> int:
        """Number of entries in range without extracting them."""
        n = len(self.values)
        if n == 0:
            return 0
        begin = 0 if low is None else int(np.searchsorted(self.values, low, side="left"))
        end = n if high is None else int(np.searchsorted(self.values, high, side="left"))
        return max(0, end - begin)

    def is_sorted(self) -> bool:
        """True when the run respects its sortedness invariant (tests)."""
        if len(self.values) <= 1:
            return True
        return bool(np.all(self.values[:-1] <= self.values[1:]))


def create_runs(
    column: Union[Column, np.ndarray],
    run_size: Optional[int] = None,
    counters: Optional[CostCounters] = None,
) -> List[SortedRun]:
    """Cut ``column`` into sorted runs of ``run_size`` elements.

    The default run size is ``sqrt(n)`` (giving about ``sqrt(n)`` runs),
    which mirrors the memory-limited run generation of the original work and
    keeps both the number of runs and the per-run sort cost balanced.
    """
    values = column.values if isinstance(column, Column) else np.asarray(column)
    n = len(values)
    if n == 0:
        return []
    if run_size is None:
        run_size = max(1, int(np.sqrt(n)))
    if run_size < 1:
        raise ValueError("run_size must be >= 1")
    runs: List[SortedRun] = []
    for start in range(0, n, run_size):
        end = min(start + run_size, n)
        chunk = values[start:end]
        rowids = np.arange(start, end, dtype=np.int64)
        order = np.argsort(chunk, kind="stable")
        runs.append(SortedRun(values=chunk[order], rowids=rowids[order]))
        if counters is not None:
            size = end - start
            counters.record_scan(size)
            counters.record_move(size)
            counters.record_comparisons(int(size * max(1.0, np.log2(max(size, 2)))))
            counters.record_allocation(chunk.nbytes + rowids.nbytes)
            counters.record_pieces(1)
    return runs
