"""Partitioned (and optionally parallel) database cracking.

Cracking is inherently partitionable: a crack only ever touches the single
piece containing the pivot, so sharding a column into ``P`` contiguous
partitions — each owning its own cracker column and cracker index — turns a
range selection into at most ``P`` completely independent sub-selections.
:class:`PartitionedCrackedColumn` exploits this twice:

* **pruning** — each partition learns its value bounds (min/max) when it is
  first touched, so later queries crack only the partitions whose value
  range overlaps the predicate; cold regions of the key domain are never
  reorganised, exactly as in whole-column cracking, and cold *partitions*
  are not even visited;
* **parallelism** — the per-partition sub-selections fan out across a
  :class:`concurrent.futures.ThreadPoolExecutor`.  The numpy partitioning
  kernels release the GIL, so the fan-out yields real speed-ups on
  multi-core machines.  Each worker records its work on a private
  :class:`~repro.cost.counters.CostCounters` instance; the per-partition
  counters are merged into the caller's counters after the fan-out, so
  logical cost accounting is independent of the execution mode.

Search results are positions into the *base* column (partition-local row
identifiers shifted by the partition offset), which makes the partitioned
column a drop-in replacement for
:class:`~repro.core.cracking.cracked_column.CrackedColumn`: the answer to
any query is the same set of positions, whatever ``partitions`` is.

:class:`PartitionedUpdatableCrackedColumn` extends the scheme to mixed
query/update workloads: every partition owns a private
:class:`~repro.core.cracking.updates.UpdatableCrackedColumn` (with its own
pending insert/delete queues, merged on demand by ripple movements), updates
are routed to the owning partition — deletes by a binary search on the
partition row ranges, inserts by the partition value bounds — and the
partition bounds are widened whenever an insert lands outside them, so
bounds pruning never hides a pending update.  Row identifiers are assigned
globally (original rows keep their base position, inserted rows receive
fresh identifiers starting at the base length), so the partitioned column
returns exactly the rowid sets an unpartitioned
:class:`~repro.core.cracking.updates.UpdatableCrackedColumn` would return.
"""

from __future__ import annotations

import bisect
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.columnstore.column import Column
from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.cracker_index import Piece
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.cost.counters import CostCounters

__all__ = [
    "ColumnPartition",
    "PartitionedCrackedColumn",
    "PartitionedUpdatableCrackedColumn",
    "UpdatableColumnPartition",
    "partition_bounds",
]


def partition_bounds(size: int, partitions: int) -> List[Tuple[int, int]]:
    """Half-open ``[start, end)`` row ranges of ``partitions`` contiguous shards.

    Sizes differ by at most one (the first ``size % partitions`` shards get
    the extra row).  ``partitions`` is clamped to ``[1, max(1, size)]`` so an
    empty or tiny column still yields a valid partitioning.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    count = max(1, min(partitions, size)) if size > 0 else 1
    base, remainder = divmod(size, count)
    bounds = []
    start = 0
    for index in range(count):
        end = start + base + (1 if index < remainder else 0)
        bounds.append((start, end))
        start = end
    return bounds


class ColumnPartition:
    """One contiguous shard of a partitioned cracked column.

    Owns a private :class:`CrackedColumn` over ``base[start:end]`` whose row
    identifiers are partition-local; :meth:`search` shifts them by ``start``
    so callers always see positions into the base column.  The partition's
    value bounds (min/max of its slice) are computed the first time the
    partition is visited and charged to that query's counters, mirroring how
    the lazy cracker-column copy charges the first query.
    """

    __slots__ = ("start", "end", "cracked", "_base_slice", "min_value", "max_value",
                 "_bounds_known")

    def __init__(self, base_slice: np.ndarray, start: int, sort_threshold: int = 0,
                 name: str = "") -> None:
        self.start = int(start)
        self.end = int(start) + len(base_slice)
        self._base_slice = base_slice
        self.cracked = CrackedColumn(
            base_slice, sort_threshold=sort_threshold, lazy_copy=True, name=name
        )
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._bounds_known = False

    def __len__(self) -> int:
        return self.end - self.start

    def _ensure_bounds(self, counters: Optional[CostCounters]) -> None:
        """Learn the partition's value range (one scan, charged once)."""
        if self._bounds_known:
            return
        if len(self._base_slice):
            self.min_value = float(self._base_slice.min())
            self.max_value = float(self._base_slice.max())
            if counters is not None:
                counters.record_scan(len(self._base_slice))
                counters.record_comparisons(2 * len(self._base_slice))
        self._bounds_known = True

    def overlaps(self, low: Optional[float], high: Optional[float],
                 counters: Optional[CostCounters]) -> bool:
        """True when ``[low, high)`` can contain values of this partition."""
        if len(self._base_slice) == 0:
            return False
        self._ensure_bounds(counters)
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value >= high:
            return False
        return True

    def search(self, low: Optional[float], high: Optional[float],
               counters: Optional[CostCounters]) -> np.ndarray:
        """Base-column positions of qualifying rows inside this partition."""
        local = self.cracked.search(low, high, counters)
        return local + self.start if self.start else local

    def search_values(self, low: Optional[float], high: Optional[float],
                      counters: Optional[CostCounters]) -> np.ndarray:
        return self.cracked.search_values(low, high, counters)

    def count(self, low: Optional[float], high: Optional[float],
              counters: Optional[CostCounters]) -> int:
        return self.cracked.count(low, high, counters)


class _PartitionedFanOut:
    """Shared thread-pool fan-out machinery of the partitioned columns.

    Subclasses populate ``self._partitions`` and set ``self.parallel`` /
    ``self._max_workers``; :meth:`_fan_out` then runs one operation over a
    set of target partitions, sequentially or concurrently, with private
    per-worker counters merged back into the caller's counters.
    """

    parallel: bool = False
    _max_workers: Optional[int] = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-partition",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the thread pool (idempotent; a later query re-creates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def _fan_out(
        self,
        targets: Sequence[object],
        operation: str,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters],
        parallel: Optional[bool],
    ) -> List[object]:
        """Run ``operation`` on every target partition, sequentially or in parallel.

        Per-partition results are returned in partition order.  In parallel
        mode each worker writes to its own counters; the private counters are
        merged into ``counters`` once all workers finish, so concurrent
        workers never share a mutable counter instance.
        """
        use_parallel = self.parallel if parallel is None else bool(parallel)
        if not use_parallel or len(targets) <= 1:
            return [getattr(t, operation)(low, high, counters) for t in targets]
        locals_counters = [CostCounters() if counters is not None else None
                           for _ in targets]
        pool = self._executor()
        futures = [
            pool.submit(getattr(target, operation), low, high, private)
            for target, private in zip(targets, locals_counters)
        ]
        results = [future.result() for future in futures]
        if counters is not None:
            for private in locals_counters:
                counters += private
        return results


class PartitionedCrackedColumn(_PartitionedFanOut):
    """A column sharded into contiguous partitions, each cracked independently.

    Parameters
    ----------
    column:
        Base column (or raw array); each partition keeps a lazy private copy
        of its slice, charged to the first query that touches it.
    partitions:
        Number of contiguous shards (clamped to the column size; >= 1).
    parallel:
        When True, queries overlapping more than one partition fan out over a
        thread pool; each worker gets private counters that are merged into
        the caller's counters afterwards.  Answers are identical either way.
    sort_threshold:
        Forwarded to every partition's :class:`CrackedColumn`.
    max_workers:
        Thread-pool size (defaults to the partition count).
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        partitions: int = 4,
        parallel: bool = False,
        sort_threshold: int = 0,
        max_workers: Optional[int] = None,
        name: str = "",
    ) -> None:
        base = column.values if isinstance(column, Column) else np.asarray(column)
        if base.ndim != 1:
            raise ValueError("partitioned cracked columns are one-dimensional")
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.parallel = bool(parallel)
        self.sort_threshold = int(sort_threshold)
        self.queries_processed = 0
        self._partitions: List[ColumnPartition] = [
            ColumnPartition(base[start:end], start, sort_threshold=sort_threshold,
                            name=f"{self.name}[{start}:{end}]" if self.name else "")
            for start, end in partition_bounds(len(base), partitions)
        ]
        self._max_workers = max_workers or len(self._partitions)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- basic properties -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._base)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> List[ColumnPartition]:
        """The partitions, left to right (for inspection and tests)."""
        return list(self._partitions)

    @property
    def piece_count(self) -> int:
        """Total pieces across all partition cracker indexes."""
        return sum(p.cracked.piece_count for p in self._partitions)

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary storage held across all partitions."""
        return sum(p.cracked.nbytes for p in self._partitions)

    @property
    def materialised(self) -> bool:
        """True once at least one partition holds its cracker-column copy."""
        return any(p.cracked.materialised for p in self._partitions)

    def pieces(self) -> List[Piece]:
        """All pieces across partitions, positions shifted to base coordinates."""
        result: List[Piece] = []
        for partition in self._partitions:
            for piece in partition.cracked.pieces():
                result.append(
                    Piece(
                        start=piece.start + partition.start,
                        end=piece.end + partition.start,
                        low=piece.low,
                        high=piece.high,
                        sorted=piece.sorted,
                    )
                )
        return result

    # -- the adaptive select operator -----------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> np.ndarray:
        """Positions (into the base column) of rows with ``low <= value < high``.

        Cracks only the partitions whose value range overlaps the predicate,
        each as a side effect of its own sub-selection.  Positions are
        returned in partition order (ascending partition, cracker order
        within each partition); the *set* of positions is identical to what a
        whole-column :class:`CrackedColumn` would return.
        """
        self.queries_processed += 1
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        if not targets:
            return np.empty(0, dtype=np.int64)
        chunks = self._fan_out(targets, "search", low, high, counters, parallel)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def search_values(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> np.ndarray:
        """Qualifying *values* rather than base positions (cracks as a side effect)."""
        self.queries_processed += 1
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        if not targets:
            return np.empty(0, dtype=self._base.dtype)
        chunks = self._fan_out(targets, "search_values", low, high, counters, parallel)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def count(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> int:
        """Number of qualifying rows (cracks as a side effect)."""
        self.queries_processed += 1
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        if not targets:
            return 0
        return int(sum(self._fan_out(targets, "count", low, high, counters, parallel)))

    # -- maintenance / inspection ----------------------------------------------

    def is_fully_sorted(self) -> bool:
        """True when every partition is materialised and fully sorted internally."""
        return all(p.cracked.is_fully_sorted() for p in self._partitions)

    def check_invariants(self) -> None:
        """Per-partition invariants plus global multiset/rowid alignment."""
        for partition in self._partitions:
            partition.cracked.check_invariants()
        # partitions tile the base column exactly
        expected_start = 0
        for partition in self._partitions:
            assert partition.start == expected_start, (
                f"partition starts at {partition.start}, expected {expected_start}"
            )
            expected_start = partition.end
        assert expected_start == len(self._base)
        materialised = [p for p in self._partitions if p.cracked.materialised]
        if not materialised:
            return
        # global rowid alignment: every materialised partition's rowids map
        # its cracker values back to the base column at the global offset
        for partition in materialised:
            global_rowids = partition.cracked.rowids + partition.start
            assert np.array_equal(
                partition.cracked.values, self._base[global_rowids]
            ), f"partition [{partition.start}:{partition.end}) misaligned with base"
        if len(materialised) == len(self._partitions):
            all_rowids = np.concatenate(
                [p.cracked.rowids + p.start for p in self._partitions]
            )
            assert np.array_equal(
                np.sort(all_rowids), np.arange(len(self._base))
            ), "global rowids are not a permutation of the base positions"
            all_values = np.concatenate([p.cracked.values for p in self._partitions])
            assert np.array_equal(
                np.sort(all_values), np.sort(self._base)
            ), "global multiset of values not preserved"

    @property
    def structure_description(self) -> str:
        cracked = sum(1 for p in self._partitions if p.cracked.materialised)
        return (
            f"partitioned cracking: {self.partition_count} partitions "
            f"({cracked} touched), {self.piece_count} pieces"
        )


class UpdatableColumnPartition:
    """One contiguous shard of a partitioned *updatable* cracked column.

    Owns a private :class:`UpdatableCrackedColumn` over ``base[start:end]``
    numbered in global coordinates (``rowid_base=start``), so its answers
    need no shifting.  The partition keeps conservative value bounds: the
    min/max of the base slice (learned lazily, charged to the first touching
    query, as in :class:`ColumnPartition`) widened by every value ever
    inserted into the partition.  Bounds are never narrowed — deleting the
    extreme value leaves them stale-wide, which only costs a spurious visit,
    never a missed row.
    """

    __slots__ = ("start", "end", "updatable", "_base_slice", "min_value",
                 "max_value", "_bounds_known", "_extra_min", "_extra_max")

    def __init__(self, base_slice: np.ndarray, start: int, policy: str = "ripple",
                 merge_batch: int = 16, sort_threshold: int = 0,
                 name: str = "") -> None:
        self.start = int(start)
        self.end = int(start) + len(base_slice)
        self._base_slice = base_slice
        self.updatable = UpdatableCrackedColumn(
            base_slice, policy=policy, merge_batch=merge_batch,
            sort_threshold=sort_threshold, rowid_base=start, name=name,
        )
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._bounds_known = False
        self._extra_min: Optional[float] = None
        self._extra_max: Optional[float] = None

    def __len__(self) -> int:
        """Number of currently visible rows in this partition."""
        return len(self.updatable)

    def _ensure_bounds(self, counters: Optional[CostCounters]) -> None:
        """Learn the base slice's value range (one scan, charged once)."""
        if self._bounds_known:
            return
        if len(self._base_slice):
            self.min_value = float(self._base_slice.min())
            self.max_value = float(self._base_slice.max())
            if counters is not None:
                counters.record_scan(len(self._base_slice))
                counters.record_comparisons(2 * len(self._base_slice))
        self._bounds_known = True

    @property
    def effective_bounds(self) -> Tuple[Optional[float], Optional[float]]:
        """Known value bounds: base bounds (once learned) widened by inserts."""
        lows = [b for b in (self.min_value, self._extra_min) if b is not None]
        highs = [b for b in (self.max_value, self._extra_max) if b is not None]
        return (min(lows) if lows else None, max(highs) if highs else None)

    def contains_value(self, value: float) -> bool:
        """True when ``value`` falls inside the currently known bounds."""
        low, high = self.effective_bounds
        return low is not None and low <= value <= high

    def overlaps(self, low: Optional[float], high: Optional[float],
                 counters: Optional[CostCounters]) -> bool:
        """True when ``[low, high)`` can contain visible values of this partition."""
        if len(self._base_slice) == 0 and self._extra_min is None:
            return False
        self._ensure_bounds(counters)
        bound_low, bound_high = self.effective_bounds
        if bound_low is None:
            return False
        if low is not None and bound_high < low:
            return False
        if high is not None and bound_low >= high:
            return False
        return True

    # -- updates --------------------------------------------------------------

    def insert(self, value: float, counters: Optional[CostCounters],
               rowid: int) -> int:
        """Queue one insert (globally numbered) and widen the bounds."""
        rowid = self.updatable.insert(value, counters, rowid=rowid)
        value = float(value)
        if self._extra_min is None or value < self._extra_min:
            self._extra_min = value
        if self._extra_max is None or value > self._extra_max:
            self._extra_max = value
        return rowid

    def delete(self, rowid: int, counters: Optional[CostCounters]) -> None:
        self.updatable.delete(rowid, counters)

    # -- queries ---------------------------------------------------------------

    def search(self, low: Optional[float], high: Optional[float],
               counters: Optional[CostCounters]) -> np.ndarray:
        """Global rowids of visible qualifying rows inside this partition."""
        return self.updatable.search(low, high, counters)


class PartitionedUpdatableCrackedColumn(_PartitionedFanOut):
    """Partitioned cracking with first-class inserts, deletes and updates.

    Parameters
    ----------
    column:
        Base column (or raw array), sharded into contiguous partitions.
    partitions:
        Number of contiguous shards (clamped to the column size; >= 1).
    parallel:
        When True, queries overlapping more than one partition fan out over
        a thread pool; per-partition merges only touch partition-private
        state, so the fan-out is race-free and answers (and logical costs)
        are identical to the sequential run.
    policy / merge_batch:
        Pending-update merge policy of every partition — see
        :class:`~repro.core.cracking.updates.UpdatableCrackedColumn`.  Under
        the gradual policy each *partition* merges at most ``merge_batch``
        pending updates per query it participates in.
    sort_threshold / max_workers:
        As in :class:`PartitionedCrackedColumn`.

    Updates are routed to the owning partition: deletes of original rows by
    a binary search on the partition row ranges, deletes of inserted rows by
    asking the partitions which one knows the rowid, and inserts to the
    leftmost partition whose value bounds contain the value (falling back to
    the nearest partition by value distance, then to the last partition
    while no bounds are known).  Routing never affects answers — rowids are
    global — only load spread.
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        partitions: int = 4,
        parallel: bool = False,
        policy: str = "ripple",
        merge_batch: int = 16,
        sort_threshold: int = 0,
        max_workers: Optional[int] = None,
        name: str = "",
    ) -> None:
        base = column.values if isinstance(column, Column) else np.asarray(column)
        if base.ndim != 1:
            raise ValueError("partitioned cracked columns are one-dimensional")
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.parallel = bool(parallel)
        self.policy = policy
        self.merge_batch = int(merge_batch)
        self.sort_threshold = int(sort_threshold)
        self.queries_processed = 0
        self._partitions: List[UpdatableColumnPartition] = [
            UpdatableColumnPartition(
                base[start:end], start, policy=policy, merge_batch=merge_batch,
                sort_threshold=sort_threshold,
                name=f"{self.name}[{start}:{end}]" if self.name else "",
            )
            for start, end in partition_bounds(len(base), partitions)
        ]
        self._starts = [p.start for p in self._partitions]
        self._next_rowid = len(base)
        self._max_workers = max_workers or len(self._partitions)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- basic properties -------------------------------------------------------

    def __len__(self) -> int:
        """Number of currently visible rows across all partitions."""
        return sum(len(p) for p in self._partitions)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> List[UpdatableColumnPartition]:
        """The partitions, left to right (for inspection and tests)."""
        return list(self._partitions)

    @property
    def piece_count(self) -> int:
        """Total pieces across all partition cracker indexes."""
        return sum(p.updatable.piece_count for p in self._partitions)

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary storage held across all partitions."""
        return sum(p.updatable.nbytes for p in self._partitions)

    @property
    def pending_inserts(self) -> int:
        return sum(p.updatable.pending_inserts for p in self._partitions)

    @property
    def pending_deletes(self) -> int:
        return sum(p.updatable.pending_deletes for p in self._partitions)

    @property
    def merges_performed(self) -> int:
        return sum(p.updatable.merges_performed for p in self._partitions)

    @property
    def next_rowid(self) -> int:
        """The identifier the next insert will receive."""
        return self._next_rowid

    # -- update routing ---------------------------------------------------------

    def _route_insert(self, value: float) -> UpdatableColumnPartition:
        """The partition that should absorb an insert of ``value``."""
        for partition in self._partitions:
            if partition.contains_value(value):
                return partition
        best: Optional[UpdatableColumnPartition] = None
        best_distance: Optional[float] = None
        for partition in self._partitions:
            low, high = partition.effective_bounds
            if low is None:
                continue
            distance = (low - value) if value < low else (value - high)
            if best_distance is None or distance < best_distance:
                best, best_distance = partition, distance
        return best if best is not None else self._partitions[-1]

    def _owning_partition(self, rowid: int) -> UpdatableColumnPartition:
        """The partition owning ``rowid``.

        Original rows are found by a binary search on the partition row
        ranges; inserted rows by asking each partition (the partition count
        is small, and keeping no global insert registry means fully removed
        rows leave no state behind).
        """
        if 0 <= rowid < len(self._base):
            return self._partitions[bisect.bisect_right(self._starts, rowid) - 1]
        for partition in self._partitions:
            if partition.updatable.knows_rowid(rowid):
                return partition
        raise KeyError(f"unknown row identifier {rowid}")

    # -- updates ----------------------------------------------------------------

    def insert(self, value: float, counters: Optional[CostCounters] = None) -> int:
        """Queue the insertion of ``value``; returns its new (global) rowid."""
        partition = self._route_insert(float(value))
        rowid = partition.insert(value, counters, self._next_rowid)
        self._next_rowid += 1
        return rowid

    def delete(self, rowid: int, counters: Optional[CostCounters] = None) -> None:
        """Queue the deletion of the row identified by (global) ``rowid``."""
        self._owning_partition(rowid).delete(rowid, counters)

    def update(self, rowid: int, new_value: float,
               counters: Optional[CostCounters] = None) -> int:
        """Update = delete old row + insert new value; returns the new rowid.

        The new value is validated before the delete is queued, so a
        rejected value leaves the old row untouched.
        """
        self._partitions[0].updatable.check_insertable(new_value)
        self.delete(rowid, counters)
        return self.insert(new_value, counters)

    # -- the adaptive select operator -------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> np.ndarray:
        """Global rowids of visible rows with ``low <= value < high``.

        Each overlapping partition merges its own qualifying pending updates
        (per the configured policy) and cracks itself as a side effect; the
        *set* of rowids is identical to what an unpartitioned
        :class:`UpdatableCrackedColumn` would return.
        """
        self.queries_processed += 1
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        if not targets:
            return np.empty(0, dtype=np.int64)
        chunks = self._fan_out(targets, "search", low, high, counters, parallel)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    # -- verification -----------------------------------------------------------

    def visible_values(self) -> np.ndarray:
        """Multiset of currently visible values (reference for tests)."""
        chunks = [p.updatable.visible_values() for p in self._partitions]
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()

    def check_invariants(self) -> None:
        """Per-partition invariants plus global rowid consistency (tests)."""
        for partition in self._partitions:
            partition.updatable.check_invariants()
        expected_start = 0
        for partition in self._partitions:
            assert partition.start == expected_start, (
                f"partition starts at {partition.start}, expected {expected_start}"
            )
            expected_start = partition.end
        assert expected_start == len(self._base)
        seen: set = set()
        for partition in self._partitions:
            merged = partition.updatable.rowids.tolist()
            pending = partition.updatable._pending_insert_rowids
            for rowid in merged:
                original = 0 <= rowid < len(self._base)
                if original:
                    assert partition.start <= rowid < partition.end, (
                        f"original row {rowid} merged outside its partition "
                        f"[{partition.start}:{partition.end})"
                    )
                else:
                    assert partition.updatable.knows_rowid(rowid), (
                        f"inserted row {rowid} lives in a partition that "
                        f"does not know it"
                    )
            for rowid in list(merged) + list(pending):
                assert rowid not in seen, f"row {rowid} appears in two partitions"
                seen.add(rowid)

    @property
    def structure_description(self) -> str:
        return (
            f"partitioned updatable cracking ({self.policy}): "
            f"{self.partition_count} partitions, {self.piece_count} pieces, "
            f"{self.pending_inserts}+{self.pending_deletes} pending"
        )
