"""Partitioned (and optionally parallel) database cracking.

Cracking is inherently partitionable: a crack only ever touches the single
piece containing the pivot, so sharding a column into ``P`` contiguous
partitions — each owning its own cracker column and cracker index — turns a
range selection into at most ``P`` completely independent sub-selections.
:class:`PartitionedCrackedColumn` exploits this twice:

* **pruning** — each partition learns its value bounds (min/max) when it is
  first touched, so later queries crack only the partitions whose value
  range overlaps the predicate; cold regions of the key domain are never
  reorganised, exactly as in whole-column cracking, and cold *partitions*
  are not even visited;
* **parallelism** — the per-partition sub-selections fan out across a
  :class:`concurrent.futures.ThreadPoolExecutor`.  The numpy partitioning
  kernels release the GIL, so the fan-out yields real speed-ups on
  multi-core machines.  Each worker records its work on a private
  :class:`~repro.cost.counters.CostCounters` instance; the per-partition
  counters are merged into the caller's counters after the fan-out, so
  logical cost accounting is independent of the execution mode.

Search results are positions into the *base* column (partition-local row
identifiers shifted by the partition offset), which makes the partitioned
column a drop-in replacement for
:class:`~repro.core.cracking.cracked_column.CrackedColumn`: the answer to
any query is the same set of positions, whatever ``partitions`` is.

:class:`PartitionedUpdatableCrackedColumn` extends the scheme to mixed
query/update workloads: every partition owns a private
:class:`~repro.core.cracking.updates.UpdatableCrackedColumn` (with its own
pending insert/delete queues, merged on demand by ripple movements), updates
are routed to the owning partition — deletes by asking the partitions which
one knows the rowid, inserts by the partition value bounds (best fit) — and
the partition bounds are widened whenever an insert lands outside them, so
bounds pruning never hides a pending update.  Row identifiers are assigned
globally (original rows keep their base position, inserted rows receive
fresh identifiers starting at the base length), so the partitioned column
returns exactly the rowid sets an unpartitioned
:class:`~repro.core.cracking.updates.UpdatableCrackedColumn` would return.

Adaptive repartitioning
-----------------------

With ``repartition=True`` both partitioned columns monitor per-partition
load and reorganise the partitioning itself, in the same adaptive
philosophy as cracking: physical reorganisation happens only where, and
when, the workload proves it worthwhile.

* The *updatable* column tracks per-partition row counts (merged plus
  pending).  When a partition exceeds ``max_partition_rows`` — or, with
  more than one partition, ``split_threshold`` times the mean partition
  size — it is split at a crack boundary near its middle (or at the median
  value when no useful boundary exists), so a skewed insert stream cannot
  bloat one partition and degenerate the parallel fan-out to a single
  worker.  Conversely, partitions drained by deletes are merged back into a
  value-adjacent sibling once their combined size drops below the mean.
* The *read-only* column tracks per-partition visit counts.  A partition
  absorbing more than ``split_threshold`` times the mean visits (a zoom-in
  query stream) is split the same way, rebalancing future crack work.

Splits cut the cracker arrays at an existing crack boundary, route pending
updates by value, and keep global rowids untouched, so answers stay
bit-identical to the unpartitioned column — repartitioning changes load
spread, never results.  Split and merge counts are exposed as
:attr:`partition_splits` / :attr:`partition_merges`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis_tools.guards import charges, guarded_by
from repro.columnstore.column import Column
from repro.core import procexec
from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.cracker_index import CrackerIndex, Piece
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.cost.counters import CostCounters

__all__ = [
    "ColumnPartition",
    "EXECUTORS",
    "PartitionedCrackedColumn",
    "PartitionedUpdatableCrackedColumn",
    "UpdatableColumnPartition",
    "partition_bounds",
]

#: a partition must have been visited this often before query-skew splits it
_MIN_SPLIT_VISITS = 8

#: safety bound on splits performed per trigger check
_MAX_SPLITS_PER_CHECK = 8


def partition_bounds(size: int, partitions: int) -> List[Tuple[int, int]]:
    """Half-open ``[start, end)`` row ranges of ``partitions`` contiguous shards.

    Sizes differ by at most one (the first ``size % partitions`` shards get
    the extra row).  ``partitions`` is clamped to ``[1, max(1, size)]`` so an
    empty or tiny column still yields a valid partitioning.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    count = max(1, min(partitions, size)) if size > 0 else 1
    base, remainder = divmod(size, count)
    bounds = []
    start = 0
    for index in range(count):
        end = start + base + (1 if index < remainder else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _updatable_content_bounds(
    column: UpdatableCrackedColumn,
) -> Tuple[Optional[float], Optional[float]]:
    """Exact min/max over a column's merged values and pending inserts."""
    lows, highs = [], []
    if len(column.values):
        lows.append(float(column.values.min()))
        highs.append(float(column.values.max()))
    if column._pending_insert_values:
        lows.append(min(column._pending_insert_values))
        highs.append(max(column._pending_insert_values))
    if not lows:
        return None, None
    return min(lows), max(highs)


def _choose_split_pivot(values: np.ndarray, index: CrackerIndex) -> Optional[float]:
    """A pivot that splits ``values`` into two non-empty halves, or None.

    Prefers the existing crack boundary closest to the middle (free: no
    data movement beyond the cut), falling back to the median value when the
    partition has not been cracked in its interior yet.  Returns None when
    every element is equal (nothing can split the partition).
    """
    length = len(values)
    if length < 2:
        return None
    interior = [
        (abs(position - length / 2), value)
        for value, position in zip(index.boundary_values, index.boundary_positions)
        if 0 < position < length
    ]
    if interior:
        return min(interior)[1]
    low = float(values.min())
    high = float(values.max())
    if low == high:
        return None
    pivot = float(np.median(values))
    if pivot <= low:
        pivot = float(values[values > low].min())
    return pivot


class ColumnPartition:
    """One contiguous shard of a partitioned cracked column.

    Owns a private :class:`CrackedColumn` over ``base[start:end]`` whose row
    identifiers are partition-local; :meth:`search` shifts them by ``start``
    so callers always see positions into the base column.  The partition's
    value bounds (min/max of its slice) are computed the first time the
    partition is visited and charged to that query's counters, mirroring how
    the lazy cracker-column copy charges the first query.

    After an adaptive-repartitioning split a partition becomes a *fragment*:
    it owns an arbitrary value-contiguous subset of its parent's rows,
    still expressed in the parent slice's coordinates (``start`` keeps
    shifting local rowids to base positions), with exact value bounds set at
    split time.
    """

    __slots__ = ("start", "end", "cracked", "_base_slice", "min_value", "max_value",
                 "_bounds_known", "visits", "_shared")

    def __init__(self, base_slice: np.ndarray, start: int, sort_threshold: int = 0,
                 name: str = "") -> None:
        self.start = int(start)
        self.end = int(start) + len(base_slice)
        self._base_slice = base_slice
        self.cracked = CrackedColumn(
            base_slice, sort_threshold=sort_threshold, lazy_copy=True, name=name
        )
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._bounds_known = False
        self.visits = 0
        self._shared = None

    @classmethod
    def _fragment(
        cls,
        base_slice: np.ndarray,
        start: int,
        end: int,
        values: np.ndarray,
        rowids: np.ndarray,
        index: CrackerIndex,
        bounds: Tuple[Optional[float], Optional[float]],
        sort_threshold: int = 0,
        name: str = "",
    ) -> "ColumnPartition":
        """A partition over a pre-cracked fragment of ``base_slice`` (splits)."""
        partition = cls.__new__(cls)
        partition.start = int(start)
        partition.end = int(end)
        partition._base_slice = base_slice
        partition.cracked = CrackedColumn.from_fragment(
            base_slice, values, rowids, index,
            sort_threshold=sort_threshold, name=name,
        )
        partition.min_value, partition.max_value = bounds
        partition._bounds_known = True
        partition.visits = 0
        partition._shared = None
        return partition

    def __len__(self) -> int:
        return len(self.cracked)

    @property
    def is_fragment(self) -> bool:
        """True when this partition was produced by a repartitioning split."""
        return self.cracked._fragment

    @charges("scans", "comparisons")
    def _ensure_bounds(self, counters: Optional[CostCounters]) -> None:
        """Learn the partition's value range (one scan, charged once)."""
        if self._bounds_known:
            return
        if len(self._base_slice):
            self.min_value = float(self._base_slice.min())
            self.max_value = float(self._base_slice.max())
            if counters is not None:
                counters.record_scan(len(self._base_slice))
                counters.record_comparisons(2 * len(self._base_slice))
        self._bounds_known = True

    def overlaps(self, low: Optional[float], high: Optional[float],
                 counters: Optional[CostCounters]) -> bool:
        """True when ``[low, high)`` can contain values of this partition."""
        self._ensure_bounds(counters)
        if self.min_value is None:
            return False
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value >= high:
            return False
        return True

    def search(self, low: Optional[float], high: Optional[float],
               counters: Optional[CostCounters]) -> np.ndarray:
        """Base-column positions of qualifying rows inside this partition."""
        local = self.cracked.search(low, high, counters)
        return local + self.start if self.start else local

    def search_values(self, low: Optional[float], high: Optional[float],
                      counters: Optional[CostCounters]) -> np.ndarray:
        return self.cracked.search_values(low, high, counters)

    def count(self, low: Optional[float], high: Optional[float],
              counters: Optional[CostCounters]) -> int:
        return self.cracked.count(low, high, counters)

    def load(self) -> dict:
        """Per-partition load summary (rows, visits, pieces)."""
        return {
            "rows": len(self),
            "visits": self.visits,
            "pieces": self.cracked.piece_count,
        }

    @charges("scans", "comparisons", "movements", "allocations")
    def split(
        self, counters: Optional[CostCounters]
    ) -> Optional[Tuple["ColumnPartition", "ColumnPartition"]]:
        """Split into two partitions; None when no useful pivot exists.

        An unmaterialised partition is split by row range (two contiguous
        sub-slices, nothing to move); a materialised one is cut at a crack
        boundary near its middle, producing two fragments with disjoint
        value bounds and unchanged global rowids.
        """
        sort_threshold = self.cracked.sort_threshold
        name = self.cracked.name
        if not self.cracked.materialised:
            size = len(self._base_slice)
            if size < 2:
                return None
            mid = size // 2
            left = ColumnPartition(
                self._base_slice[:mid], self.start,
                sort_threshold=sort_threshold, name=name,
            )
            right = ColumnPartition(
                self._base_slice[mid:], self.start + mid,
                sort_threshold=sort_threshold, name=name,
            )
            return left, right
        values = self.cracked.values
        length = len(values)
        pivot = _choose_split_pivot(values, self.cracked.index)
        if pivot is None:
            return None
        mid = self.cracked.crack_at(pivot, counters)
        if not 0 < mid < length:
            return None
        left_index, right_index = self.cracked.index.split_at_boundary(pivot)
        left_values = values[:mid].copy()
        left_rowids = self.cracked.rowids[:mid].copy()
        right_values = values[mid:].copy()
        right_rowids = self.cracked.rowids[mid:].copy()
        if counters is not None:
            counters.record_move(length)
            counters.record_scan(length)  # exact bounds of both fragments
            counters.record_comparisons(2 * length)
            counters.record_allocation(
                left_values.nbytes + left_rowids.nbytes
                + right_values.nbytes + right_rowids.nbytes
            )
        left = ColumnPartition._fragment(
            self._base_slice, self.start, self.end,
            left_values, left_rowids, left_index,
            (float(left_values.min()), float(left_values.max())),
            sort_threshold=sort_threshold, name=name,
        )
        right = ColumnPartition._fragment(
            self._base_slice, self.start, self.end,
            right_values, right_rowids, right_index,
            (float(right_values.min()), float(right_values.max())),
            sort_threshold=sort_threshold, name=name,
        )
        return left, right


#: execution backends a partitioned column can fan out over
EXECUTORS = ("thread", "process")


@guarded_by(_pool="_pool_lock")
class _PartitionedFanOut:
    """Shared fan-out machinery of the partitioned columns.

    Subclasses populate ``self._partitions`` and set ``self.parallel`` /
    ``self._max_workers``; :meth:`_fan_out` then runs one operation over a
    set of target partitions, sequentially or concurrently, with private
    per-worker counters merged back into the caller's counters.

    Two execution backends sit behind the same seam: ``executor="thread"``
    fans out over a lazily created per-column thread pool, and
    ``executor="process"`` ships each partition to an OS worker process
    over shared memory (:mod:`repro.core.procexec`) — real multi-core
    execution for the pure-Python crack loops the GIL serialises.  Answers
    and logical cost counters are bit-identical across all backends.
    """

    parallel: bool = False
    _max_workers: Optional[int] = None

    def _init_fan_out(self, max_workers: Optional[int],
                      executor: str = "thread") -> None:
        """Shared fan-out state; called by subclass constructors.

        The two locks make a *converged* (read-only) partitioned column
        safe under the concurrent readers the batch scheduler fans out:
        ``_pool_lock`` keeps the lazy thread pool from being created twice,
        ``_stats_lock`` keeps shared visit/query counters from losing
        increments.
        """
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.executor = str(executor)
        # a caller-chosen worker count is pinned; a defaulted one tracks the
        # partition count as repartitioning splits and merges change it
        self._explicit_workers = max_workers is not None
        self._max_workers = max_workers or len(self._partitions)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-partition",
                )
            return self._pool

    def _sync_worker_pool(self) -> None:
        """Track topology changes with the fan-out width (defaulted sizing only).

        ``_max_workers`` defaults to the partition count at construction;
        without this hook a repartitioning split past that count leaves the
        fan-out under-subscribed forever (and merges leave the pool
        oversized).  An existing thread pool of the wrong size is retired
        and lazily re-created at the new width; the process backend reads
        ``_max_workers`` per fan-out, so updating the count is enough.
        """
        if self._explicit_workers:
            return
        desired = max(1, len(self._partitions))
        with self._pool_lock:
            if desired == self._max_workers:
                return
            self._max_workers = desired
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        """Release execution resources: the thread pool and any shared segments.

        Idempotent, and not final — a later parallel query re-creates what
        it needs.  Shared-memory segments created for the process backend
        are copied back into private arrays and unlinked, so a closed (or
        dropped) column never leaks segments.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for partition in self._partitions:
            procexec.release_shared(partition)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    @staticmethod
    def _validate_repartition_options(
        repartition: bool,
        max_partition_rows: Optional[int],
        split_threshold: float,
    ) -> Tuple[bool, Optional[int], float]:
        if max_partition_rows is not None and max_partition_rows < 1:
            raise ValueError("max_partition_rows must be >= 1")
        if split_threshold <= 1.0:
            raise ValueError("split_threshold must be > 1.0")
        return bool(repartition), (
            None if max_partition_rows is None else int(max_partition_rows)
        ), float(split_threshold)

    def _fan_out(
        self,
        targets: Sequence[object],
        operation: str,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters],
        parallel: Optional[bool],
    ) -> List[object]:
        """Run ``operation`` on every target partition, sequentially or in parallel.

        Per-partition results are returned in partition order.  In parallel
        mode each worker writes to its own counters; the private counters are
        merged into ``counters`` once all workers finish, so concurrent
        workers never share a mutable counter instance.
        """
        use_parallel = self.parallel if parallel is None else bool(parallel)
        if not use_parallel or len(targets) <= 1:
            return [getattr(t, operation)(low, high, counters) for t in targets]
        if self.executor == "process":
            return self._fan_out_process(targets, operation, low, high, counters)
        locals_counters = [CostCounters() if counters is not None else None
                           for _ in targets]
        pool = self._executor()
        futures = [
            pool.submit(getattr(target, operation), low, high, private)
            for target, private in zip(targets, locals_counters)
        ]
        results = [future.result() for future in futures]
        if counters is not None:
            for private in locals_counters:
                counters += private
        return results

    def _fan_out_process(
        self,
        targets: Sequence[object],
        operation: str,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters],
    ) -> List[object]:
        """The process backend of :meth:`_fan_out` (same contract).

        Each target partition is snapshotted into a picklable task over its
        shared-memory arrays, run on the process pool bounded to
        ``_max_workers`` concurrent slots, and its outcome (result, mutated
        bookkeeping, private counters) installed back — in partition order,
        exactly like the thread backend merges its private counters.
        """
        locals_counters = [CostCounters() if counters is not None else None
                           for _ in targets]
        tasks = [
            procexec.prepare_task(target, operation, low, high, private)
            for target, private in zip(targets, locals_counters)
        ]
        outcomes = procexec.run_tasks(tasks, self._max_workers)
        results = [
            procexec.apply_outcome(target, outcome, private)
            for target, outcome, private in zip(targets, outcomes, locals_counters)
        ]
        if counters is not None:
            for private in locals_counters:
                counters += private
        return results

    def _check_partition_layout(self, base_size: int) -> None:
        """Shared layout invariants: ordered, covering row ranges and
        value-disjoint bounds between partitions with overlapping ranges."""
        partitions = self._partitions
        covered = np.zeros(base_size, dtype=bool)
        for partition in partitions:
            assert 0 <= partition.start <= partition.end <= base_size, (
                f"row range [{partition.start}:{partition.end}) outside the base"
            )
            covered[partition.start:partition.end] = True
        assert covered.all() or base_size == 0, (
            "partition row ranges do not cover the base column"
        )
        for left, right in zip(partitions, partitions[1:]):
            assert left.start <= right.start, (
                "partitions are not ordered by row-range start"
            )
            ranges_overlap = (left.start < right.end and right.start < left.end)
            if not ranges_overlap:
                continue
            # partitions sharing rows of the base (split descendants) must
            # cover disjoint value ranges, in list order
            left_high = getattr(left, "max_value", None)
            right_low = getattr(right, "min_value", None)
            if hasattr(left, "effective_bounds"):
                left_high = left.effective_bounds[1]
                right_low = right.effective_bounds[0]
            if left_high is None or right_low is None:
                continue
            assert left_high < right_low, (
                f"split siblings have overlapping value bounds: "
                f"{left_high} !< {right_low}"
            )


@guarded_by(
    queries_processed="_stats_lock",
    partition_splits="_stats_lock",
    partition_merges="_stats_lock",
)
class PartitionedCrackedColumn(_PartitionedFanOut):
    """A column sharded into contiguous partitions, each cracked independently.

    Parameters
    ----------
    column:
        Base column (or raw array); each partition keeps a lazy private copy
        of its slice, charged to the first query that touches it.
    partitions:
        Number of contiguous shards (clamped to the column size; >= 1).
    parallel:
        When True, queries overlapping more than one partition fan out over a
        thread pool; each worker gets private counters that are merged into
        the caller's counters afterwards.  Answers are identical either way.
    repartition:
        Enable adaptive repartitioning: partitions absorbing a skewed share
        of the visits (or exceeding ``max_partition_rows``) are split at a
        crack boundary.  Answers are identical either way.
    max_partition_rows:
        Hard per-partition row cap enforced by repartitioning (None = no cap).
    split_threshold:
        Relative skew trigger (> 1.0): a partition visited more than
        ``split_threshold`` times the mean is split.
    sort_threshold:
        Forwarded to every partition's :class:`CrackedColumn`.
    max_workers:
        Fan-out width (defaults to the partition count, tracking it as
        repartitioning changes the topology; an explicit value is pinned).
    executor:
        Parallel execution backend: ``"thread"`` (default) fans out over a
        thread pool, ``"process"`` over OS worker processes attached to the
        partition arrays through shared memory.  Answers and logical cost
        counters are bit-identical across backends.
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        partitions: int = 4,
        parallel: bool = False,
        repartition: bool = False,
        max_partition_rows: Optional[int] = None,
        split_threshold: float = 2.0,
        sort_threshold: int = 0,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        name: str = "",
    ) -> None:
        base = column.values if isinstance(column, Column) else np.asarray(column)
        if base.ndim != 1:
            raise ValueError("partitioned cracked columns are one-dimensional")
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.parallel = bool(parallel)
        (self.repartition, self.max_partition_rows,
         self.split_threshold) = self._validate_repartition_options(
            repartition, max_partition_rows, split_threshold
        )
        self.sort_threshold = int(sort_threshold)
        self.queries_processed = 0
        self.partition_splits = 0
        self.partition_merges = 0
        self._partitions: List[ColumnPartition] = [
            ColumnPartition(base[start:end], start, sort_threshold=sort_threshold,
                            name=f"{self.name}[{start}:{end}]" if self.name else "")
            for start, end in partition_bounds(len(base), partitions)
        ]
        self._init_fan_out(max_workers, executor)

    # -- basic properties -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._base)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> List[ColumnPartition]:
        """The partitions, left to right (for inspection and tests)."""
        return list(self._partitions)

    @property
    def piece_count(self) -> int:
        """Total pieces across all partition cracker indexes."""
        return sum(p.cracked.piece_count for p in self._partitions)

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary storage held across all partitions."""
        return sum(p.cracked.nbytes for p in self._partitions)

    @property
    def materialised(self) -> bool:
        """True once at least one partition holds its cracker-column copy."""
        return any(p.cracked.materialised for p in self._partitions)

    @property
    def converged(self) -> bool:
        """True when a search can no longer reorganise any physical state.

        Requires every partition to be materialised with a fully sorted
        cracker column and known value bounds, and adaptive repartitioning
        to be off (a repartitioning column may still split on any query).
        A converged partitioned column is read-only under selection — the
        remaining per-query bookkeeping (visit and query counters) is
        guarded by ``_stats_lock``, so concurrent readers are safe.
        """
        if self.repartition:
            return False
        return all(
            p._bounds_known and p.cracked.converged for p in self._partitions
        )

    def pieces(self) -> List[Piece]:
        """All pieces across partitions, positions shifted to base coordinates.

        After repartitioning splits, fragments of one parent share the
        parent's coordinate frame, so their piece positions describe
        per-partition regions rather than one global tiling.
        """
        result: List[Piece] = []
        for partition in self._partitions:
            start = partition.start  # hoisted out of the piece loop (PF002)
            for piece in partition.cracked.pieces():
                result.append(
                    Piece(
                        start=piece.start + start,
                        end=piece.end + start,
                        low=piece.low,
                        high=piece.high,
                        sorted=piece.sorted,
                    )
                )
        return result

    # -- adaptive repartitioning -----------------------------------------------

    def partition_loads(self) -> List[dict]:
        """Per-partition load summaries, left to right."""
        return [p.load() for p in self._partitions]

    def _split_candidate(self) -> Optional[int]:
        """Index of the partition most in need of a split, or None."""
        partitions = self._partitions
        count = len(partitions)
        sizes = [len(p) for p in partitions]
        if self.max_partition_rows is not None:
            over = [
                (sizes[i], i) for i in range(count)
                if sizes[i] > self.max_partition_rows and sizes[i] >= 2
            ]
            if over:
                return max(over)[1]
        if count > 1:
            mean_rows = sum(sizes) / count
            visits = [p.visits for p in partitions]
            mean_visits = sum(visits) / count
            hot = [
                (visits[i], i) for i in range(count)
                if sizes[i] >= 2
                and visits[i] >= _MIN_SPLIT_VISITS
                and visits[i] > self.split_threshold * mean_visits
                and sizes[i] * self.split_threshold >= mean_rows
            ]
            if hot:
                return max(hot)[1]
        return None

    def _maybe_rebalance(self, counters: Optional[CostCounters]) -> None:
        """Split skewed partitions (bounded work per call; main thread only)."""
        if not self.repartition:
            return
        partitions = self._partitions  # hoisted out of the split loop (PF002)
        for _ in range(_MAX_SPLITS_PER_CHECK):
            candidate = self._split_candidate()
            if candidate is None:
                break
            parent = partitions[candidate]
            children = parent.split(counters)
            if children is None:
                break
            left, right = children
            left.visits = right.visits = parent.visits // 2
            procexec.release_shared(parent)
            partitions[candidate:candidate + 1] = [left, right]
            with self._stats_lock:
                self.partition_splits += 1
        self._sync_worker_pool()

    # -- the adaptive select operator -----------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> np.ndarray:
        """Positions (into the base column) of rows with ``low <= value < high``.

        Cracks only the partitions whose value range overlaps the predicate,
        each as a side effect of its own sub-selection.  Positions are
        returned in partition order (ascending partition, cracker order
        within each partition); the *set* of positions is identical to what a
        whole-column :class:`CrackedColumn` would return.
        """
        self._maybe_rebalance(counters)
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        with self._stats_lock:
            self.queries_processed += 1
            for target in targets:
                target.visits += 1
        if not targets:
            return np.empty(0, dtype=np.int64)
        chunks = self._fan_out(targets, "search", low, high, counters, parallel)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def search_values(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> np.ndarray:
        """Qualifying *values* rather than base positions (cracks as a side effect)."""
        self._maybe_rebalance(counters)
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        with self._stats_lock:
            self.queries_processed += 1
            for target in targets:
                target.visits += 1
        if not targets:
            return np.empty(0, dtype=self._base.dtype)
        chunks = self._fan_out(targets, "search_values", low, high, counters, parallel)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def count(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> int:
        """Number of qualifying rows (cracks as a side effect)."""
        self._maybe_rebalance(counters)
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        with self._stats_lock:
            self.queries_processed += 1
            for target in targets:
                target.visits += 1
        if not targets:
            return 0
        return int(sum(self._fan_out(targets, "count", low, high, counters, parallel)))

    # -- maintenance / inspection ----------------------------------------------

    def is_fully_sorted(self) -> bool:
        """True when every partition is materialised and fully sorted internally."""
        return all(p.cracked.is_fully_sorted() for p in self._partitions)

    def check_invariants(self) -> None:
        """Per-partition invariants plus global rowid/layout consistency."""
        for partition in self._partitions:
            partition.cracked.check_invariants()
        self._check_partition_layout(len(self._base))
        # global rowid consistency: every base position is owned by exactly
        # one partition (materialised partitions contribute their cracker
        # rowids shifted to base coordinates, pristine ones their row range)
        chunks = []
        for partition in self._partitions:
            if partition.cracked.materialised:
                global_rowids = partition.cracked.rowids + partition.start
                assert np.array_equal(
                    partition.cracked.values, self._base[global_rowids]
                ), (
                    f"partition [{partition.start}:{partition.end}) "
                    f"misaligned with base"
                )
                chunks.append(global_rowids)
            else:
                chunks.append(
                    np.arange(partition.start, partition.end, dtype=np.int64)
                )
        all_rowids = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
        assert np.array_equal(
            np.sort(all_rowids), np.arange(len(self._base))
        ), "global rowids are not a permutation of the base positions"

    @property
    def structure_description(self) -> str:
        cracked = sum(1 for p in self._partitions if p.cracked.materialised)
        description = (
            f"partitioned cracking: {self.partition_count} partitions "
            f"({cracked} touched), {self.piece_count} pieces"
        )
        if self.repartition:
            description += (
                f", {self.partition_splits} splits/"
                f"{self.partition_merges} merges"
            )
        return description


class UpdatableColumnPartition:
    """One contiguous shard of a partitioned *updatable* cracked column.

    Owns a private :class:`UpdatableCrackedColumn` over ``base[start:end]``
    numbered in global coordinates (``rowid_base=start``), so its answers
    need no shifting.  The partition keeps conservative value bounds: the
    min/max of the base slice (learned lazily, charged to the first touching
    query, as in :class:`ColumnPartition`) widened by every value ever
    inserted into the partition.  Bounds are never narrowed — deleting the
    extreme value leaves them stale-wide, which only costs a spurious visit,
    never a missed row.

    After an adaptive-repartitioning split a partition becomes a *fragment*
    with exact bounds over an arbitrary subset of its parent's rows (the
    underlying column carries its original rowids as an explicit set); it
    behaves identically otherwise.
    """

    __slots__ = ("start", "end", "updatable", "_base_slice", "min_value",
                 "max_value", "_bounds_known", "_extra_min", "_extra_max",
                 "_shared")

    def __init__(self, base_slice: np.ndarray, start: int, policy: str = "ripple",
                 merge_batch: int = 16, sort_threshold: int = 0,
                 name: str = "") -> None:
        self.start = int(start)
        self.end = int(start) + len(base_slice)
        self._base_slice = base_slice
        self.updatable = UpdatableCrackedColumn(
            base_slice, policy=policy, merge_batch=merge_batch,
            sort_threshold=sort_threshold, rowid_base=start, name=name,
        )
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._bounds_known = False
        self._extra_min: Optional[float] = None
        self._extra_max: Optional[float] = None
        self._shared = None

    @classmethod
    def _fragment(
        cls,
        start: int,
        end: int,
        updatable: UpdatableCrackedColumn,
        bounds: Tuple[Optional[float], Optional[float]],
    ) -> "UpdatableColumnPartition":
        """A partition wrapping a pre-split updatable column fragment."""
        partition = cls.__new__(cls)
        partition.start = int(start)
        partition.end = int(end)
        partition._base_slice = np.empty(0, dtype=updatable.values.dtype)
        partition.updatable = updatable
        partition.min_value, partition.max_value = bounds
        partition._bounds_known = True
        partition._extra_min = None
        partition._extra_max = None
        partition._shared = None
        return partition

    def __len__(self) -> int:
        """Number of currently visible rows in this partition."""
        return len(self.updatable)

    @property
    def is_fragment(self) -> bool:
        """True when this partition was produced by a split or a merge."""
        return self.updatable._original_rowids is not None

    @charges("scans", "comparisons")
    def _ensure_bounds(self, counters: Optional[CostCounters]) -> None:
        """Learn the base slice's value range (one scan, charged once)."""
        if self._bounds_known:
            return
        if len(self._base_slice):
            self.min_value = float(self._base_slice.min())
            self.max_value = float(self._base_slice.max())
            if counters is not None:
                counters.record_scan(len(self._base_slice))
                counters.record_comparisons(2 * len(self._base_slice))
        self._bounds_known = True

    @property
    def effective_bounds(self) -> Tuple[Optional[float], Optional[float]]:
        """Known value bounds: base bounds (once learned) widened by inserts."""
        lows = [b for b in (self.min_value, self._extra_min) if b is not None]
        highs = [b for b in (self.max_value, self._extra_max) if b is not None]
        return (min(lows) if lows else None, max(highs) if highs else None)

    def contains_value(self, value: float) -> bool:
        """True when ``value`` falls inside the currently known bounds."""
        low, high = self.effective_bounds
        return low is not None and low <= value <= high

    def bounds_span(self) -> Optional[float]:
        """Width of the known bounds (None while no bounds are known)."""
        low, high = self.effective_bounds
        return None if low is None else high - low

    def overlaps(self, low: Optional[float], high: Optional[float],
                 counters: Optional[CostCounters]) -> bool:
        """True when ``[low, high)`` can contain visible values of this partition."""
        self._ensure_bounds(counters)
        bound_low, bound_high = self.effective_bounds
        if bound_low is None:
            return False
        if low is not None and bound_high < low:
            return False
        if high is not None and bound_low >= high:
            return False
        return True

    # -- updates --------------------------------------------------------------

    def insert(self, value: float, counters: Optional[CostCounters],
               rowid: int) -> int:
        """Queue one insert (globally numbered) and widen the bounds."""
        rowid = self.updatable.insert(value, counters, rowid=rowid)
        value = float(value)
        if self._extra_min is None or value < self._extra_min:
            self._extra_min = value
        if self._extra_max is None or value > self._extra_max:
            self._extra_max = value
        return rowid

    def delete(self, rowid: int, counters: Optional[CostCounters]) -> None:
        self.updatable.delete(rowid, counters)

    # -- queries ---------------------------------------------------------------

    def search(self, low: Optional[float], high: Optional[float],
               counters: Optional[CostCounters]) -> np.ndarray:
        """Global rowids of visible qualifying rows inside this partition."""
        return self.updatable.search(low, high, counters)

    def load(self) -> dict:
        """Per-partition load summary (rows, pending depth, queries)."""
        return {
            "rows": len(self),
            "pending": (self.updatable.pending_inserts
                        + self.updatable.pending_deletes),
            "queries": self.updatable.queries_processed,
            "pieces": self.updatable.piece_count,
        }

    @charges("scans", "comparisons")
    def split(
        self, counters: Optional[CostCounters]
    ) -> Optional[Tuple["UpdatableColumnPartition", "UpdatableColumnPartition"]]:
        """Split into two partitions; None when no useful pivot exists.

        The pivot is an existing crack boundary near the middle of the
        merged region (or the median value); pending updates follow their
        value's side.  Both fragments receive exact value bounds, so bounds
        pruning and insert routing stay tight after the split.
        """
        updatable = self.updatable
        pivot = _choose_split_pivot(updatable.values, updatable.index)
        if pivot is None:
            return None
        left_column, right_column = updatable.split_at(pivot, counters)
        if counters is not None:
            # exact bounds of both fragments cost one scan of their content
            total = len(left_column.values) + len(right_column.values)
            counters.record_scan(total)
            counters.record_comparisons(2 * total)
        left = UpdatableColumnPartition._fragment(
            self.start, self.end, left_column,
            _updatable_content_bounds(left_column),
        )
        right = UpdatableColumnPartition._fragment(
            self.start, self.end, right_column,
            _updatable_content_bounds(right_column),
        )
        return left, right


@guarded_by(
    queries_processed="_stats_lock",
    partition_splits="_stats_lock",
    partition_merges="_stats_lock",
)
class PartitionedUpdatableCrackedColumn(_PartitionedFanOut):
    """Partitioned cracking with first-class inserts, deletes and updates.

    Parameters
    ----------
    column:
        Base column (or raw array), sharded into contiguous partitions.
    partitions:
        Number of contiguous shards (clamped to the column size; >= 1).
    parallel:
        When True, queries overlapping more than one partition fan out over
        a thread pool; per-partition merges only touch partition-private
        state, so the fan-out is race-free and answers (and logical costs)
        are identical to the sequential run.
    repartition:
        Enable adaptive repartitioning: a partition bloated by a skewed
        insert stream is split at a crack boundary, and partitions drained
        by deletes are merged back into a value-adjacent sibling.  Answers
        are identical either way — repartitioning only changes load spread.
    max_partition_rows:
        Hard per-partition row cap enforced by repartitioning (None = no
        cap; with more than one partition the relative ``split_threshold``
        trigger applies as well).
    split_threshold:
        Relative skew trigger (> 1.0): a partition holding more than
        ``split_threshold`` times the mean partition row count is split.
    policy / merge_batch:
        Pending-update merge policy of every partition — see
        :class:`~repro.core.cracking.updates.UpdatableCrackedColumn`.  Under
        the gradual policy each *partition* merges at most ``merge_batch``
        pending updates per query it participates in.
    sort_threshold / max_workers / executor:
        As in :class:`PartitionedCrackedColumn`.

    Updates are routed to the owning partition: deletes by asking the
    partitions which one knows the rowid, and inserts to the *best-fit*
    partition — the one with the tightest value bounds containing the value
    (falling back to the nearest partition by value distance, then to the
    last partition while no bounds are known).  Routing never affects
    answers — rowids are global — only load spread.
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        partitions: int = 4,
        parallel: bool = False,
        repartition: bool = False,
        max_partition_rows: Optional[int] = None,
        split_threshold: float = 2.0,
        policy: str = "ripple",
        merge_batch: int = 16,
        sort_threshold: int = 0,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        name: str = "",
    ) -> None:
        base = column.values if isinstance(column, Column) else np.asarray(column)
        if base.ndim != 1:
            raise ValueError("partitioned cracked columns are one-dimensional")
        self.name = name or (column.name if isinstance(column, Column) else "")
        self._base = base
        self.parallel = bool(parallel)
        (self.repartition, self.max_partition_rows,
         self.split_threshold) = self._validate_repartition_options(
            repartition, max_partition_rows, split_threshold
        )
        self.policy = policy
        self.merge_batch = int(merge_batch)
        self.sort_threshold = int(sort_threshold)
        self.queries_processed = 0
        self.partition_splits = 0
        self.partition_merges = 0
        self._partitions: List[UpdatableColumnPartition] = [
            UpdatableColumnPartition(
                base[start:end], start, policy=policy, merge_batch=merge_batch,
                sort_threshold=sort_threshold,
                name=f"{self.name}[{start}:{end}]" if self.name else "",
            )
            for start, end in partition_bounds(len(base), partitions)
        ]
        self._next_rowid = len(base)
        self._init_fan_out(max_workers, executor)

    # -- basic properties -------------------------------------------------------

    def __len__(self) -> int:
        """Number of currently visible rows across all partitions."""
        return sum(len(p) for p in self._partitions)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> List[UpdatableColumnPartition]:
        """The partitions, left to right (for inspection and tests)."""
        return list(self._partitions)

    @property
    def piece_count(self) -> int:
        """Total pieces across all partition cracker indexes."""
        return sum(p.updatable.piece_count for p in self._partitions)

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary storage held across all partitions."""
        return sum(p.updatable.nbytes for p in self._partitions)

    @property
    def pending_inserts(self) -> int:
        return sum(p.updatable.pending_inserts for p in self._partitions)

    @property
    def pending_deletes(self) -> int:
        return sum(p.updatable.pending_deletes for p in self._partitions)

    @property
    def merges_performed(self) -> int:
        return sum(p.updatable.merges_performed for p in self._partitions)

    @property
    def next_rowid(self) -> int:
        """The identifier the next insert will receive."""
        return self._next_rowid

    def partition_loads(self) -> List[dict]:
        """Per-partition load summaries, left to right."""
        return [p.load() for p in self._partitions]

    # -- update routing ---------------------------------------------------------

    def _route_insert(self, value: float) -> UpdatableColumnPartition:
        """The partition that should absorb an insert of ``value``.

        Best fit: among the partitions whose known bounds contain the value,
        the one with the *tightest* bounds — after a split, the fragment
        actually covering the hot range, not merely the leftmost partition
        whose (possibly stale-wide) bounds happen to contain it.
        """
        best: Optional[UpdatableColumnPartition] = None
        best_span: Optional[float] = None
        for partition in self._partitions:
            if partition.contains_value(value):
                span = partition.bounds_span()
                if best_span is None or span < best_span:
                    best, best_span = partition, span
        if best is not None:
            return best
        best_distance: Optional[float] = None
        for partition in self._partitions:
            low, high = partition.effective_bounds
            if low is None:
                continue
            distance = (low - value) if value < low else (value - high)
            if best_distance is None or distance < best_distance:
                best, best_distance = partition, distance
        return best if best is not None else self._partitions[-1]

    def _owning_partition(self, rowid: int) -> UpdatableColumnPartition:
        """The partition owning ``rowid``.

        Every partition can answer ownership in O(1) for original rows
        (range or set membership) and for inserted rows (its insert
        registry), so the lookup is a short scan over the partition list;
        fully removed rows are unknown everywhere and raise ``KeyError``,
        matching the unpartitioned column.
        """
        for partition in self._partitions:
            if partition.updatable.knows_rowid(rowid):
                return partition
        raise KeyError(f"unknown row identifier {rowid}")

    # -- adaptive repartitioning -------------------------------------------------

    def _split_candidate(self) -> Optional[int]:
        """Index of the partition most in need of a split, or None."""
        partitions = self._partitions
        count = len(partitions)
        sizes = [len(p) for p in partitions]
        if self.max_partition_rows is not None:
            over = [
                (sizes[i], i) for i in range(count)
                if sizes[i] > self.max_partition_rows and sizes[i] >= 2
            ]
            if over:
                return max(over)[1]
        if count > 1:
            mean_rows = sum(sizes) / count
            big = [
                (sizes[i], i) for i in range(count)
                if sizes[i] >= 2 and sizes[i] > self.split_threshold * mean_rows
            ]
            if big:
                return max(big)[1]
        return None

    def _maybe_split(self, counters: Optional[CostCounters]) -> None:
        """Split skewed partitions (bounded work per call; main thread only)."""
        if not self.repartition:
            return
        partitions = self._partitions  # hoisted out of the split loop (PF002)
        for _ in range(_MAX_SPLITS_PER_CHECK):
            candidate = self._split_candidate()
            if candidate is None:
                break
            parent = partitions[candidate]
            children = parent.split(counters)
            if children is None:
                break
            procexec.release_shared(parent)
            partitions[candidate:candidate + 1] = list(children)
            with self._stats_lock:
                self.partition_splits += 1
        self._sync_worker_pool()

    def _maybe_merge(self, counters: Optional[CostCounters]) -> None:
        """Merge one pair of cold, value-adjacent partitions (main thread only).

        Candidates are adjacent partitions whose combined visible rows have
        dropped below the mean partition size and whose known value ranges
        are provably disjoint (split descendants; a partition that never
        held any value merges with either neighbour).  Conservative on
        purpose: stale-wide bounds or unlearned bounds skip the merge, which
        costs balance, never correctness.
        """
        if not self.repartition or len(self._partitions) < 2:
            return
        partitions = self._partitions  # hoisted out of the merge loop (PF002)
        sizes = [len(p) for p in partitions]
        mean_rows = sum(sizes) / len(sizes)
        for i in range(len(partitions) - 1):
            left, right = partitions[i], partitions[i + 1]
            if sizes[i] + sizes[i + 1] > mean_rows:
                continue
            if not left._bounds_known or not right._bounds_known:
                continue
            left_low, left_high = left.effective_bounds
            right_low, right_high = right.effective_bounds
            if left_low is not None and right_low is not None:
                if left_high >= right_low:
                    continue
                pivot = right_low
            else:
                # one side never held a value: nothing constrains the merge
                pivot = right_low if right_low is not None else 0.0
            merged_column = UpdatableCrackedColumn.merged(
                left.updatable, right.updatable, pivot, counters
            )
            lows = [b for b in (left_low, right_low) if b is not None]
            highs = [b for b in (left_high, right_high) if b is not None]
            merged = UpdatableColumnPartition._fragment(
                left.start, max(left.end, right.end), merged_column,
                (min(lows) if lows else None, max(highs) if highs else None),
            )
            procexec.release_shared(left)
            procexec.release_shared(right)
            partitions[i:i + 2] = [merged]
            with self._stats_lock:
                self.partition_merges += 1
            self._sync_worker_pool()
            return

    # -- updates ----------------------------------------------------------------

    def insert(self, value: float, counters: Optional[CostCounters] = None) -> int:
        """Queue the insertion of ``value``; returns its new (global) rowid."""
        partition = self._route_insert(float(value))
        rowid = partition.insert(value, counters, self._next_rowid)
        self._next_rowid += 1
        self._maybe_split(counters)
        return rowid

    def delete(self, rowid: int, counters: Optional[CostCounters] = None) -> None:
        """Queue the deletion of the row identified by (global) ``rowid``."""
        self._owning_partition(rowid).delete(rowid, counters)
        self._maybe_merge(counters)

    def update(self, rowid: int, new_value: float,
               counters: Optional[CostCounters] = None) -> int:
        """Update = delete old row + insert new value; returns the new rowid.

        The new value is validated before the delete is queued, so a
        rejected value leaves the old row untouched.
        """
        self._partitions[0].updatable.check_insertable(new_value)
        self.delete(rowid, counters)
        return self.insert(new_value, counters)

    # -- the adaptive select operator -------------------------------------------

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        parallel: Optional[bool] = None,
    ) -> np.ndarray:
        """Global rowids of visible rows with ``low <= value < high``.

        Each overlapping partition merges its own qualifying pending updates
        (per the configured policy) and cracks itself as a side effect; the
        *set* of rowids is identical to what an unpartitioned
        :class:`UpdatableCrackedColumn` would return.
        """
        with self._stats_lock:
            self.queries_processed += 1
        targets = [p for p in self._partitions if p.overlaps(low, high, counters)]
        if not targets:
            return np.empty(0, dtype=np.int64)
        chunks = self._fan_out(targets, "search", low, high, counters, parallel)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    # -- verification -----------------------------------------------------------

    def visible_values(self) -> np.ndarray:
        """Multiset of currently visible values (reference for tests)."""
        chunks = [p.updatable.visible_values() for p in self._partitions]
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()

    def check_invariants(self) -> None:
        """Per-partition invariants plus global rowid consistency (tests)."""
        for partition in self._partitions:
            partition.updatable.check_invariants()
        self._check_partition_layout(len(self._base))
        seen: set = set()
        for partition in self._partitions:
            merged = partition.updatable.rowids.tolist()
            pending = partition.updatable._pending_insert_rowids
            for rowid in merged:
                original = 0 <= rowid < len(self._base)
                if original:
                    assert partition.start <= rowid < partition.end, (
                        f"original row {rowid} merged outside its partition "
                        f"row range [{partition.start}:{partition.end})"
                    )
                else:
                    assert partition.updatable.knows_rowid(rowid), (
                        f"inserted row {rowid} lives in a partition that "
                        f"does not know it"
                    )
            for rowid in list(merged) + list(pending):
                assert rowid not in seen, f"row {rowid} appears in two partitions"
                seen.add(rowid)
            # everything a partition holds stays within its known bounds
            if partition._bounds_known:
                low, high = partition.effective_bounds
                content_low, content_high = _updatable_content_bounds(
                    partition.updatable
                )
                if content_low is not None:
                    assert low is not None and low <= content_low, (
                        f"partition content below its bounds: "
                        f"{content_low} < {low}"
                    )
                    assert high >= content_high, (
                        f"partition content above its bounds: "
                        f"{content_high} > {high}"
                    )

    @property
    def structure_description(self) -> str:
        description = (
            f"partitioned updatable cracking ({self.policy}): "
            f"{self.partition_count} partitions, {self.piece_count} pieces, "
            f"{self.pending_inserts}+{self.pending_deletes} pending"
        )
        if self.repartition:
            description += (
                f", {self.partition_splits} splits/"
                f"{self.partition_merges} merges"
            )
        return description
