"""Process-based partition execution over shared memory.

The partitioned columns' thread fan-out keeps every partition's arrays in
one address space; this module is the ``executor="process"`` counterpart.
The contract that keeps logical cost accounting execution-mode independent
(the ``@charges``/reproperf contract) is split across the process boundary
like this:

* **logical work stays logical** — the caller materialises (read-only
  partitions) or pre-grows (updatable partitions) *before* dispatch,
  charging the same counters a thread worker would have charged; the
  worker then charges its cracking/merging/scan work to a fresh
  :class:`~repro.cost.counters.CostCounters` that travels back and is
  merged into the caller's counters in partition order, exactly like the
  thread fan-out's private counters;
* **physical transport is free** — copying arrays into shared segments and
  pickling the small per-partition state is a property of the execution
  backend, not of the algorithm, so it is never charged.

Workers attach to column arrays by segment name
(:class:`~repro.columnstore.storage.SharedArrayBuffer`), crack them **in
place** — the partitioning kernels only ever assign into array slices — so
the caller observes all data movement without copying anything back; only
the small mutated bookkeeping (cracker index, pending queues, counters)
returns by value.

One process pool is shared by every partitioned column in the process
(workers are expensive to spawn: each imports numpy and this package), and
per-column ``max_workers`` caps are enforced by a bounded submission window
instead of per-column pools.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import get_context
from typing import Dict, List, Optional

import numpy as np

from repro.columnstore.storage import SharedArrayBuffer
from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.cost.counters import CostCounters

__all__ = [
    "apply_outcome",
    "prepare_task",
    "process_pool",
    "release_shared",
    "run_tasks",
    "shutdown_process_pool",
]

#: the updatable column's two cracker arrays travel by segment name; every
#: other attribute is small bookkeeping that travels by value
_UPDATABLE_ARRAYS = ("_values", "_rowids")

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def process_pool() -> ProcessPoolExecutor:
    """The process-wide worker pool (spawned lazily, shared by all columns)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ProcessPoolExecutor(
                max_workers=max(8, os.cpu_count() or 1),
                mp_context=get_context("spawn"),
            )
        return _POOL


def shutdown_process_pool() -> None:
    """Tear down the shared pool (idempotent; a later task re-creates it)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=True)


atexit.register(shutdown_process_pool)


def run_tasks(tasks: List[dict], max_workers: int) -> List[dict]:
    """Run ``tasks`` on the shared pool, at most ``max_workers`` in flight.

    Results are returned in task order.  The bounded window is what makes
    one global pool serve many columns with different worker caps: a column
    sized for 4 workers never occupies more than 4 pool slots, however many
    partitions its query overlaps.
    """
    pool = process_pool()
    window = max(1, min(int(max_workers), len(tasks)))
    results: List[Optional[dict]] = [None] * len(tasks)
    pending: Dict[object, int] = {}
    next_index = 0
    while next_index < len(tasks) or pending:
        while next_index < len(tasks) and len(pending) < window:
            pending[pool.submit(_run_task, tasks[next_index])] = next_index
            next_index += 1
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            results[pending.pop(future)] = future.result()
    return results


# -- caller side: build tasks, install outcomes --------------------------------


def prepare_task(target, operation: str, low, high,
                 counters: Optional[CostCounters]) -> dict:
    """Snapshot one partition into a picklable worker task.

    Any logical work a thread worker would have charged *before* touching
    partition-private state (materialising the cracker copy, growing the
    updatable capacity) happens here, against the same per-partition
    ``counters`` instance, so the merged totals are bit-identical to the
    thread backend's.
    """
    if hasattr(target, "cracked"):
        return _prepare_cracked(target, operation, low, high, counters)
    return _prepare_updatable(target, operation, low, high, counters)


def apply_outcome(target, outcome: dict,
                  counters: Optional[CostCounters]):
    """Install one worker outcome into the live partition; returns the result."""
    if counters is not None and outcome["counters"] is not None:
        counters += outcome["counters"]
    if hasattr(target, "cracked"):
        column = target.cracked
        column.index = outcome["index"]
        column._converged = outcome["converged"]
        with column._stats_lock:
            column.queries_processed += outcome["queries"]
    else:
        # the arrays were mutated in shared memory; everything else returns
        # by value and simply replaces the caller's bookkeeping
        target.updatable.__dict__.update(outcome["state"])
    return outcome["result"]


def _ensure_shared(target, arrays) -> tuple:
    """Back the partition's arrays with owned shared segments (idempotent).

    ``arrays`` is the current ``(values, rowids)`` pair; when the partition
    already shares exactly these arrays nothing happens.  After a split,
    merge, or capacity growth rebinds them, the stale segments are released
    and fresh ones created — segment names are never reused, so worker-side
    attachment caches cannot go stale.
    """
    shared = target._shared
    if (shared is not None
            and shared[0].array is arrays[0]
            and shared[1].array is arrays[1]):
        return shared
    release_shared(target)
    shared = (SharedArrayBuffer.create(arrays[0]),
              SharedArrayBuffer.create(arrays[1]))
    target._shared = shared
    return shared


def release_shared(target) -> None:
    """Detach a partition from its shared segments and unlink them.

    The column keeps working afterwards: array contents are copied back
    into private memory first (a physical, uncharged move — the backend
    giving the buffers back, not the algorithm touching data).
    """
    shared = getattr(target, "_shared", None)
    if shared is None:
        return
    target._shared = None
    values_buffer, rowids_buffer = shared
    if hasattr(target, "cracked"):
        column = target.cracked
        if column.values is values_buffer.array:
            column.values = np.array(values_buffer.array, copy=True)
        if column.rowids is rowids_buffer.array:
            column.rowids = np.array(rowids_buffer.array, copy=True)
    else:
        column = target.updatable
        if column._values is values_buffer.array:
            column._values = np.array(values_buffer.array, copy=True)
        if column._rowids is rowids_buffer.array:
            column._rowids = np.array(rowids_buffer.array, copy=True)
    values_buffer.close()
    rowids_buffer.close()


def _prepare_cracked(target, operation, low, high, counters) -> dict:
    column = target.cracked
    if not column.materialised:
        # the thread worker charges the lazy cracker copy to its private
        # counters; here the caller does, to the same counters instance
        column._materialise(counters)
    shared = _ensure_shared(target, (column.values, column.rowids))
    column.values = shared[0].array
    column.rowids = shared[1].array
    return {
        "kind": "cracked",
        "operation": operation,
        "low": low,
        "high": high,
        "values_segment": shared[0].descriptor(),
        "rowids_segment": shared[1].descriptor(),
        "index": column.index,
        "sort_threshold": column.sort_threshold,
        "converged": column._converged,
        "shift": target.start,
        "counting": counters is not None,
    }


def _prepare_updatable(target, operation, low, high, counters) -> dict:
    if operation != "search":
        raise ValueError(
            f"updatable partitions only fan out 'search', not {operation!r}"
        )
    column = target.updatable
    # a query merges at most the pending inserts into the cracker arrays;
    # growing capacity now (charge-free, as _ensure_capacity always is)
    # guarantees the worker never reallocates the shared arrays
    column._ensure_capacity(column.pending_inserts)
    shared = _ensure_shared(target, (column._values, column._rowids))
    column._values = shared[0].array
    column._rowids = shared[1].array
    return {
        "kind": "updatable",
        "low": low,
        "high": high,
        "values_segment": shared[0].descriptor(),
        "rowids_segment": shared[1].descriptor(),
        "state": _updatable_state(column),
        "counting": counters is not None,
    }


def _updatable_state(column: UpdatableCrackedColumn) -> dict:
    return {
        key: value for key, value in column.__dict__.items()
        if key not in _UPDATABLE_ARRAYS
    }


# -- worker side ----------------------------------------------------------------

#: per-worker attachment cache: segment name -> buffer.  Names are unique
#: per owning process, so entries can never alias different data; the cap
#: merely bounds how many dead mappings a long-lived worker keeps around.
_ATTACH_CACHE: "OrderedDict[str, SharedArrayBuffer]" = OrderedDict()
_ATTACH_CACHE_CAP = 64


def _attached(descriptor) -> np.ndarray:
    name, dtype, shape = descriptor
    buffer = _ATTACH_CACHE.get(name)
    if buffer is None:
        buffer = SharedArrayBuffer.attach(name, dtype, shape)
        _ATTACH_CACHE[name] = buffer
        while len(_ATTACH_CACHE) > _ATTACH_CACHE_CAP:
            _, evicted = _ATTACH_CACHE.popitem(last=False)
            evicted.close()
    else:
        _ATTACH_CACHE.move_to_end(name)
    return buffer.array


def _run_task(task: dict) -> dict:
    if task["kind"] == "cracked":
        return _run_cracked(task)
    return _run_updatable(task)


def _run_cracked(task: dict) -> dict:
    values = _attached(task["values_segment"])
    rowids = _attached(task["rowids_segment"])
    column = CrackedColumn.from_fragment(
        np.empty(0, dtype=values.dtype), values, rowids, task["index"],
        sort_threshold=task["sort_threshold"],
    )
    column._converged = task["converged"]
    counters = CostCounters() if task["counting"] else None
    result = getattr(column, task["operation"])(task["low"], task["high"], counters)
    if task["operation"] == "search" and task["shift"]:
        result = result + task["shift"]
    return {
        "result": result,
        "index": column.index,
        "converged": column._converged,
        "queries": column.queries_processed,
        "counters": counters,
    }


def _run_updatable(task: dict) -> dict:
    values = _attached(task["values_segment"])
    rowids = _attached(task["rowids_segment"])
    column = UpdatableCrackedColumn.__new__(UpdatableCrackedColumn)
    column.__dict__.update(task["state"])
    column._values = values
    column._rowids = rowids
    counters = CostCounters() if task["counting"] else None
    result = column.search(task["low"], task["high"], counters)
    if column._values is not values or column._rowids is not rowids:
        raise RuntimeError(
            "worker reallocated the shared cracker arrays; the caller must "
            "pre-grow capacity by the pending-insert count before dispatch"
        )
    return {
        "result": result,
        "state": _updatable_state(column),
        "counters": counters,
    }
