"""Uniform strategy registry over baselines and adaptive indexes.

The adaptive-indexing benchmark compares a wide spectrum of techniques —
plain scans, a-priori full indexes, sort-on-first-query, database cracking
and its variants, adaptive merging and the hybrids.  To keep the engine and
the benchmark harness agnostic of which technique is in use, every technique
is wrapped as a :class:`SearchStrategy`: construct it over a column, then
call :meth:`SearchStrategy.search` for each range query.

New strategies can be plugged in with :func:`register_strategy`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.analysis_tools.guards import guarded_by
from repro.columnstore.column import Column
from repro.columnstore.select import RangePredicate, scan_select
from repro.core.cracking.cracked_column import CrackedColumn
from repro.core.cracking.stochastic import StochasticCrackedColumn
from repro.core.cracking.updates import UpdatableCrackedColumn
from repro.core.hybrids.hybrid_index import HybridIndex
from repro.core.partitioned import (
    PartitionedCrackedColumn,
    PartitionedUpdatableCrackedColumn,
)
from repro.core.merging.adaptive_merge import AdaptiveMergingIndex
from repro.cost.counters import CostCounters
from repro.indexes.full_index import FullIndex


def _as_array(column: Union[Column, np.ndarray]) -> np.ndarray:
    return column.values if isinstance(column, Column) else np.asarray(column)


@guarded_by(queries_processed="_stats_lock")
class SearchStrategy(ABC):
    """A named range-search technique over one column."""

    #: registry name; subclasses set this
    name: str = ""

    #: True when the strategy absorbs inserts/deletes/updates adaptively
    #: (exposes ``insert``/``delete``/``update``); the engine rebuilds
    #: strategies that don't after DML against their table.
    supports_updates: bool = False

    def __init__(self, column: Union[Column, np.ndarray], **options) -> None:
        self._column = column
        self._array = _as_array(column)
        self.options = options
        self.queries_processed = 0
        self._stats_lock = threading.Lock()

    @property
    def reorganizes_on_read(self) -> bool:
        """True when :meth:`search` can still mutate physical state.

        This is the capability flag the batch scheduler
        (:mod:`repro.engine.concurrency`) consults: a strategy that
        reorganises on read (cracking, merging, pending-update absorption)
        must serialize concurrent selections per access path, while a
        read-only strategy (a scan, a built full index, a converged
        adaptive structure) fans out freely.  The base class answers True —
        the conservative default for any adaptive technique; subclasses
        that are (or become) pure readers override it.  Once a strategy
        reports False it must keep reporting False, and its ``search`` must
        be free of side effects beyond lock-guarded statistics.
        """
        return True

    def note_query(self) -> None:
        """Thread-safely count one processed query.

        Read-only strategies serve concurrent readers; a bare ``+= 1`` on
        the shared counter could lose increments between threads.
        """
        with self._stats_lock:
            self.queries_processed += 1

    def __len__(self) -> int:
        return len(self._array)

    @abstractmethod
    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Positions (into the base column) of rows with ``low <= value < high``."""

    @property
    def nbytes(self) -> int:
        """Bytes of auxiliary structures held by the strategy (0 by default)."""
        return 0

    @property
    def structure_description(self) -> str:
        """One-line summary of the current physical state (for reports)."""
        return f"{self.name} over {len(self)} rows"

    def reference_search(self, low: Optional[float], high: Optional[float]) -> np.ndarray:
        """Scan-based reference answer (used by tests to validate any strategy)."""
        return scan_select(self._array, RangePredicate(low, high))

    def close(self) -> None:
        """Release execution resources (pools, shared-memory segments).

        Most strategies hold none — the base implementation is a no-op.
        The engine calls this whenever an access path is dropped or
        replaced, so strategies owning OS resources (the partitioned
        columns' fan-out pools and shared segments) must override it.
        """


class ScanStrategy(SearchStrategy):
    """Baseline: answer every query with a full scan, never build anything."""

    name = "scan"
    #: a scan reads the base column and builds nothing: pure reader
    reorganizes_on_read = False

    def search(self, low, high, counters=None):
        self.note_query()
        return scan_select(self._array, RangePredicate(low, high), counters)


class FullIndexStrategy(SearchStrategy):
    """Baseline: a full index built before the workload starts (offline indexing).

    The build cost is *not* charged to any query (it is assumed to have been
    paid offline in idle time); :attr:`build_counters` exposes it so
    experiments can report it separately.
    """

    name = "full-index"
    #: the index is immutable after construction: pure reader
    reorganizes_on_read = False

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.index = FullIndex(self._array)
        self.build_counters = self.index.build_counters

    def search(self, low, high, counters=None):
        self.note_query()
        return self.index.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.index.nbytes


class SortFirstStrategy(SearchStrategy):
    """Baseline: build the full index during the *first* query (sort-first).

    This is the "create the index when you first need it" alternative; its
    first query pays the entire sort, after which every query runs at full
    index cost.
    """

    name = "sort-first"

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.index: Optional[FullIndex] = None

    @property
    def reorganizes_on_read(self) -> bool:
        """Mutating only until the first query has built the index."""
        return self.index is None

    def search(self, low, high, counters=None):
        self.note_query()
        if self.index is None:
            self.index = FullIndex(self._array, counters=counters)
        return self.index.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.index.nbytes if self.index is not None else 0


class CrackingStrategy(SearchStrategy):
    """Standard selection cracking (CIDR 2007)."""

    name = "cracking"

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.cracked = CrackedColumn(
            column,
            sort_threshold=options.get("sort_threshold", 0),
            lazy_copy=True,
        )

    @property
    def reorganizes_on_read(self) -> bool:
        """Mutating until the cracker column becomes fully sorted."""
        return not self.cracked.converged

    def search(self, low, high, counters=None):
        self.note_query()
        return self.cracked.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.cracked.nbytes

    @property
    def structure_description(self) -> str:
        return f"cracking: {self.cracked.piece_count} pieces"


class CrackingSortedPiecesStrategy(CrackingStrategy):
    """Cracking that fully sorts pieces once they shrink below a threshold."""

    name = "cracking-sort-pieces"

    def __init__(self, column, **options):
        options.setdefault("sort_threshold", 128)
        super().__init__(column, **options)


class PartitionedCrackingStrategy(SearchStrategy):
    """Partitioned (optionally parallel) selection cracking.

    Options: ``partitions`` (shard count, default 4), ``parallel`` (fan the
    per-partition sub-selections out over a thread pool, default False),
    ``repartition`` (adaptive repartitioning under skewed query streams,
    default False) with ``max_partition_rows``/``split_threshold``,
    ``sort_threshold``, ``max_workers`` and ``executor`` (``"thread"`` or
    ``"process"`` fan-out backend) — see
    :class:`~repro.core.partitioned.PartitionedCrackedColumn`.
    """

    name = "partitioned-cracking"

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.cracked = PartitionedCrackedColumn(
            column,
            partitions=options.get("partitions", 4),
            parallel=options.get("parallel", False),
            repartition=options.get("repartition", False),
            max_partition_rows=options.get("max_partition_rows"),
            split_threshold=options.get("split_threshold", 2.0),
            sort_threshold=options.get("sort_threshold", 0),
            max_workers=options.get("max_workers"),
            executor=options.get("executor", "thread"),
        )

    def close(self) -> None:
        """Release the fan-out pool and any shared-memory segments."""
        self.cracked.close()

    @property
    def reorganizes_on_read(self) -> bool:
        """Mutating until every partition is fully sorted with known bounds
        (and always while adaptive repartitioning is on)."""
        return not self.cracked.converged

    def search(self, low, high, counters=None):
        self.note_query()
        return self.cracked.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.cracked.nbytes

    @property
    def partition_splits(self) -> int:
        return self.cracked.partition_splits

    @property
    def partition_merges(self) -> int:
        return self.cracked.partition_merges

    @property
    def structure_description(self) -> str:
        return self.cracked.structure_description


class UpdatableCrackingStrategy(SearchStrategy):
    """Selection cracking with merge-on-demand updates (SIGMOD 2007).

    Options: ``policy`` (``"ripple"`` merges every qualifying pending update,
    ``"gradual"`` merges at most ``merge_batch`` per query — default
    ``"ripple"``), ``merge_batch`` (gradual-policy budget, default 16) and
    ``sort_threshold`` — see
    :class:`~repro.core.cracking.updates.UpdatableCrackedColumn`.
    """

    name = "updatable-cracking"
    supports_updates = True
    # pending insert/delete queues merge on demand during every search, so
    # reads reorganize permanently for this strategy
    reorganizes_on_read = True

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.cracked = UpdatableCrackedColumn(
            column,
            policy=options.get("policy", "ripple"),
            merge_batch=options.get("merge_batch", 16),
            sort_threshold=options.get("sort_threshold", 0),
        )

    def search(self, low, high, counters=None):
        self.note_query()
        return self.cracked.search(low, high, counters)

    def insert(self, value, counters=None, rowid=None):
        """Queue an insert; returns the new row identifier."""
        return self.cracked.insert(value, counters, rowid=rowid)

    def delete(self, rowid, counters=None):
        """Queue the deletion of ``rowid``."""
        self.cracked.delete(rowid, counters)

    def update(self, rowid, new_value, counters=None):
        """Delete ``rowid`` and insert ``new_value``; returns the new rowid."""
        return self.cracked.update(rowid, new_value, counters)

    @property
    def nbytes(self) -> int:
        return self.cracked.nbytes

    @property
    def structure_description(self) -> str:
        return (
            f"updatable cracking ({self.cracked.policy}): "
            f"{self.cracked.piece_count} pieces, "
            f"{self.cracked.pending_inserts}+{self.cracked.pending_deletes} pending"
        )


class PartitionedUpdatableCrackingStrategy(SearchStrategy):
    """Partitioned (optionally parallel) cracking with merge-on-demand updates.

    Options: ``partitions``/``parallel``/``max_workers`` as in
    :class:`PartitionedCrackingStrategy`, ``policy``/``merge_batch`` as in
    :class:`UpdatableCrackingStrategy`, plus ``repartition`` (adaptive
    repartitioning under skewed insert streams, default False) with
    ``max_partition_rows``/``split_threshold`` — see
    :class:`~repro.core.partitioned.PartitionedUpdatableCrackedColumn`.
    """

    name = "partitioned-updatable-cracking"
    supports_updates = True
    # pending insert/delete queues merge on demand during every search, so
    # reads reorganize permanently for this strategy
    reorganizes_on_read = True

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.cracked = PartitionedUpdatableCrackedColumn(
            column,
            partitions=options.get("partitions", 4),
            parallel=options.get("parallel", False),
            repartition=options.get("repartition", False),
            max_partition_rows=options.get("max_partition_rows"),
            split_threshold=options.get("split_threshold", 2.0),
            policy=options.get("policy", "ripple"),
            merge_batch=options.get("merge_batch", 16),
            sort_threshold=options.get("sort_threshold", 0),
            max_workers=options.get("max_workers"),
            executor=options.get("executor", "thread"),
        )

    def close(self) -> None:
        """Release the fan-out pool and any shared-memory segments."""
        self.cracked.close()

    def search(self, low, high, counters=None):
        self.note_query()
        return self.cracked.search(low, high, counters)

    def insert(self, value, counters=None, rowid=None):
        """Queue an insert; returns the new row identifier."""
        if rowid is not None and rowid != self.cracked.next_rowid:
            raise ValueError(
                "partitioned updatable cracking assigns rowids sequentially; "
                f"expected {self.cracked.next_rowid}, got {rowid}"
            )
        return self.cracked.insert(value, counters)

    def delete(self, rowid, counters=None):
        """Queue the deletion of ``rowid``."""
        self.cracked.delete(rowid, counters)

    def update(self, rowid, new_value, counters=None):
        """Delete ``rowid`` and insert ``new_value``; returns the new rowid."""
        return self.cracked.update(rowid, new_value, counters)

    @property
    def nbytes(self) -> int:
        return self.cracked.nbytes

    @property
    def partition_splits(self) -> int:
        return self.cracked.partition_splits

    @property
    def partition_merges(self) -> int:
        return self.cracked.partition_merges

    @property
    def structure_description(self) -> str:
        return self.cracked.structure_description


class StochasticCrackingStrategy(SearchStrategy):
    """Stochastic cracking (random auxiliary cuts; robust to adversarial patterns)."""

    name = "stochastic-cracking"

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.cracked = StochasticCrackedColumn(
            column,
            variant=options.get("variant", "ddr"),
            size_threshold_fraction=options.get("size_threshold_fraction", 0.01),
            seed=options.get("seed", 0),
            sort_threshold=options.get("sort_threshold", 0),
        )

    @property
    def reorganizes_on_read(self) -> bool:
        """Mutating (query cracks plus auxiliary random cuts) until the
        cracker column becomes fully sorted."""
        return not self.cracked.converged

    def search(self, low, high, counters=None):
        self.note_query()
        return self.cracked.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.cracked.nbytes

    @property
    def structure_description(self) -> str:
        return f"stochastic cracking ({self.cracked.variant}): {self.cracked.piece_count} pieces"


class AdaptiveMergingStrategy(SearchStrategy):
    """Adaptive merging over sorted runs (EDBT 2010)."""

    name = "adaptive-merging"

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.index = AdaptiveMergingIndex(
            column, run_size=options.get("run_size")
        )

    @property
    def reorganizes_on_read(self) -> bool:
        """Mutating until every run has drained into the final partition."""
        return not self.index.fully_merged

    def search(self, low, high, counters=None):
        self.note_query()
        return self.index.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.index.nbytes

    @property
    def structure_description(self) -> str:
        return (
            f"adaptive merging: {self.index.run_count} runs left, "
            f"{len(self.index.final_values)} tuples merged"
        )


class _HybridStrategyBase(SearchStrategy):
    """Shared implementation of the hybrid strategies."""

    initial_mode = "crack"
    final_mode = "sort"

    def __init__(self, column, **options):
        super().__init__(column, **options)
        self.index = HybridIndex(
            column,
            initial_mode=options.get("initial_mode", self.initial_mode),
            final_mode=options.get("final_mode", self.final_mode),
            partition_size=options.get("partition_size"),
            radix_bits=options.get("radix_bits", 4),
        )

    @property
    def reorganizes_on_read(self) -> bool:
        """Mutating until the hybrid converges: all tuples merged into the
        final partition *and* every final piece sorted (crack/radix final
        pieces keep cracking on partial overlap and never converge)."""
        return not self.index.read_only_under_selection

    def search(self, low, high, counters=None):
        self.note_query()
        return self.index.search(low, high, counters)

    @property
    def nbytes(self) -> int:
        return self.index.nbytes

    @property
    def structure_description(self) -> str:
        return (
            f"{self.name}: {len(self.index.final)} tuples in final partition "
            f"({self.index.final.piece_count} pieces)"
        )


class HybridCrackCrackStrategy(_HybridStrategyBase):
    """Hybrid crack-crack (HCC): lazy everywhere, closest to plain cracking."""

    name = "hybrid-crack-crack"
    initial_mode = "crack"
    final_mode = "crack"


class HybridCrackSortStrategy(_HybridStrategyBase):
    """Hybrid crack-sort (HCS): lazy initial partitions, sorted final pieces."""

    name = "hybrid-crack-sort"
    initial_mode = "crack"
    final_mode = "sort"


class HybridCrackRadixStrategy(_HybridStrategyBase):
    """Hybrid crack-radix (HCR): lazy initial partitions, radix-clustered final pieces."""

    name = "hybrid-crack-radix"
    initial_mode = "crack"
    final_mode = "radix"


class HybridSortSortStrategy(_HybridStrategyBase):
    """Hybrid sort-sort (HSS): sorted runs + sorted final pieces (adaptive merging)."""

    name = "hybrid-sort-sort"
    initial_mode = "sort"
    final_mode = "sort"


class HybridRadixRadixStrategy(_HybridStrategyBase):
    """Hybrid radix-radix (HRR): radix-clustered initial and final partitions."""

    name = "hybrid-radix-radix"
    initial_mode = "radix"
    final_mode = "radix"


_REGISTRY: Dict[str, Callable[..., SearchStrategy]] = {}


def register_strategy(name: str, factory: Callable[..., SearchStrategy]) -> None:
    """Register a strategy factory under ``name`` (overwrites existing names)."""
    if not name:
        raise ValueError("strategy name must be non-empty")
    _REGISTRY[name] = factory


def available_strategies() -> List[str]:
    """Names of all registered strategies, sorted."""
    return sorted(_REGISTRY)


def create_strategy(
    name: str, column: Union[Column, np.ndarray], **options
) -> SearchStrategy:
    """Instantiate the strategy registered under ``name`` over ``column``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None
    return factory(column, **options)


for _cls in (
    ScanStrategy,
    FullIndexStrategy,
    SortFirstStrategy,
    CrackingStrategy,
    CrackingSortedPiecesStrategy,
    PartitionedCrackingStrategy,
    UpdatableCrackingStrategy,
    PartitionedUpdatableCrackingStrategy,
    StochasticCrackingStrategy,
    AdaptiveMergingStrategy,
    HybridCrackCrackStrategy,
    HybridCrackSortStrategy,
    HybridCrackRadixStrategy,
    HybridSortSortStrategy,
    HybridRadixRadixStrategy,
):
    register_strategy(_cls.name, _cls)
