"""Cost accounting and instrumentation.

Every operator and index strategy in the library reports its work through a
:class:`~repro.cost.counters.CostCounters` instance.  The counters are
deterministic (tuples scanned, tuples moved, comparisons, random accesses,
bytes allocated) so experiment *shapes* are machine independent, while the
:class:`~repro.cost.timer.Timer` provides wall-clock measurements for the
benchmark harness.

The :class:`~repro.cost.model.CostModel` converts logical counters into an
abstract cost figure with configurable weights, which is how the disk-based
trade-offs of adaptive merging are studied without a disk (see DESIGN.md,
substitution table).
"""

from repro.cost.counters import CostCounters
from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL, DISK_MODEL
from repro.cost.stats import QueryStatistics, WorkloadStatistics
from repro.cost.timer import Timer
from repro.cost.witness import (
    CostConformanceViolation,
    CostConformanceWitness,
    cost_witness,
    disable_cost_witness,
    enable_cost_witness,
)

__all__ = [
    "CostConformanceViolation",
    "CostConformanceWitness",
    "CostCounters",
    "CostModel",
    "DEFAULT_MAIN_MEMORY_MODEL",
    "DISK_MODEL",
    "QueryStatistics",
    "WorkloadStatistics",
    "Timer",
    "cost_witness",
    "disable_cost_witness",
    "enable_cost_witness",
]
