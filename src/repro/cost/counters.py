"""Deterministic logical cost counters.

The adaptive-indexing literature reports results as response times on a
specific machine.  A Python reproduction cannot match those absolute numbers,
but the *shape* of every curve (first-query overhead, convergence, crossover
points) is determined by how much data each algorithm touches.  The counters
in this module capture exactly that: every operator and every index strategy
increments the counters of the :class:`CostCounters` instance it was given.

Counters are plain integers and support addition, subtraction (for deltas),
snapshots and dictionary export.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CostCounters:
    """Mutable bundle of logical work counters.

    Attributes
    ----------
    tuples_scanned:
        Number of tuples read sequentially (scans, filters, merges reading
        their input).
    tuples_moved:
        Number of tuples physically relocated (cracking swaps, partitioning,
        merge output, sort movements).
    comparisons:
        Number of value comparisons performed by index navigation, binary
        search and sorting.  Vectorised filters count one comparison per
        element examined.
    random_accesses:
        Number of non-sequential accesses (index probes, piece lookups,
        scattered fetches during tuple reconstruction).
    bytes_allocated:
        Bytes of auxiliary memory allocated (cracker columns, runs, maps).
    pieces_created:
        Number of index pieces/partitions created (cracker pieces, runs,
        merged ranges); a structural counter used by convergence analyses.
    """

    tuples_scanned: int = 0
    tuples_moved: int = 0
    comparisons: int = 0
    random_accesses: int = 0
    bytes_allocated: int = 0
    pieces_created: int = 0

    extra: dict = field(default_factory=dict)

    # -- recording helpers -------------------------------------------------

    def record_scan(self, count: int) -> None:
        """Record ``count`` tuples read sequentially."""
        self.tuples_scanned += int(count)

    def record_move(self, count: int) -> None:
        """Record ``count`` tuples physically relocated."""
        self.tuples_moved += int(count)

    def record_comparisons(self, count: int) -> None:
        """Record ``count`` value comparisons."""
        self.comparisons += int(count)

    def record_random_access(self, count: int = 1) -> None:
        """Record ``count`` non-sequential accesses."""
        self.random_accesses += int(count)

    def record_allocation(self, nbytes: int) -> None:
        """Record ``nbytes`` bytes of auxiliary memory allocated."""
        self.bytes_allocated += int(nbytes)

    def record_pieces(self, count: int = 1) -> None:
        """Record creation of ``count`` new index pieces."""
        self.pieces_created += int(count)

    def record_extra(self, name: str, count: int = 1) -> None:
        """Record an ad-hoc named counter (kept in :attr:`extra`)."""
        self.extra[name] = self.extra.get(name, 0) + int(count)

    # -- arithmetic --------------------------------------------------------

    def _numeric_fields(self):
        return [f.name for f in fields(self) if f.name != "extra"]

    def copy(self) -> "CostCounters":
        """Return an independent snapshot of the current counters."""
        snapshot = CostCounters(
            **{name: getattr(self, name) for name in self._numeric_fields()}
        )
        snapshot.extra = dict(self.extra)
        return snapshot

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self._numeric_fields():
            setattr(self, name, 0)
        self.extra.clear()

    def __add__(self, other: "CostCounters") -> "CostCounters":
        if not isinstance(other, CostCounters):
            return NotImplemented
        result = CostCounters(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self._numeric_fields()
            }
        )
        result.extra = dict(self.extra)
        for key, value in other.extra.items():
            result.extra[key] = result.extra.get(key, 0) + value
        return result

    def __sub__(self, other: "CostCounters") -> "CostCounters":
        if not isinstance(other, CostCounters):
            return NotImplemented
        result = CostCounters(
            **{
                name: getattr(self, name) - getattr(other, name)
                for name in self._numeric_fields()
            }
        )
        result.extra = {
            key: self.extra.get(key, 0) - other.extra.get(key, 0)
            for key in set(self.extra) | set(other.extra)
        }
        return result

    def __iadd__(self, other: "CostCounters") -> "CostCounters":
        if not isinstance(other, CostCounters):
            return NotImplemented
        for name in self._numeric_fields():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
        return self

    # -- export ------------------------------------------------------------

    def total_touched(self) -> int:
        """Total tuples touched: scanned plus moved plus random accesses."""
        return self.tuples_scanned + self.tuples_moved + self.random_accesses

    def as_dict(self) -> dict:
        """Export all counters (including extras) as a flat dictionary."""
        result = {name: getattr(self, name) for name in self._numeric_fields()}
        result.update(self.extra)
        return result

    def is_zero(self) -> bool:
        """Return True when every counter (including extras) is zero."""
        return all(value == 0 for value in self.as_dict().values())
