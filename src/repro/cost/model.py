"""Abstract cost model converting logical counters into cost units.

The adaptive-merging work (Graefe & Kuno, EDBT 2010) targets disk-based
environments where sequential and random accesses have very different prices,
while database cracking (Idreos et al., CIDR 2007) targets main-memory
column-stores where moves and comparisons dominate.  A :class:`CostModel`
assigns a weight to each logical counter so both environments can be studied
with the same deterministic counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.counters import CostCounters


@dataclass(frozen=True)
class CostModel:
    """Weights applied to :class:`~repro.cost.counters.CostCounters`.

    The unit is abstract; only ratios matter.  Weights roughly follow the
    classical assumptions: in main memory a random access costs about an
    order of magnitude more than a sequential one (cache miss vs streaming),
    on disk the gap is three to four orders of magnitude.
    """

    name: str = "main-memory"
    scan_weight: float = 1.0
    move_weight: float = 2.0
    comparison_weight: float = 1.0
    random_access_weight: float = 10.0
    byte_weight: float = 0.0
    piece_weight: float = 0.0

    def cost(self, counters: CostCounters) -> float:
        """Return the weighted cost of the given counters."""
        return (
            self.scan_weight * counters.tuples_scanned
            + self.move_weight * counters.tuples_moved
            + self.comparison_weight * counters.comparisons
            + self.random_access_weight * counters.random_accesses
            + self.byte_weight * counters.bytes_allocated
            + self.piece_weight * counters.pieces_created
        )

    def cost_of(self, **counter_values: int) -> float:
        """Convenience: compute the cost of ad-hoc counter values."""
        counters = CostCounters()
        for name, value in counter_values.items():
            if not hasattr(counters, name):
                raise ValueError(f"unknown counter {name!r}")
            setattr(counters, name, value)
        return self.cost(counters)


#: Cost model for in-memory column-store execution (cracking's home turf).
DEFAULT_MAIN_MEMORY_MODEL = CostModel(
    name="main-memory",
    scan_weight=1.0,
    move_weight=2.0,
    comparison_weight=1.0,
    random_access_weight=10.0,
)

#: Cost model approximating a disk-based environment (adaptive merging's
#: home turf): random accesses are drastically more expensive and data
#: movement is charged as sequential I/O.
DISK_MODEL = CostModel(
    name="disk",
    scan_weight=1.0,
    move_weight=1.5,
    comparison_weight=0.01,
    random_access_weight=1000.0,
)
