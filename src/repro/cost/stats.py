"""Per-query and per-workload statistics containers.

These containers are produced by the engine (:mod:`repro.engine`) and by the
adaptive-indexing benchmark harness (:mod:`repro.workloads.benchmark`).  They
record, for every query of a workload, the wall-clock time, the logical cost
counters, and the result cardinality — everything the experiments in
EXPERIMENTS.md need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.cost.counters import CostCounters
from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL


@dataclass
class QueryStatistics:
    """Statistics of a single executed query."""

    query_index: int
    elapsed_seconds: float
    counters: CostCounters
    result_count: int = 0
    strategy: str = ""
    description: str = ""

    def logical_cost(self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL) -> float:
        """Weighted logical cost under the given cost model."""
        return model.cost(self.counters)

    def as_dict(self) -> dict:
        record = {
            "query_index": self.query_index,
            "elapsed_seconds": self.elapsed_seconds,
            "result_count": self.result_count,
            "strategy": self.strategy,
            "description": self.description,
        }
        record.update(self.counters.as_dict())
        return record


@dataclass
class WorkloadStatistics:
    """Statistics of a full query sequence executed against one strategy."""

    strategy: str = ""
    queries: List[QueryStatistics] = field(default_factory=list)

    def append(self, stats: QueryStatistics) -> None:
        self.queries.append(stats)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    # -- aggregates ----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(q.elapsed_seconds for q in self.queries)

    @property
    def per_query_seconds(self) -> List[float]:
        return [q.elapsed_seconds for q in self.queries]

    def cumulative_seconds(self) -> List[float]:
        """Running sum of per-query wall-clock times."""
        total = 0.0
        cumulative = []
        for query in self.queries:
            total += query.elapsed_seconds
            cumulative.append(total)
        return cumulative

    def per_query_cost(
        self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL
    ) -> List[float]:
        """Per-query logical cost under ``model``."""
        return [q.logical_cost(model) for q in self.queries]

    def cumulative_cost(
        self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL
    ) -> List[float]:
        """Running sum of per-query logical cost under ``model``."""
        total = 0.0
        cumulative = []
        for query in self.queries:
            total += query.logical_cost(model)
            cumulative.append(total)
        return cumulative

    def total_counters(self) -> CostCounters:
        """Sum of the logical counters over the whole workload."""
        total = CostCounters()
        for query in self.queries:
            total += query.counters
        return total

    def first_query_cost(
        self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL
    ) -> Optional[float]:
        """Logical cost of the first query (None for an empty workload).

        This is metric (1) of the adaptive-indexing benchmark
        (Graefe et al., TPCTC 2010): the initialization cost incurred by the
        first query.
        """
        if not self.queries:
            return None
        return self.queries[0].logical_cost(model)

    def convergence_query(
        self,
        reference_cost: float,
        tolerance: float = 1.1,
        model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
        consecutive: int = 5,
    ) -> Optional[int]:
        """Index of the query after which cost stays within tolerance.

        This is metric (2) of the adaptive-indexing benchmark: the number of
        queries processed before a random query is answered at (near) full
        index cost.  A strategy *converged* at query ``i`` when queries
        ``i .. i+consecutive-1`` all cost at most ``tolerance *
        reference_cost``.  Returns ``None`` when convergence is never
        reached.
        """
        if reference_cost <= 0:
            raise ValueError("reference_cost must be positive")
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        costs = self.per_query_cost(model)
        threshold = tolerance * reference_cost
        run = 0
        for index, cost in enumerate(costs):
            if cost <= threshold:
                run += 1
                if run >= consecutive:
                    return index - consecutive + 1
            else:
                run = 0
        return None

    def as_records(self) -> List[dict]:
        """Export one dictionary per query (for tabular output)."""
        return [q.as_dict() for q in self.queries]


def merge_workload_statistics(
    parts: Iterable[WorkloadStatistics], strategy: str = ""
) -> WorkloadStatistics:
    """Concatenate several workload statistics into one (re-indexing queries)."""
    merged = WorkloadStatistics(strategy=strategy)
    index = 0
    for part in parts:
        for query in part.queries:
            merged.append(
                QueryStatistics(
                    query_index=index,
                    elapsed_seconds=query.elapsed_seconds,
                    counters=query.counters.copy(),
                    result_count=query.result_count,
                    strategy=strategy or query.strategy,
                    description=query.description,
                )
            )
            index += 1
    return merged
