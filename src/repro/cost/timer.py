"""Wall-clock timing utilities."""

from __future__ import annotations

import time


class Timer:
    """Context manager and accumulator for wall-clock timings.

    >>> timer = Timer()
    >>> with timer:
    ...     sum(range(1000))
    499500
    >>> timer.elapsed > 0
    True

    The same timer can be re-entered; :attr:`total` accumulates across
    entries while :attr:`elapsed` reports the most recent interval.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.total = 0.0
        self.entries = 0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        end = time.perf_counter()
        self.elapsed = end - self._start
        self.total += self.elapsed
        self.entries += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean interval length across all entries (0.0 when unused)."""
        if self.entries == 0:
            return 0.0
        return self.total / self.entries

    def reset(self) -> None:
        """Clear all accumulated timings."""
        self.elapsed = 0.0
        self.total = 0.0
        self.entries = 0
        self._start = None
