"""Runtime cost-conformance witness.

The static analyzer (:mod:`repro.analysis_tools.reproperf`, rule PF003)
checks the ``@charges`` contracts lexically; the witness checks the cost
model *dynamically*, across every call boundary at once.  Around each query
the engine executes, the witness fingerprints the physical structures the
plan dispatches through (structure description, auxiliary bytes, row count)
and compares the fingerprints with the query's
:class:`~repro.cost.counters.CostCounters`:

* **free reorganization** — an access path changed physically while the
  query charged zero comparisons *and* zero tuple movements.  Adaptive
  indexing pays for reorganisation out of query work; a structural change
  with an empty bill means some kernel forgot to charge.
* **counter regression** — any counter is negative after the query.  The
  counters are monotone tallies; a negative value means a kernel
  *subtracted* work (or double-snapshotted), which silently corrupts every
  downstream experiment curve.

Off by default with zero overhead beyond one global read per query; enabled
by ``REPRO_COST_WITNESS=1`` (raise) / ``=log`` (warn only) or
programmatically via :func:`enable_cost_witness`.  The hook site is
``Database._execute_single``, which already runs under the session's path
locks, so fingerprints are race-free snapshots.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Iterable, List, Optional, Tuple

from repro.cost.counters import CostCounters

logger = logging.getLogger(__name__)

__all__ = [
    "CostConformanceViolation",
    "CostConformanceWitness",
    "cost_witness",
    "enable_cost_witness",
    "disable_cost_witness",
]


class CostConformanceViolation(RuntimeError):
    """A query's cost counters contradict the observed physical work."""


#: counter fields checked for regression (negative values)
_COUNTER_FIELDS = (
    "tuples_scanned",
    "tuples_moved",
    "comparisons",
    "random_accesses",
    "bytes_allocated",
    "pieces_created",
)


def _fingerprint(path: object) -> Optional[Tuple[str, int, int]]:
    """A cheap, comparable snapshot of an access path's physical state.

    ``(structure description, auxiliary bytes, row count)`` — any physical
    reorganisation the library performs (cracking a piece, merging a range,
    splitting a partition, rippling a pending update) changes at least one
    component.  Returns None for objects that expose none of the three
    (plain scans have no auxiliary structure to fingerprint).
    """
    if path is None:
        return None
    description = getattr(path, "structure_description", None)
    nbytes = getattr(path, "nbytes", None)
    try:
        length = len(path)  # type: ignore[arg-type]
    except TypeError:
        length = -1
    if description is None and nbytes is None and length == -1:
        return None
    return (
        str(description) if description is not None else "",
        int(nbytes) if nbytes is not None else -1,
        length,
    )


class CostConformanceWitness:
    """Compares per-query counters against observed structural change."""

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "log"):
            raise ValueError(f"witness mode must be 'raise' or 'log', got {mode!r}")
        self.mode = mode
        self._lock = threading.Lock()
        #: violation messages (also raised in ``raise`` mode)
        self._violations: List[str] = []
        self.queries_checked = 0

    # -- the two hook points ----------------------------------------------------

    def before(
        self, paths: Iterable[Tuple[str, str, object]]
    ) -> List[Tuple[str, object, Optional[Tuple[str, int, int]]]]:
        """Fingerprint every access path a plan dispatches through.

        ``paths`` yields ``(table, column, path_object)`` triples; the
        returned snapshot list is opaque to callers and fed back to
        :meth:`after`.
        """
        snapshots = []
        for table, column, path in paths:
            snapshots.append((f"{table}.{column}", path, _fingerprint(path)))
        return snapshots

    def after(
        self,
        description: str,
        snapshots: List[Tuple[str, object, Optional[Tuple[str, int, int]]]],
        counters: Optional[CostCounters],
    ) -> None:
        """Check the executed query's counters against the fresh fingerprints."""
        with self._lock:
            self.queries_checked += 1
        if counters is not None:
            negative = [
                (field, getattr(counters, field))
                for field in _COUNTER_FIELDS
                if getattr(counters, field) < 0
            ]
            if negative:
                detail = ", ".join(f"{name}={value}" for name, value in negative)
                self._report(
                    f"cost-conformance violation: counters regressed after "
                    f"query {description!r}: {detail} (counters are monotone "
                    f"tallies; a kernel subtracted work)"
                )
        paid = counters is None or (
            counters.comparisons > 0 or counters.tuples_moved > 0
        )
        if paid:
            return
        for key, path, before in snapshots:
            if before is None:
                continue
            after = _fingerprint(path)
            if after != before:
                self._report(
                    f"cost-conformance violation: access path {key} "
                    f"reorganized for free during query {description!r}: "
                    f"{before!r} -> {after!r} with zero comparisons and zero "
                    f"tuple movements charged (some kernel forgot its "
                    f"@charges bill)"
                )

    # -- reporting ---------------------------------------------------------------

    def violations(self) -> List[str]:
        """Messages recorded so far (useful in ``log`` mode)."""
        with self._lock:
            return list(self._violations)

    def _report(self, message: str) -> None:
        with self._lock:
            self._violations.append(message)
        if self.mode == "raise":
            raise CostConformanceViolation(message)
        logger.warning(message)


_WITNESS: Optional[CostConformanceWitness] = None


def cost_witness() -> Optional[CostConformanceWitness]:
    """The active witness, or None when witnessing is disabled."""
    return _WITNESS


def enable_cost_witness(mode: str = "raise") -> CostConformanceWitness:
    """Install (and return) a fresh witness; replaces any previous one."""
    global _WITNESS
    _WITNESS = CostConformanceWitness(mode)
    return _WITNESS


def disable_cost_witness() -> None:
    """Remove the active witness (the query hook reverts to a no-op)."""
    global _WITNESS
    _WITNESS = None


_env_witness = os.environ.get("REPRO_COST_WITNESS", "").strip().lower()
if _env_witness in {"1", "true", "raise", "strict"}:
    enable_cost_witness("raise")
elif _env_witness in {"log", "warn"}:
    enable_cost_witness("log")
del _env_witness
