"""Durability: write-ahead journal, snapshots, crash recovery, faults.

The engine stays purely in-memory by default; passing ``data_dir`` to
:class:`~repro.engine.database.Database` (or opening one with
``Database.open``) attaches this subsystem — every DML and schema
operation is journaled in linearization order *before* its commit
releases the table gate, snapshots bound replay time, and recovery
rebuilds bit-identical state through the ordinary session path.  See
``docs/DURABILITY.md``.
"""

from repro.durability.faults import FaultInjector, FaultyFile, KilledByFault
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    has_durable_state,
)
from repro.durability.record import ColumnDump, WalRecord
from repro.durability.recovery import RecoveryError, RecoveryReport, recover
from repro.durability.snapshot import (
    SnapshotCorruptionError,
    SnapshotState,
    SnapshotStore,
)
from repro.durability.wal import WalCorruptionError, WriteAheadLog

__all__ = [
    "ColumnDump",
    "DurabilityConfig",
    "DurabilityManager",
    "FaultInjector",
    "FaultyFile",
    "KilledByFault",
    "RecoveryError",
    "RecoveryReport",
    "SnapshotCorruptionError",
    "SnapshotState",
    "SnapshotStore",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
    "has_durable_state",
    "recover",
]
