"""Crash-fault injection for the durability layer.

The WAL and snapshot writers route every file open through an injectable
:class:`FaultInjector`, so tests can simulate a crash at an arbitrary byte
offset (a torn write: the prefix reaches the disk, the rest never does)
or at a named kill point (e.g. the instant before a snapshot's atomic
rename).  A simulated crash raises :class:`KilledByFault`; from then on
the injector drops *every* further write silently — the process is
"dead", nothing after the crash point may reach the disk — so the files
left behind are exactly what a real crash would leave.

Corruption (bit rot, a misdirected write) is injected separately with
:meth:`FaultInjector.corrupt_file` / post-hoc file edits in the tests:
unlike a torn tail it must make recovery fail *loudly*.
"""

from __future__ import annotations

import os
import threading
from typing import Optional


class KilledByFault(RuntimeError):
    """The simulated crash: raised at the injected fault point."""


class FaultInjector:
    """Controls where the simulated crash happens.

    ``fail_after_bytes=n`` kills the process-under-test after ``n`` more
    bytes have been written through injected files: the write that crosses
    the threshold persists only its first bytes up to it (a torn write).
    ``kill_at="name"`` kills at the named kill point instead
    (:meth:`kill_point` calls are placed at the durability layer's
    crash-interesting instants, e.g. ``"snapshot.before_rename"``).
    """

    def __init__(
        self,
        fail_after_bytes: Optional[int] = None,
        kill_at: Optional[str] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._remaining = fail_after_bytes
        self._kill_at = kill_at
        self.killed = False
        self.kill_points_seen = []

    # -- crash machinery ---------------------------------------------------

    def _kill(self) -> None:
        self.killed = True
        raise KilledByFault("fault injector killed the process under test")

    def kill_point(self, name: str) -> None:
        """Crash here when this named point is armed (no-op otherwise)."""
        with self._lock:
            self.kill_points_seen.append(name)
            if self.killed or self._kill_at == name:
                self._kill()

    def consume(self, data: bytes) -> bytes:
        """Account ``data`` against the byte budget; returns the surviving
        prefix and crashes when the budget is exhausted."""
        with self._lock:
            if self.killed:
                self._kill()
            if self._remaining is None:
                return data
            if self._remaining >= len(data):
                self._remaining -= len(data)
                return data
            survivor = data[: self._remaining]
            self._remaining = 0
            self.killed = True
            if survivor:
                return survivor  # caller writes the torn prefix, then dies
            raise KilledByFault("fault injector killed the process under test")

    def check_alive(self) -> None:
        with self._lock:
            if self.killed:
                self._kill()

    # -- file plumbing -----------------------------------------------------

    def open(self, path, mode: str) -> "FaultyFile":
        """Open ``path`` wrapped so writes flow through this injector."""
        self.check_alive()
        return FaultyFile(open(path, mode, buffering=0), self)

    @staticmethod
    def corrupt_file(path, offset: int, flip: int = 0xFF) -> None:
        """XOR one byte of ``path`` at ``offset`` (simulated bit rot)."""
        with open(path, "r+b") as handle:
            handle.seek(offset)
            original = handle.read(1)
            if not original:
                raise ValueError(f"offset {offset} beyond end of {path}")
            handle.seek(offset)
            handle.write(bytes([original[0] ^ flip]))


class FaultyFile:
    """An unbuffered binary file whose writes can be torn or dropped.

    A write that crosses the injector's byte budget persists its surviving
    prefix (the bytes "already handed to the disk") and then raises
    :class:`KilledByFault`; once the injector is dead every further write,
    flush and fsync is dropped before touching the file.
    """

    def __init__(self, handle, injector: FaultInjector) -> None:
        self._handle = handle
        self._injector = injector

    def write(self, data: bytes) -> int:
        try:
            survivor = self._injector.consume(bytes(data))
        except KilledByFault:
            raise
        self._handle.write(survivor)
        if len(survivor) < len(data):
            self._handle.flush()
            raise KilledByFault(
                "fault injector tore the write after "
                f"{len(survivor)} of {len(data)} bytes"
            )
        return len(data)

    def flush(self) -> None:
        self._injector.check_alive()
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def fsync(self) -> None:
        self._injector.check_alive()
        os.fsync(self._handle.fileno())

    def tell(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        # closing is always allowed: a dead process's descriptors close too
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class _DirectFile:
    """The no-injector fast path: a plain unbuffered file plus fsync."""

    __slots__ = ("_handle",)

    def __init__(self, handle) -> None:
        self._handle = handle

    def write(self, data: bytes) -> int:
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def fsync(self) -> None:
        os.fsync(self._handle.fileno())

    def tell(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "_DirectFile":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def open_durable(path, mode: str, injector: Optional[FaultInjector]):
    """Open a durability-layer file, routed through ``injector`` if armed."""
    if injector is not None:
        return injector.open(path, mode)
    return _DirectFile(open(path, mode, buffering=0))


def kill_point(injector: Optional[FaultInjector], name: str) -> None:
    """Fire a named kill point when an injector is armed (no-op otherwise)."""
    if injector is not None:
        injector.kill_point(name)
