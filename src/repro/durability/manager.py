"""The durability manager: one object the engine talks to.

A :class:`DurabilityManager` owns a data directory's write-ahead log and
snapshot store.  The engine's contract with it is small:

* :meth:`append_record` — called by sessions *inside* the table's write
  gate, after the operation mutated the store and was stamped with its
  linearization sequence, *before* the gate is released.  That ordering
  is the whole WAL guarantee: once any other operation can observe the
  change, the journal already has it (to the configured sync level).
* :meth:`snapshot_due` — a cheap threshold check sessions make *after*
  releasing the gate, so the (expensive, all-table-gated) snapshot never
  runs inside a DML critical section.
* :meth:`write_snapshot` — persists a state dump, then truncates the
  journal through its high-water mark and prunes old snapshots.

Layout under ``data_dir``::

    wal/wal-00000000.seg ...        the journal segments
    snapshots/snapshot-....snap     full-state dumps
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.durability.faults import FaultInjector
from repro.durability.record import WalRecord
from repro.durability.snapshot import (
    SNAPSHOT_SUBDIR,
    SnapshotState,
    SnapshotStore,
)
from repro.durability.wal import WAL_SUBDIR, WalScan, WriteAheadLog


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs for the journal and the snapshot policy."""

    #: fsync policy: "always" | "batch" | "off" (see wal.py)
    sync: str = "batch"
    #: appends per group commit under sync="batch"
    batch_size: int = 32
    #: rotate the journal segment once it exceeds this many bytes
    segment_bytes: int = 4 << 20
    #: auto-snapshot after this many journaled operations (None = manual)
    snapshot_every_ops: Optional[int] = None
    #: auto-snapshot once the journal exceeds this many bytes (None = off)
    snapshot_wal_bytes: Optional[int] = None
    #: snapshots retained after a successful new one
    keep_snapshots: int = 2

    def __post_init__(self) -> None:
        if self.snapshot_every_ops is not None and self.snapshot_every_ops < 1:
            raise ValueError(
                f"snapshot_every_ops must be >= 1, got {self.snapshot_every_ops}"
            )
        if self.snapshot_wal_bytes is not None and self.snapshot_wal_bytes < 1:
            raise ValueError(
                f"snapshot_wal_bytes must be >= 1, got {self.snapshot_wal_bytes}"
            )


def wal_directory(data_dir: Path) -> Path:
    return Path(data_dir) / WAL_SUBDIR


def snapshot_directory(data_dir: Path) -> Path:
    return Path(data_dir) / SNAPSHOT_SUBDIR


def has_durable_state(data_dir: Path) -> bool:
    """True when ``data_dir`` already holds journal segments or snapshots."""
    data_dir = Path(data_dir)
    wal_dir = wal_directory(data_dir)
    snap_dir = snapshot_directory(data_dir)
    return any(wal_dir.glob("wal-*.seg")) or any(
        snap_dir.glob("snapshot-*.snap")
    )


class DurabilityManager:
    """Journal + snapshot store for one database's data directory."""

    def __init__(
        self,
        data_dir: Path,
        config: Optional[DurabilityConfig] = None,
        injector: Optional[FaultInjector] = None,
        scan: Optional[WalScan] = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.config = config or DurabilityConfig()
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(
            wal_directory(self.data_dir),
            sync=self.config.sync,
            batch_size=self.config.batch_size,
            segment_bytes=self.config.segment_bytes,
            injector=injector,
            scan=scan,
        )
        self.snapshots = SnapshotStore(
            snapshot_directory(self.data_dir),
            keep=self.config.keep_snapshots,
            injector=injector,
        )
        # ops/bytes since the last snapshot drive the auto-snapshot policy;
        # guarded by _lock (append runs under table gates, the snapshot
        # writer runs under all of them — this mutex keeps the counters
        # coherent without widening either critical section)
        self._lock = threading.Lock()
        self._ops_since_snapshot = 0
        self._bytes_since_snapshot = 0
        self._snapshots_written = 0

    # -- the engine-facing hooks ------------------------------------------

    def append_record(self, record: WalRecord) -> None:
        """Journal one operation (the caller holds the table write gate)."""
        nbytes = self.wal.append(record)
        with self._lock:
            self._ops_since_snapshot += 1
            self._bytes_since_snapshot += nbytes

    def snapshot_due(self) -> bool:
        """Cheap check: has a size/ops threshold been crossed?"""
        config = self.config
        with self._lock:
            if (
                config.snapshot_every_ops is not None
                and self._ops_since_snapshot >= config.snapshot_every_ops
            ):
                return True
            if (
                config.snapshot_wal_bytes is not None
                and self._bytes_since_snapshot >= config.snapshot_wal_bytes
            ):
                return True
        return False

    def write_snapshot(self, state: SnapshotState) -> Path:
        """Persist ``state``, truncate the journal, prune old snapshots."""
        path = self.snapshots.write(state)
        self.wal.truncate_through(state.high_water)
        with self._lock:
            self._ops_since_snapshot = 0
            self._bytes_since_snapshot = 0
            self._snapshots_written += 1
        return path

    def seed_backlog(self, ops: int, nbytes: int = 0) -> None:
        """Count journal records that predate this manager (recovery
        replayed them but no snapshot covers them yet) toward the
        auto-snapshot thresholds — both the op count and the framed byte
        size of the surviving WAL tail, so ``snapshot_wal_bytes`` does not
        undercount until the first post-recovery snapshot."""
        with self._lock:
            self._ops_since_snapshot += int(ops)
            self._bytes_since_snapshot += int(nbytes)

    # -- lifecycle ---------------------------------------------------------

    def sync(self) -> None:
        """Force the journal to disk (flushes a pending group commit)."""
        self.wal.sync()

    def close(self) -> None:
        self.wal.close()

    def stats(self) -> Dict[str, int]:
        report = self.wal.stats()
        with self._lock:
            report["ops_since_snapshot"] = self._ops_since_snapshot
            report["snapshots_written"] = self._snapshots_written
        return report
