"""Wire format of the write-ahead journal: framed, checksummed records.

One :class:`WalRecord` serializes one linearized engine operation (the
durable subset of :class:`~repro.engine.session.OperationRecord`: DML and
schema changes — queries refine indexes but never change logical state, so
they are not journaled).  Records are written as self-delimiting frames::

    +----------------+----------------+========================+
    | length  u32 LE | crc32   u32 LE | payload (length bytes) |
    +----------------+----------------+========================+

The checksum covers the payload only, so a torn header, a torn payload and
a corrupted payload are three distinguishable failure modes
(:class:`FrameError` reports which one, at which byte offset, and whether
the frame's bytes were all present).  :func:`scan_frames` decodes a byte
buffer into the longest valid prefix of frames plus the first error, if
any — the recovery policy built on top (torn tail tolerated, mid-log
corruption fatal) lives in :mod:`repro.durability.wal`.

Payload layout (all little-endian)::

    kind      u8                    (see RECORD_KINDS)
    sequence  u64                   linearization sequence number
    table     u16 length + utf-8
    ...       kind-specific fields

Inserts and updates carry the rowid the original execution assigned, so
replay can *verify* (not just hope) that the recovered database makes the
same decision.  ``create_table`` carries the full initial column arrays —
a table born from data must be reconstructible from the journal alone when
no snapshot covers it.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.columnstore.types import DataType, dtype_by_name

FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: durable operation kinds -> wire tag
RECORD_KINDS: Dict[str, int] = {
    "insert": 1,
    "delete": 2,
    "update": 3,
    "create_table": 4,
    "drop_table": 5,
    "set_indexing": 6,
}
_KIND_BY_TAG = {tag: kind for kind, tag in RECORD_KINDS.items()}

_VALUE_INT = 0  # encoded <q
_VALUE_FLOAT = 1  # encoded <d

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class RecordFormatError(ValueError):
    """A payload that cannot be decoded (unknown kind, bad structure)."""


@dataclass(frozen=True)
class ColumnDump:
    """One column's data inside a ``create_table`` record."""

    name: str
    dtype: DataType
    values: np.ndarray

    def __eq__(self, other) -> bool:  # arrays need elementwise comparison
        return (
            isinstance(other, ColumnDump)
            and self.name == other.name
            and self.dtype.name == other.dtype.name
            and np.array_equal(self.values, other.values)
        )


@dataclass(frozen=True)
class WalRecord:
    """One durable engine operation in linearization order."""

    sequence: int
    kind: str  # a key of RECORD_KINDS
    table: str
    #: insert/delete: the affected rowid; update: the *new* rowid
    rowid: Optional[int] = None
    #: update: the rowid being replaced
    old_rowid: Optional[int] = None
    #: insert: full row; update: the changed columns
    values: Optional[Dict[str, Union[int, float]]] = None
    #: set_indexing target column / mode / options
    column: Optional[str] = None
    mode: Optional[str] = None
    options: Optional[Dict] = None
    #: create_table initial data
    columns: Tuple[ColumnDump, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise RecordFormatError(f"unknown record kind {self.kind!r}")


@dataclass(frozen=True)
class FrameError:
    """The first undecodable frame met while scanning a buffer."""

    offset: int  # byte offset of the frame's header
    reason: str  # human-readable diagnostic
    #: True when every byte of the frame was present (checksum/decode
    #: failure on complete data — corruption, not a torn write)
    frame_complete: bool


# -- primitive encoders ------------------------------------------------------


def _put_str(parts: List[bytes], text: str) -> None:
    encoded = text.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise RecordFormatError(f"string too long for wire format: {len(encoded)}")
    parts.append(_U16.pack(len(encoded)))
    parts.append(encoded)


def _get_str(buffer: bytes, offset: int) -> Tuple[str, int]:
    (length,) = _U16.unpack_from(buffer, offset)
    offset += _U16.size
    end = offset + length
    if end > len(buffer):
        raise RecordFormatError("string field overruns payload")
    return buffer[offset:end].decode("utf-8"), end


def _put_values(parts: List[bytes], values: Mapping[str, Union[int, float]]) -> None:
    parts.append(_U16.pack(len(values)))
    for name, value in values.items():
        _put_str(parts, name)
        if isinstance(value, (bool, int, np.integer)):
            parts.append(_U8.pack(_VALUE_INT))
            parts.append(_I64.pack(int(value)))
        else:
            parts.append(_U8.pack(_VALUE_FLOAT))
            parts.append(_F64.pack(float(value)))


def _get_values(buffer: bytes, offset: int) -> Tuple[Dict[str, Union[int, float]], int]:
    (count,) = _U16.unpack_from(buffer, offset)
    offset += _U16.size
    values: Dict[str, Union[int, float]] = {}
    for _ in range(count):
        name, offset = _get_str(buffer, offset)
        (tag,) = _U8.unpack_from(buffer, offset)
        offset += _U8.size
        if tag == _VALUE_INT:
            (value,) = _I64.unpack_from(buffer, offset)
            offset += _I64.size
            values[name] = int(value)
        elif tag == _VALUE_FLOAT:
            (value,) = _F64.unpack_from(buffer, offset)
            offset += _F64.size
            values[name] = float(value)
        else:
            raise RecordFormatError(f"unknown value tag {tag}")
    return values, offset


# -- record <-> payload ------------------------------------------------------


def encode_record(record: WalRecord) -> bytes:
    """Serialize one record to its payload bytes (no frame header)."""
    parts: List[bytes] = [
        _U8.pack(RECORD_KINDS[record.kind]),
        _U64.pack(record.sequence),
    ]
    _put_str(parts, record.table)
    kind = record.kind
    if kind == "insert":
        parts.append(_U64.pack(record.rowid))
        _put_values(parts, record.values or {})
    elif kind == "delete":
        parts.append(_U64.pack(record.rowid))
    elif kind == "update":
        parts.append(_U64.pack(record.old_rowid))
        parts.append(_U64.pack(record.rowid))
        _put_values(parts, record.values or {})
    elif kind == "create_table":
        parts.append(_U16.pack(len(record.columns)))
        for dump in record.columns:
            _put_str(parts, dump.name)
            _put_str(parts, dump.dtype.name)
            raw = np.ascontiguousarray(dump.values).tobytes()
            parts.append(_U64.pack(len(dump.values)))
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
    elif kind == "set_indexing":
        _put_str(parts, record.column)
        _put_str(parts, record.mode)
        encoded_options = json.dumps(
            record.options or {}, sort_keys=True
        ).encode("utf-8")
        parts.append(_U32.pack(len(encoded_options)))
        parts.append(encoded_options)
    # drop_table carries no extra fields
    return b"".join(parts)


def decode_record(payload: bytes) -> WalRecord:
    """Decode one payload back into a :class:`WalRecord`."""
    try:
        (tag,) = _U8.unpack_from(payload, 0)
        kind = _KIND_BY_TAG.get(tag)
        if kind is None:
            raise RecordFormatError(f"unknown record kind tag {tag}")
        (sequence,) = _U64.unpack_from(payload, _U8.size)
        offset = _U8.size + _U64.size
        table, offset = _get_str(payload, offset)
        if kind == "insert":
            (rowid,) = _U64.unpack_from(payload, offset)
            offset += _U64.size
            values, offset = _get_values(payload, offset)
            return WalRecord(sequence, kind, table, rowid=rowid, values=values)
        if kind == "delete":
            (rowid,) = _U64.unpack_from(payload, offset)
            return WalRecord(sequence, kind, table, rowid=rowid)
        if kind == "update":
            (old_rowid,) = _U64.unpack_from(payload, offset)
            offset += _U64.size
            (rowid,) = _U64.unpack_from(payload, offset)
            offset += _U64.size
            values, offset = _get_values(payload, offset)
            return WalRecord(
                sequence, kind, table,
                rowid=rowid, old_rowid=old_rowid, values=values,
            )
        if kind == "create_table":
            (count,) = _U16.unpack_from(payload, offset)
            offset += _U16.size
            dumps: List[ColumnDump] = []
            for _ in range(count):
                name, offset = _get_str(payload, offset)
                dtype_name, offset = _get_str(payload, offset)
                dtype = dtype_by_name(dtype_name)
                (rows,) = _U64.unpack_from(payload, offset)
                offset += _U64.size
                (nbytes,) = _U32.unpack_from(payload, offset)
                offset += _U32.size
                end = offset + nbytes
                if end > len(payload):
                    raise RecordFormatError("column section overruns payload")
                itemsize = dtype.numpy_dtype.itemsize
                if rows * itemsize != nbytes:
                    # a declared row count larger than the section would
                    # otherwise silently consume bytes of the next column
                    raise RecordFormatError(
                        f"column section length mismatch: {rows} rows of "
                        f"{itemsize}-byte {dtype.name} need "
                        f"{rows * itemsize} bytes, section holds {nbytes}"
                    )
                values = np.frombuffer(
                    payload, dtype=dtype.numpy_dtype, count=rows, offset=offset
                )
                dumps.append(ColumnDump(name, dtype, values.copy()))
                offset = end
            return WalRecord(sequence, kind, table, columns=tuple(dumps))
        if kind == "drop_table":
            return WalRecord(sequence, kind, table)
        # set_indexing
        column, offset = _get_str(payload, offset)
        mode, offset = _get_str(payload, offset)
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        end = offset + length
        if end > len(payload):
            raise RecordFormatError("options section overruns payload")
        options = json.loads(payload[offset:end].decode("utf-8"))
        return WalRecord(
            sequence, kind, table, column=column, mode=mode, options=options
        )
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        if isinstance(exc, RecordFormatError):
            raise
        raise RecordFormatError(f"malformed payload: {exc}") from exc


# -- framing -----------------------------------------------------------------


def frame_record(record: WalRecord) -> bytes:
    """Serialize one record as a self-delimiting checksummed frame."""
    payload = encode_record(record)
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(
    buffer: bytes, start: int = 0
) -> Iterator[Tuple[int, Union[bytes, FrameError]]]:
    """Yield ``(offset, payload | FrameError)`` for each frame in ``buffer``.

    Iteration stops after the first :class:`FrameError`; the offset of a
    yielded error is where a subsequent valid frame *would* resume if the
    broken frame's length header can be trusted (only meaningful when
    ``frame_complete`` is True).
    """
    offset = start
    size = len(buffer)
    while offset < size:
        if offset + FRAME_HEADER.size > size:
            yield offset, FrameError(
                offset,
                f"torn frame header at byte {offset}: "
                f"{size - offset} of {FRAME_HEADER.size} header bytes present",
                frame_complete=False,
            )
            return
        length, checksum = FRAME_HEADER.unpack_from(buffer, offset)
        body_start = offset + FRAME_HEADER.size
        body_end = body_start + length
        if body_end > size:
            yield offset, FrameError(
                offset,
                f"torn frame payload at byte {offset}: "
                f"{size - body_start} of {length} payload bytes present",
                frame_complete=False,
            )
            return
        payload = buffer[body_start:body_end]
        if zlib.crc32(payload) != checksum:
            yield offset, FrameError(
                offset,
                f"checksum mismatch in frame at byte {offset} "
                f"({length}-byte payload)",
                frame_complete=True,
            )
            return
        yield offset, payload
        offset = body_end


def scan_frames(buffer: bytes, start: int = 0):
    """Split ``buffer`` into valid frame payloads plus the first error.

    Returns ``(payloads, valid_end, error)`` where ``payloads`` is the
    longest decodable prefix, ``valid_end`` is the byte offset just past
    the last valid frame, and ``error`` is ``None`` or the
    :class:`FrameError` that stopped the scan.
    """
    payloads: List[bytes] = []
    valid_end = start
    error: Optional[FrameError] = None
    for offset, item in iter_frames(buffer, start):
        if isinstance(item, FrameError):
            error = item
            break
        payloads.append(item)
        valid_end = offset + FRAME_HEADER.size + len(item)
    return payloads, valid_end, error
