"""Crash recovery: latest valid snapshot + journal tail replay.

:func:`recover` (the engine calls it through ``Database.open``) rebuilds a
database from a data directory:

1. pick the newest snapshot that validates (checksums, structure); a
   corrupt newer snapshot is skipped *only* when the surviving journal
   still covers everything past the older snapshot's high-water mark —
   otherwise recovery fails loudly with the corruption diagnostic;
2. scan the journal (:meth:`WriteAheadLog.scan`): a torn final record is
   tolerated and truncated, any other damage raises;
3. apply the snapshot (tables from raw column bytes, tombstones, then
   ``set_indexing`` per recorded mode — adaptive structures are derived
   state and rebuild from the base columns, re-absorbing the tombstones);
4. replay every journal record past the high-water mark **through the
   ordinary session path**, asserting that each insert/update lands on
   the rowid the original execution recorded — the recovered state is the
   sequential oracle's state, not a lookalike;
5. resume the linearization counter past everything replayed and attach a
   live :class:`DurabilityManager` so the database journals again.

The invariant the fault suite pins: for *any* crash point, recovery
either reproduces the state of a surviving-journal-prefix replay
bit-for-bit, or raises :class:`RecoveryError` with a diagnostic naming
the damaged file and byte — never a silently wrong database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.columnstore.column import Column
from repro.durability.faults import FaultInjector
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    has_durable_state,
    snapshot_directory,
    wal_directory,
)
from repro.durability.record import WalRecord, frame_record
from repro.durability.snapshot import (
    SnapshotCorruptionError,
    SnapshotState,
    SnapshotStore,
)
from repro.durability.wal import WalCorruptionError, WriteAheadLog

if TYPE_CHECKING:  # cycle guard: the engine imports durability submodules
    from repro.engine.database import Database


class RecoveryError(RuntimeError):
    """Recovery cannot restore a trustworthy state (fails loudly)."""


@dataclass
class RecoveryReport:
    """What a recovery did, for operators and the CLI."""

    data_dir: str
    elapsed_seconds: float = 0.0
    snapshot_path: Optional[str] = None
    snapshot_high_water: Optional[int] = None
    #: diagnostics of snapshots that failed validation and were skipped
    skipped_snapshots: List[str] = field(default_factory=list)
    #: replayed journal operations by kind
    replayed_operations: Dict[str, int] = field(default_factory=dict)
    #: total journal records on disk (including ones the snapshot covers)
    wal_records: int = 0
    #: diagnostic of a tolerated torn final record (None = clean tail)
    torn_tail: Optional[str] = None
    next_sequence: int = 0

    @property
    def replayed_total(self) -> int:
        return sum(self.replayed_operations.values())


def _choose_snapshot(
    store: SnapshotStore, report: RecoveryReport
) -> Optional[SnapshotState]:
    """Newest snapshot that validates; records skipped ones' diagnostics."""
    for path in reversed(store.paths()):
        try:
            state = store.load(path)
        except SnapshotCorruptionError as exc:
            report.skipped_snapshots.append(str(exc))
            continue
        report.snapshot_path = str(path)
        report.snapshot_high_water = state.high_water
        return state
    return None


def _apply_snapshot(database: "Database", state: SnapshotState) -> None:
    """Install a snapshot's tables, tombstones and indexing modes."""
    for table_state in state.tables:
        database.create_table(
            table_state.name,
            {
                dump.name: Column(dump.values, name=dump.name, dtype=dump.dtype)
                for dump in table_state.columns
            },
        )
        if table_state.deleted_rows:
            with database._tombstone_lock:
                database._deleted_rows[table_state.name] = set(
                    table_state.deleted_rows
                )
    # modes go in after tombstones: updatable strategies re-absorb the
    # pending deletes inside set_indexing, exactly like a live mode switch
    for mode_state in state.modes:
        database.set_indexing(
            mode_state.table,
            mode_state.column,
            mode_state.mode,
            **mode_state.options,
        )


def _replay_records(
    database: "Database",
    records: List[WalRecord],
    high_water: int,
    report: RecoveryReport,
) -> Tuple[int, int]:
    """Replay journal records past ``high_water`` through a real session.

    Returns ``(replayed_count, last_sequence_seen)``.
    """
    last_sequence = high_water
    replayed = 0
    counts = report.replayed_operations
    with database.session(name="recovery") as session:
        for record in records:
            if record.sequence <= high_water:
                continue
            last_sequence = record.sequence
            kind = record.kind
            if kind == "insert":
                rowid = session.insert_row(record.table, record.values)
                if rowid != record.rowid:
                    raise RecoveryError(
                        f"replay diverged at sequence {record.sequence}: "
                        f"insert into {record.table!r} landed on rowid "
                        f"{rowid}, journal recorded {record.rowid}"
                    )
            elif kind == "delete":
                session.delete_row(record.table, record.rowid)
            elif kind == "update":
                rowid = session.update_row(
                    record.table, record.old_rowid, record.values
                )
                if rowid != record.rowid:
                    raise RecoveryError(
                        f"replay diverged at sequence {record.sequence}: "
                        f"update of {record.table!r} rowid {record.old_rowid} "
                        f"landed on rowid {rowid}, journal recorded "
                        f"{record.rowid}"
                    )
            elif kind == "create_table":
                database.create_table(
                    record.table,
                    {
                        dump.name: Column(
                            dump.values, name=dump.name, dtype=dump.dtype
                        )
                        for dump in record.columns
                    },
                )
            elif kind == "drop_table":
                database.drop_table(record.table)
            else:  # set_indexing (WalRecord rejects unknown kinds on decode)
                database.set_indexing(
                    record.table,
                    record.column,
                    record.mode,
                    **record.options,
                )
            counts[kind] = counts.get(kind, 0) + 1
            replayed += 1
    return replayed, last_sequence


def recover(
    data_dir: Path,
    name: Optional[str] = None,
    config: Optional[DurabilityConfig] = None,
    injector: Optional[FaultInjector] = None,
) -> Tuple["Database", RecoveryReport]:
    """Rebuild a :class:`Database` from ``data_dir`` (see module docs)."""
    # imported here, not at module top: the engine imports durability
    # submodules, so a top-level import would be circular
    from repro.engine.database import Database

    started = time.perf_counter()
    data_dir = Path(data_dir)
    if not has_durable_state(data_dir):
        # an empty/missing directory is a caller mistake, not an empty
        # database: opening it silently would present data loss as success
        raise RecoveryError(
            f"no durable state under {str(data_dir)!r} (expected wal/*.seg "
            "or snapshots/*.snap); seed a fresh directory with "
            "Database(data_dir=...) instead"
        )
    config = config or DurabilityConfig()
    report = RecoveryReport(data_dir=str(data_dir))

    store = SnapshotStore(
        snapshot_directory(data_dir), keep=config.keep_snapshots
    )
    snapshot = _choose_snapshot(store, report)
    high_water = snapshot.high_water if snapshot is not None else -1

    try:
        scan = WriteAheadLog.scan(wal_directory(data_dir))
    except WalCorruptionError as exc:
        raise RecoveryError(str(exc)) from exc
    report.wal_records = len(scan.records)
    report.torn_tail = scan.torn_tail

    # coverage proof: the earliest surviving journal segment must start at
    # or before the first sequence the snapshot does not cover.  This is
    # what makes skipping a corrupt newer snapshot safe — and what makes
    # it loud when it is not.
    base = scan.base_sequence
    if base is not None and base > high_water + 1:
        skipped = "; ".join(report.skipped_snapshots) or "none"
        raise RecoveryError(
            f"journal starts at sequence {base} but the newest valid "
            f"snapshot covers only through {high_water} "
            f"(skipped snapshots: {skipped}); operations in between are "
            "unrecoverable — refusing to build a silently incomplete state"
        )
    if snapshot is None and report.skipped_snapshots and base is None:
        raise RecoveryError(
            "no valid snapshot and no journal segments; skipped snapshots: "
            + "; ".join(report.skipped_snapshots)
        )

    database = Database(name or (snapshot.name if snapshot else "db"))
    if snapshot is not None:
        _apply_snapshot(database, snapshot)
        with database._engine_stats_lock:
            database._op_sequence = snapshot.op_sequence

    replayed, last_sequence = _replay_records(
        database, scan.records, high_water, report
    )

    # resume the linearization counter past everything on disk, so new
    # operations journal with strictly increasing sequences
    with database._engine_stats_lock:
        database._op_sequence = max(database._op_sequence, last_sequence + 1)
        report.next_sequence = database._op_sequence

    manager = DurabilityManager(
        data_dir, config=config, injector=injector, scan=scan
    )
    # seed both auto-snapshot thresholds with the surviving journal tail:
    # the replayed op count and the framed byte size of the records past
    # the snapshot's high-water mark still sitting in the WAL
    backlog_bytes = sum(
        len(frame_record(record))
        for record in scan.records
        if record.sequence > high_water
    )
    manager.seed_backlog(replayed, backlog_bytes)
    database._attach_durability(manager)

    report.elapsed_seconds = time.perf_counter() - started
    database.recovery_report = report
    return database, report
