"""Column-store snapshots: atomic, checksummed full-state dumps.

A snapshot captures everything the journal replay would otherwise rebuild
from the beginning of time: every table's column arrays, the tombstone
sets (the engine's pending-delete queues — updatable access paths re-absorb
them on load), the configured indexing modes, and the journal high-water
sequence the dump is consistent with.  Adaptive access-path *internals*
(crack maps, partial sort state, sideways maps) are deliberately not
dumped: they are derived, rebuildable state — recovery re-installs each
mode with ``set_indexing`` and lets the indexes refine again from query
traffic, which is the adaptive-indexing contract.

File layout (``snapshots/snapshot-<high_water:020d>.snap``)::

    magic "RPSN" | version u32 LE
    manifest_length u32 LE | manifest_crc32 u32 LE | manifest (JSON)
    column sections, raw little-endian array bytes, in manifest order

The manifest records each section's byte length and crc32, so any damage
is pinpointed to a named table/column.  Writes are atomic: the dump goes
to a ``*.tmp`` sibling, is fsynced, and only then renamed over the final
name (``os.replace``) with a directory fsync — a crash leaves either the
old snapshot set or the new one, never a half-written file under a valid
name.  Stray ``*.tmp`` files are ignored (and cleaned) by the store.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.columnstore.types import dtype_by_name
from repro.durability.faults import FaultInjector, kill_point, open_durable
from repro.durability.record import ColumnDump

SNAPSHOT_MAGIC = b"RPSN"
SNAPSHOT_VERSION = 1
SNAPSHOT_HEADER = struct.Struct("<4sI")
MANIFEST_HEADER = struct.Struct("<II")  # manifest length, crc32

SNAPSHOT_SUBDIR = "snapshots"


class SnapshotCorruptionError(RuntimeError):
    """A snapshot file that fails validation (never loaded silently)."""


@dataclass(frozen=True)
class IndexModeState:
    """One configured indexing mode, re-installed on load."""

    table: str
    column: str
    mode: str
    options: Dict


@dataclass(frozen=True)
class TableState:
    """One table's logical state: columns plus tombstoned positions."""

    name: str
    columns: Tuple[ColumnDump, ...]
    deleted_rows: Tuple[int, ...]


@dataclass(frozen=True)
class SnapshotState:
    """The full dump a snapshot file stores."""

    name: str  # database name
    high_water: int  # every op with sequence <= this is included
    op_sequence: int  # the linearization counter to resume from
    tables: Tuple[TableState, ...] = field(default=())
    modes: Tuple[IndexModeState, ...] = field(default=())


def _snapshot_name(high_water: int) -> str:
    return f"snapshot-{high_water:020d}.snap"


def _snapshot_high_water(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith("snapshot-") and name.endswith(".snap")):
        return None
    digits = name[len("snapshot-"):-len(".snap")]
    return int(digits) if digits.isdigit() else None


def _fsync_directory(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def encode_snapshot(state: SnapshotState) -> bytes:
    """Serialize a snapshot to its full file bytes."""
    sections: List[bytes] = []
    tables_manifest = []
    for table in state.tables:
        columns_manifest = []
        for dump in table.columns:
            raw = np.ascontiguousarray(dump.values).tobytes()
            sections.append(raw)
            columns_manifest.append(
                {
                    "name": dump.name,
                    "dtype": dump.dtype.name,
                    "rows": int(len(dump.values)),
                    "nbytes": len(raw),
                    "crc": zlib.crc32(raw),
                }
            )
        tables_manifest.append(
            {
                "name": table.name,
                "columns": columns_manifest,
                "deleted_rows": sorted(int(r) for r in table.deleted_rows),
            }
        )
    manifest = {
        "name": state.name,
        "high_water": int(state.high_water),
        "op_sequence": int(state.op_sequence),
        "tables": tables_manifest,
        "modes": [
            {
                "table": mode.table,
                "column": mode.column,
                "mode": mode.mode,
                "options": mode.options,
            }
            for mode in state.modes
        ],
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    parts = [
        SNAPSHOT_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION),
        MANIFEST_HEADER.pack(len(manifest_bytes), zlib.crc32(manifest_bytes)),
        manifest_bytes,
    ]
    parts.extend(sections)
    return b"".join(parts)


def decode_snapshot(data: bytes, source: str = "<snapshot>") -> SnapshotState:
    """Validate and decode snapshot file bytes."""
    if len(data) < SNAPSHOT_HEADER.size + MANIFEST_HEADER.size:
        raise SnapshotCorruptionError(
            f"{source}: truncated snapshot header ({len(data)} bytes)"
        )
    magic, version = SNAPSHOT_HEADER.unpack_from(data, 0)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotCorruptionError(f"{source}: bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptionError(
            f"{source}: unsupported snapshot version {version}"
        )
    manifest_length, manifest_crc = MANIFEST_HEADER.unpack_from(
        data, SNAPSHOT_HEADER.size
    )
    manifest_start = SNAPSHOT_HEADER.size + MANIFEST_HEADER.size
    manifest_end = manifest_start + manifest_length
    if manifest_end > len(data):
        raise SnapshotCorruptionError(
            f"{source}: truncated manifest "
            f"({len(data) - manifest_start} of {manifest_length} bytes)"
        )
    manifest_bytes = data[manifest_start:manifest_end]
    if zlib.crc32(manifest_bytes) != manifest_crc:
        raise SnapshotCorruptionError(f"{source}: manifest checksum mismatch")
    manifest = json.loads(manifest_bytes.decode("utf-8"))

    offset = manifest_end
    tables: List[TableState] = []
    for table_entry in manifest["tables"]:
        dumps: List[ColumnDump] = []
        for column_entry in table_entry["columns"]:
            nbytes = int(column_entry["nbytes"])
            end = offset + nbytes
            section_name = f"{table_entry['name']}.{column_entry['name']}"
            if end > len(data):
                raise SnapshotCorruptionError(
                    f"{source}: truncated column section {section_name} "
                    f"({len(data) - offset} of {nbytes} bytes)"
                )
            raw = data[offset:end]
            if zlib.crc32(raw) != int(column_entry["crc"]):
                raise SnapshotCorruptionError(
                    f"{source}: checksum mismatch in column section "
                    f"{section_name} at byte {offset}"
                )
            dtype = dtype_by_name(column_entry["dtype"])
            values = np.frombuffer(
                raw, dtype=dtype.numpy_dtype, count=int(column_entry["rows"])
            )
            dumps.append(ColumnDump(column_entry["name"], dtype, values.copy()))
            offset = end
        tables.append(
            TableState(
                name=table_entry["name"],
                columns=tuple(dumps),
                deleted_rows=tuple(table_entry["deleted_rows"]),
            )
        )
    if offset != len(data):
        raise SnapshotCorruptionError(
            f"{source}: {len(data) - offset} trailing bytes after the last "
            "column section"
        )
    modes = tuple(
        IndexModeState(
            table=entry["table"],
            column=entry["column"],
            mode=entry["mode"],
            options=dict(entry["options"]),
        )
        for entry in manifest["modes"]
    )
    return SnapshotState(
        name=manifest["name"],
        high_water=int(manifest["high_water"]),
        op_sequence=int(manifest["op_sequence"]),
        tables=tuple(tables),
        modes=modes,
    )


class SnapshotStore:
    """Owns the ``snapshots/`` directory: atomic writes, pruning, listing."""

    def __init__(
        self,
        directory: Path,
        keep: int = 2,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        self._injector = injector
        self.directory.mkdir(parents=True, exist_ok=True)

    def paths(self) -> List[Path]:
        """Snapshot files, oldest first (by embedded high-water mark)."""
        found = []
        for path in self.directory.iterdir():
            high_water = _snapshot_high_water(path)
            if high_water is not None:
                found.append((high_water, path))
        return [path for _, path in sorted(found)]

    def write(self, state: SnapshotState) -> Path:
        """Atomically persist ``state``; returns the final path.

        The crash contract: until ``os.replace`` completes, the previous
        snapshot set is intact; after it, the new snapshot is fully
        present and fsynced.  There is no in-between under a valid name.
        """
        final_path = self.directory / _snapshot_name(state.high_water)
        tmp_path = final_path.with_suffix(".snap.tmp")
        data = encode_snapshot(state)
        kill_point(self._injector, "snapshot.before_write")
        with open_durable(tmp_path, "wb", self._injector) as handle:
            handle.write(data)
            kill_point(self._injector, "snapshot.before_sync")
            handle.fsync()
        kill_point(self._injector, "snapshot.before_rename")
        os.replace(tmp_path, final_path)
        _fsync_directory(self.directory)
        kill_point(self._injector, "snapshot.after_rename")
        self._prune()
        return final_path

    def load(self, path: Path) -> SnapshotState:
        """Load and fully validate one snapshot file."""
        return decode_snapshot(Path(path).read_bytes(), source=str(path))

    def _prune(self) -> None:
        """Drop all but the newest ``keep`` snapshots plus stray tmp files."""
        paths = self.paths()
        for stale in paths[: -self.keep]:
            stale.unlink()
        for leftover in self.directory.glob("*.tmp"):
            leftover.unlink()
        if len(paths) > self.keep:
            _fsync_directory(self.directory)
