"""The write-ahead journal: segmented, checksummed, group-committed.

Records (:mod:`repro.durability.record`) are appended to segment files
``wal-00000000.seg``, ``wal-00000001.seg``, ... under ``<data_dir>/wal/``.
Each segment starts with a fixed header::

    magic "RPWL" | version u32 LE | base_sequence u64 LE

``base_sequence`` is the linearization sequence the segment starts at
(every record in it has ``sequence >= base_sequence``); recovery uses the
*earliest* surviving segment's base to prove the journal still covers
everything past a snapshot's high-water mark after truncation.

Sync modes (the group-commit knob):

``"always"``
    fsync after every append — a committed DML op survives an OS crash;
``"batch"``
    fsync every ``batch_size`` appends (and on rotation/close) — a crash
    loses at most the last unsynced group, never a committed prefix's
    integrity;
``"off"``
    never fsync — the OS flushes when it pleases; cheapest, weakest.

Files are opened unbuffered, so every append reaches the OS immediately
and the fault injector (:mod:`repro.durability.faults`) can tear a write
at an exact byte offset.

Scan policy (:meth:`WriteAheadLog.scan`): a frame that is *incomplete*
can only be the torn tail of the final segment — segments are append-only
and a crash kills the writer, so nothing is ever written after a torn
frame.  A torn tail is tolerated (the valid prefix is recovered and the
tail truncated on resume).  Everything else — a checksum mismatch on a
complete frame, a torn frame in a non-final segment, a sequence that does
not advance, a bad segment header — is corruption and raises
:class:`WalCorruptionError` with a precise diagnostic: recovery must fail
loudly rather than silently drop committed operations.
"""

from __future__ import annotations

import os
import struct
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.durability.faults import FaultInjector, kill_point, open_durable
from repro.durability.record import (
    RecordFormatError,
    WalRecord,
    decode_record,
    frame_record,
    scan_frames,
)

SEGMENT_MAGIC = b"RPWL"
SEGMENT_VERSION = 1
SEGMENT_HEADER = struct.Struct("<4sIQ")  # magic, version, base_sequence
SYNC_MODES = ("always", "batch", "off")

WAL_SUBDIR = "wal"


class WalCorruptionError(RuntimeError):
    """The journal is damaged in a way replay must not paper over."""


@dataclass(frozen=True)
class SegmentInfo:
    """One scanned segment file."""

    path: Path
    index: int
    base_sequence: int
    record_count: int
    last_sequence: Optional[int]  # None for an empty segment


@dataclass
class WalScan:
    """Everything recovery needs to know about the on-disk journal."""

    records: List[WalRecord] = field(default_factory=list)
    segments: List[SegmentInfo] = field(default_factory=list)
    #: byte offset just past the last valid frame of the final segment
    tail_offset: int = 0
    #: diagnostic of a tolerated torn tail (None = the log ended cleanly)
    torn_tail: Optional[str] = None

    @property
    def base_sequence(self) -> Optional[int]:
        """The earliest surviving segment's base (None = empty journal)."""
        return self.segments[0].base_sequence if self.segments else None

    @property
    def last_sequence(self) -> Optional[int]:
        return self.records[-1].sequence if self.records else None


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith("wal-") and name.endswith(".seg")):
        return None
    digits = name[len("wal-"):-len(".seg")]
    return int(digits) if digits.isdigit() else None


def _list_segments(directory: Path) -> List[Path]:
    found = []
    if directory.is_dir():
        for path in directory.iterdir():
            index = _segment_index(path)
            if index is not None:
                found.append((index, path))
    return [path for _, path in sorted(found)]


def _read_segment_header(path: Path, data: bytes) -> int:
    """Validate a segment header, returning its base sequence."""
    if len(data) < SEGMENT_HEADER.size:
        raise WalCorruptionError(
            f"{path}: truncated segment header "
            f"({len(data)} of {SEGMENT_HEADER.size} bytes)"
        )
    magic, version, base_sequence = SEGMENT_HEADER.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        raise WalCorruptionError(f"{path}: bad segment magic {magic!r}")
    if version != SEGMENT_VERSION:
        raise WalCorruptionError(
            f"{path}: unsupported segment version {version}"
        )
    return base_sequence


def _fsync_directory(directory: Path) -> None:
    """Make a directory entry change (create/rename/unlink) durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Appender over the segment files (one per database, single-writer).

    Thread-safe: :meth:`append`, :meth:`sync`, :meth:`truncate_through`
    and :meth:`close` serialize on one internal mutex.  The engine calls
    :meth:`append` while holding the affected table's write gate, which
    is what makes the journal order the linearization order.
    """

    def __init__(
        self,
        directory: Path,
        sync: str = "batch",
        batch_size: int = 32,
        segment_bytes: int = 4 << 20,
        injector: Optional[FaultInjector] = None,
        scan: Optional[WalScan] = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(
                f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.directory = Path(directory)
        self.sync_mode = sync
        self.batch_size = int(batch_size)
        self.segment_bytes = int(segment_bytes)
        self._injector = injector
        self._lock = threading.Lock()
        self._handle = None
        self._segment_index = 0
        self._segment_offset = 0
        self._unsynced_appends = 0
        self._last_sequence = -1
        # sealed (rotated-out) segment index -> its last record's sequence
        # (None = sealed empty); truncate_through decides coverage from
        # this metadata instead of re-reading and re-decoding segment
        # files while the caller holds every table gate
        self._sealed_last: Dict[int, Optional[int]] = {}
        # last sequence appended into the *active* segment (None = none
        # yet); becomes the sealed entry when the segment rotates out
        self._active_last: Optional[int] = None
        self._closed = False
        # cumulative introspection counters (read via stats())
        self._appended_records = 0
        self._fsync_calls = 0
        self._rotations = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        if scan is None:
            scan = WriteAheadLog.scan(self.directory)
        if scan.segments:
            self._resume(scan)
        else:
            self._open_segment(0, base_sequence=0)

    # -- scanning ----------------------------------------------------------

    @staticmethod
    def scan(directory: Path) -> WalScan:
        """Read every segment, returning the valid record prefix.

        Tolerates a torn final record in the final segment; raises
        :class:`WalCorruptionError` for every other defect.
        """
        directory = Path(directory)
        result = WalScan()
        paths = _list_segments(directory)
        previous_sequence = -1
        for position, path in enumerate(paths):
            data = path.read_bytes()
            base_sequence = _read_segment_header(path, data)
            payloads, valid_end, error = scan_frames(data, SEGMENT_HEADER.size)
            is_final = position == len(paths) - 1
            if error is not None:
                if error.frame_complete or not is_final:
                    where = "final" if is_final else "non-final"
                    raise WalCorruptionError(
                        f"{path} ({where} segment): {error.reason}; "
                        "refusing to replay past damaged journal data"
                    )
                result.torn_tail = f"{path}: {error.reason}"
            records = []
            for payload in payloads:
                try:
                    record = decode_record(payload)
                except RecordFormatError as exc:
                    raise WalCorruptionError(
                        f"{path}: undecodable record after valid checksum: "
                        f"{exc}"
                    ) from exc
                if record.sequence <= previous_sequence:
                    raise WalCorruptionError(
                        f"{path}: sequence regressed "
                        f"({record.sequence} after {previous_sequence})"
                    )
                previous_sequence = record.sequence
                records.append(record)
            if records and records[0].sequence < base_sequence:
                raise WalCorruptionError(
                    f"{path}: first record sequence {records[0].sequence} "
                    f"below segment base {base_sequence}"
                )
            result.records.extend(records)
            result.segments.append(
                SegmentInfo(
                    path=path,
                    index=_segment_index(path),
                    base_sequence=base_sequence,
                    record_count=len(records),
                    last_sequence=records[-1].sequence if records else None,
                )
            )
            if is_final:
                result.tail_offset = valid_end
        return result

    # -- segment lifecycle -------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.directory / _segment_name(index)

    def _open_segment(self, index: int, base_sequence: int) -> None:
        path = self._segment_path(index)
        handle = open_durable(path, "wb", self._injector)
        header = SEGMENT_HEADER.pack(
            SEGMENT_MAGIC, SEGMENT_VERSION, base_sequence
        )
        handle.write(header)
        handle.fsync()  # the header must survive before records rely on it
        _fsync_directory(self.directory)
        self._handle = handle
        self._segment_index = index
        self._segment_offset = len(header)
        self._unsynced_appends = 0
        self._active_last = None

    def _resume(self, scan: WalScan) -> None:
        """Reopen the journal after a scan: truncate the torn tail (if
        any) and append to the final segment from its last valid byte."""
        final = scan.segments[-1]
        for info in scan.segments[:-1]:
            self._sealed_last[info.index] = info.last_sequence
        with open(final.path, "r+b") as handle:
            handle.truncate(scan.tail_offset)
        self._handle = open_durable(final.path, "ab", self._injector)
        self._segment_index = final.index
        self._segment_offset = scan.tail_offset
        self._active_last = final.last_sequence
        if scan.last_sequence is not None:
            self._last_sequence = scan.last_sequence

    def _rotate_locked(self, base_sequence: int) -> None:
        # the outgoing segment becomes immutable: make it durable now so
        # later truncation decisions can trust its contents
        self._handle.fsync()
        self._fsync_calls += 1
        self._handle.close()
        self._rotations += 1
        self._sealed_last[self._segment_index] = self._active_last
        self._open_segment(self._segment_index + 1, base_sequence)
        kill_point(self._injector, "wal.after_rotate")

    # -- the appender ------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Append one record; durable per the sync mode before returning.

        Returns the framed byte length (the snapshot size policy sums it).
        """
        frame = frame_record(record)
        with self._lock:
            self._check_open()
            kill_point(self._injector, "wal.before_append")
            self._handle.write(frame)
            self._segment_offset += len(frame)
            self._appended_records += 1
            self._last_sequence = record.sequence
            self._active_last = record.sequence
            if self.sync_mode == "always":
                kill_point(self._injector, "wal.before_fsync")
                self._handle.fsync()
                self._fsync_calls += 1
            elif self.sync_mode == "batch":
                self._unsynced_appends += 1
                if self._unsynced_appends >= self.batch_size:
                    kill_point(self._injector, "wal.before_fsync")
                    self._handle.fsync()
                    self._fsync_calls += 1
                    self._unsynced_appends = 0
            if self._segment_offset >= self.segment_bytes:
                self._rotate_locked(base_sequence=record.sequence + 1)
        return len(frame)

    def sync(self) -> None:
        """Force an fsync of the active segment (any sync mode)."""
        with self._lock:
            self._check_open()
            self._handle.fsync()
            self._fsync_calls += 1
            self._unsynced_appends = 0

    def truncate_through(self, sequence: int) -> int:
        """Drop segments fully covered by a snapshot at ``sequence``.

        Rotates first so the active segment is always retained, then
        unlinks every sealed segment whose records all have
        ``sequence <= sequence``.  Coverage is decided from the in-memory
        per-segment metadata maintained by the scan/rotation path — the
        caller (``Database.snapshot``) holds every table gate, so this
        must never pay an O(journal bytes) re-decode of retained segments.
        Returns the number of segments removed.
        """
        removed = 0
        with self._lock:
            self._check_open()
            self._rotate_locked(base_sequence=self._last_sequence + 1)
            for index, last in sorted(self._sealed_last.items()):
                if last is not None and last > sequence:
                    continue
                kill_point(self._injector, "wal.truncate.before_unlink")
                self._segment_path(index).unlink()
                del self._sealed_last[index]
                removed += 1
            if removed:
                _fsync_directory(self.directory)
        return removed

    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handle, self._handle = self._handle, None
            if handle is not None and not handle.closed:
                try:
                    handle.fsync()
                    self._fsync_calls += 1
                finally:
                    handle.close()

    def _check_open(self) -> None:
        if self._closed or self._handle is None:
            raise RuntimeError("write-ahead log is closed")

    # -- introspection -----------------------------------------------------

    @property
    def last_sequence(self) -> int:
        """Highest sequence ever appended (-1 when none)."""
        return self._last_sequence

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "appended_records": self._appended_records,
                "fsync_calls": self._fsync_calls,
                "rotations": self._rotations,
                "active_segment": self._segment_index,
                "active_segment_bytes": self._segment_offset,
            }
