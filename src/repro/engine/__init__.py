"""Query engine facade.

The engine ties the substrate together the way an "auto-tuning kernel"
(tutorial, Section 2) would: a :class:`~repro.engine.database.Database`
owns tables, each table's columns can be put under any indexing mode
(scan-only, offline full index, online tuning, soft indexes, or any adaptive
strategy), and queries are planned and executed through the same operators
regardless of the mode — physical design differences stay invisible to the
query author, exactly as adaptive indexing promises.

The front door is the :class:`~repro.engine.session.Session`
(``db.session()``): one lock-aware API for single queries, pipelined
futures, batches and DML, all interleaving safely across sessions and
threads with results bit-identical to a sequential per-access-path
ordering.
"""

from repro.engine.database import Database
from repro.engine.query import Aggregate, Query, QueryBuilder, RangeSelection
from repro.engine.planner import Planner, PlanStep
from repro.engine.executor import Executor, QueryResult
from repro.engine.session import OperationRecord, Session, SessionStats

__all__ = [
    "Aggregate",
    "Database",
    "Query",
    "QueryBuilder",
    "RangeSelection",
    "Planner",
    "PlanStep",
    "Executor",
    "QueryResult",
    "OperationRecord",
    "Session",
    "SessionStats",
]
