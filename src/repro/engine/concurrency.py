"""Per-access-path concurrency control for batch execution.

The tutorial's central premise is that adaptive indexes physically
reorganise *during reads*: a selection through cracking, adaptive merging, a
hybrid or an updatable column moves data and rewrites index bookkeeping as a
side effect of answering.  Two such selections over one access path must
therefore never run concurrently.  But the opposite is just as important:
an access path that does **not** reorganise on read — a plain scan, a full
offline index, a cracked column that has become fully sorted, an adaptive
merging index whose runs are drained, a converged hybrid — is a pure reader
and any number of queries may fan out over it at once.

This module gives :meth:`~repro.engine.database.Database.execute_many` that
distinction:

* :func:`reorganizes_on_read` asks the configured access path of one
  ``(table, column)`` whether a selection can still mutate it, preferring
  the ``reorganizes_on_read`` capability flag every
  :class:`~repro.core.strategies.SearchStrategy` carries;
* :func:`classify_plan` turns a planned query into
  :class:`AccessPathClaim` records — one per access path the plan
  dispatches through, shared (read-only) or exclusive (mutating);
* :func:`schedule_batch` partitions a batch into tasks: queries claiming
  the same exclusive access path stay on one task in submission order
  (so the physical reorganisation sequence — and with it every answer and
  every cost counter — is identical to sequential execution), while
  read-only queries become singleton tasks that fan out freely;
* :class:`AccessPathLockManager` hands out one lock per access-path key so
  exclusive execution is also protected against concurrent batches.

Classification happens once per batch, before any query runs: a path that
converges (for example, a cracked column that becomes fully sorted) in the
middle of a batch keeps its exclusive claim until the batch ends, which is
conservative but keeps scheduling deterministic.

Scope of the protection: concurrency control covers queries issued
*through batches* — concurrently issued ``execute_many`` calls serialize
their mutating claims on the shared per-path locks.  The single-query
``Database.execute`` front door and DML take no path locks and must not
run concurrently with a batch touching the same mutating paths.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


#: access-path key: ("path", table, column) or ("sideways", table)
PathKey = Tuple[str, ...]


@dataclass(frozen=True)
class AccessPathClaim:
    """One access path a planned query dispatches through.

    ``exclusive`` is True when a selection through the path can physically
    reorganise it (so queries claiming it must serialize, in submission
    order), False when the path is read-only under selection.
    """

    key: PathKey
    exclusive: bool


@dataclass
class BatchSchedule:
    """The task decomposition of one batch (see :func:`schedule_batch`)."""

    #: query positions per task; exclusive tasks preserve submission order
    tasks: List[List[int]] = field(default_factory=list)
    #: claims per query position (aligned with the submitted batch)
    claims: List[List[AccessPathClaim]] = field(default_factory=list)
    #: number of tasks serialized by at least one exclusive access path
    exclusive_groups: int = 0
    #: number of queries that claim no exclusive access path
    read_only_queries: int = 0

    @property
    def max_concurrency(self) -> int:
        """Number of tasks that could run at the same time."""
        return len(self.tasks)


@dataclass
class BatchExecutionReport:
    """Introspection record of the last ``execute_many`` call."""

    query_count: int = 0
    task_count: int = 0
    exclusive_groups: int = 0
    read_only_queries: int = 0
    parallel: bool = False
    workers_used: int = 0
    #: distinct worker thread names that executed at least one query
    worker_names: Tuple[str, ...] = ()


def reorganizes_on_read(database, table: str, column: str) -> bool:
    """True when a selection on ``table.column`` can mutate its access path.

    Managed modes are classified directly: a plain scan reads the base
    column, a full offline index answers with pure binary searches, while
    the online and soft-index tuners update recommendation statistics (and
    may build an index) on every selection.  Adaptive strategies are asked
    through their ``reorganizes_on_read`` capability flag; a path without
    the flag is conservatively treated as mutating.
    """
    mode = database.indexing_mode(table, column) or "scan"
    path = database.access_path(table, column)
    if mode == "scan" or path is None:
        return False
    if mode == "full-index":
        return False
    if mode in ("online", "soft"):
        return True
    return bool(getattr(path, "reorganizes_on_read", True))


def classify_plan(
    database,
    plan,
    exclusivity_cache: Optional[Dict[PathKey, bool]] = None,
) -> List[AccessPathClaim]:
    """Access-path claims of one planned query.

    Only the selection steps that dispatch through an access path generate
    claims; refinement, reconstruction and aggregation read base columns
    (immutable during a batch) and tombstones (lock-protected) only.
    Sideways cracking always claims exclusively: the cracker maps — and a
    possibly shared storage budget — mutate on every select, so sideways
    queries serialize per table.
    """
    cache = exclusivity_cache if exclusivity_cache is not None else {}
    claims: Dict[PathKey, AccessPathClaim] = {}
    for step in plan.access_path_steps():
        if step.operator == "sideways_select":
            key: PathKey = ("sideways", step.table)
            exclusive = True
        else:
            key = ("path", step.table, step.column)
            if step.operator == "scan_select":
                exclusive = False
            else:  # index_select
                if key not in cache:
                    # classify under the path's execution lock: a batch
                    # issued from another thread may be cracking this very
                    # column, and a convergence check (which latches) must
                    # never observe a mid-crack array
                    manager = getattr(database, "_path_locks", None)
                    guard = (
                        manager.lock_for(key) if manager is not None
                        else nullcontext()
                    )
                    with guard:
                        cache[key] = reorganizes_on_read(
                            database, step.table, step.column
                        )
                exclusive = cache[key]
        existing = claims.get(key)
        if existing is None or (exclusive and not existing.exclusive):
            claims[key] = AccessPathClaim(key, exclusive)
    return list(claims.values())


def schedule_batch(database, plans: Sequence) -> BatchSchedule:
    """Partition a batch of plans into independently executable tasks.

    Queries whose exclusive claims touch a common access path land on the
    same task, in submission order (transitively: a query claiming two
    paths merges their tasks), so per-path execution order — and with it
    the reorganisation sequence — matches sequential execution exactly.
    Queries with only shared claims become singleton tasks.
    """
    cache: Dict[PathKey, bool] = {}
    schedule = BatchSchedule()
    schedule.claims = [classify_plan(database, plan, cache) for plan in plans]

    # union-find over exclusive path keys: one component = one task
    parent: Dict[PathKey, PathKey] = {}

    def find(key: PathKey) -> PathKey:
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:  # path compression
            parent[key], key = root, parent[key]
        return root

    for claims in schedule.claims:
        exclusive_keys = [c.key for c in claims if c.exclusive]
        for key in exclusive_keys:
            parent.setdefault(key, key)
        for left, right in zip(exclusive_keys, exclusive_keys[1:]):
            parent[find(left)] = find(right)

    groups: Dict[PathKey, List[int]] = {}
    for position, claims in enumerate(schedule.claims):
        exclusive_keys = [c.key for c in claims if c.exclusive]
        if not exclusive_keys:
            schedule.tasks.append([position])
            schedule.read_only_queries += 1
            continue
        root = find(exclusive_keys[0])
        group = groups.get(root)
        if group is None:
            group = groups[root] = []
            schedule.tasks.append(group)
            schedule.exclusive_groups += 1
        group.append(position)
    return schedule


class AccessPathLockManager:
    """One lock per access-path key, created on first use.

    The scheduler already keeps exclusive claims of one batch on disjoint
    tasks, so within a batch these locks never contend; they additionally
    serialize mutating access across *concurrent* batches issued from
    different threads.  Keys are never removed: the registry stays small
    (one entry per (table, column) ever claimed) and a lock outliving a
    dropped table is harmless.
    """

    def __init__(self) -> None:
        self._locks: Dict[PathKey, threading.Lock] = {}
        self._registry_guard = threading.Lock()

    def lock_for(self, key: PathKey) -> threading.Lock:
        """The lock guarding ``key`` (created on first request)."""
        with self._registry_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    @contextmanager
    def locked(self, claims: Sequence[AccessPathClaim]):
        """Hold the locks of every exclusive claim (sorted, deadlock-free)."""
        keys = sorted({claim.key for claim in claims if claim.exclusive})
        locks = [self.lock_for(key) for key in keys]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()
