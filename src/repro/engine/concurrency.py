"""Per-access-path concurrency control for batch execution.

The tutorial's central premise is that adaptive indexes physically
reorganise *during reads*: a selection through cracking, adaptive merging, a
hybrid or an updatable column moves data and rewrites index bookkeeping as a
side effect of answering.  Two such selections over one access path must
therefore never run concurrently.  But the opposite is just as important:
an access path that does **not** reorganise on read — a plain scan, a full
offline index, a cracked column that has become fully sorted, an adaptive
merging index whose runs are drained, a converged hybrid — is a pure reader
and any number of queries may fan out over it at once.

This module gives :meth:`~repro.engine.database.Database.execute_many` that
distinction:

* :func:`reorganizes_on_read` asks the configured access path of one
  ``(table, column)`` whether a selection can still mutate it, preferring
  the ``reorganizes_on_read`` capability flag every
  :class:`~repro.core.strategies.SearchStrategy` carries;
* :func:`classify_plan` turns a planned query into
  :class:`AccessPathClaim` records — one per access path the plan
  dispatches through, shared (read-only) or exclusive (mutating);
* :func:`schedule_batch` partitions a batch into tasks: queries claiming
  the same exclusive access path stay on one task in submission order
  (so the physical reorganisation sequence — and with it every answer and
  every cost counter — is identical to sequential execution), while
  read-only queries become singleton tasks that fan out freely;
* :class:`AccessPathLockManager` hands out one lock per access-path key so
  exclusive execution is also protected against concurrent batches.

Classification happens once per batch, before any query runs: a path that
converges (for example, a cracked column that becomes fully sorted) in the
middle of a batch keeps its exclusive claim until the batch ends, which is
conservative but keeps scheduling deterministic.

Scope of the protection: since the session front door
(:mod:`repro.engine.session`) every entry point — single-query
``execute``, pipelined ``submit``, batches and DML — runs under the same
two-level protocol.  Level one is a per-table :class:`TableGate` (a fair
readers-writer gate): queries hold it shared, DML holds it exclusive, so
an insert or delete issued mid-batch is *fenced* behind the in-flight
cracks instead of racing the access-path rebuild.  Level two is the
per-access-path lock of :class:`AccessPathLockManager`, serializing
mutating selections per path.  Gates are always acquired before path
locks, gates in sorted table order, path locks in sorted key order — a
fixed two-level hierarchy, so the protocol is deadlock-free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


#: access-path key: ("path", table, column) or ("sideways", table)
PathKey = Tuple[str, ...]


@dataclass(frozen=True)
class AccessPathClaim:
    """One access path a planned query dispatches through.

    ``exclusive`` is True when a selection through the path can physically
    reorganise it (so queries claiming it must serialize, in submission
    order), False when the path is read-only under selection.
    """

    key: PathKey
    exclusive: bool


@dataclass
class BatchSchedule:
    """The task decomposition of one batch (see :func:`schedule_batch`)."""

    #: query positions per task; exclusive tasks preserve submission order
    tasks: List[List[int]] = field(default_factory=list)
    #: claims per query position (aligned with the submitted batch)
    claims: List[List[AccessPathClaim]] = field(default_factory=list)
    #: number of tasks serialized by at least one exclusive access path
    exclusive_groups: int = 0
    #: number of queries that claim no exclusive access path
    read_only_queries: int = 0

    @property
    def max_concurrency(self) -> int:
        """Number of tasks that could run at the same time."""
        return len(self.tasks)


@dataclass
class BatchExecutionReport:
    """Introspection record of the last ``execute_many`` call."""

    query_count: int = 0
    task_count: int = 0
    exclusive_groups: int = 0
    read_only_queries: int = 0
    parallel: bool = False
    workers_used: int = 0
    #: distinct worker thread names that executed at least one query
    worker_names: Tuple[str, ...] = ()


def reorganizes_on_read(database, table: str, column: str) -> bool:
    """True when a selection on ``table.column`` can mutate its access path.

    Managed modes are classified directly: a plain scan reads the base
    column, a full offline index answers with pure binary searches, while
    the online and soft-index tuners update recommendation statistics (and
    may build an index) on every selection.  Adaptive strategies are asked
    through their ``reorganizes_on_read`` capability flag; a path without
    the flag is conservatively treated as mutating.
    """
    mode = database.indexing_mode(table, column) or "scan"
    path = database.access_path(table, column)
    if mode == "scan" or path is None:
        return False
    if mode == "full-index":
        return False
    if mode in ("online", "soft"):
        return True
    return bool(getattr(path, "reorganizes_on_read", True))


def classify_plan(
    database,
    plan,
    exclusivity_cache: Optional[Dict[PathKey, bool]] = None,
) -> List[AccessPathClaim]:
    """Access-path claims of one planned query.

    Only the selection steps that dispatch through an access path generate
    claims; refinement, reconstruction and aggregation read base columns
    (immutable during a batch) and tombstones (lock-protected) only.
    Sideways cracking always claims exclusively: the cracker maps — and a
    possibly shared storage budget — mutate on every select, so sideways
    queries serialize per table.
    """
    cache = exclusivity_cache if exclusivity_cache is not None else {}
    claims: Dict[PathKey, AccessPathClaim] = {}
    for step in plan.access_path_steps():
        if step.operator == "sideways_select":
            key: PathKey = ("sideways", step.table)
            exclusive = True
        else:
            key = ("path", step.table, step.column)
            if step.operator == "scan_select":
                exclusive = False
            else:  # index_select
                if key not in cache:
                    # classify under the path's execution lock: a batch
                    # issued from another thread may be cracking this very
                    # column, and a convergence check (which latches) must
                    # never observe a mid-crack array
                    manager = getattr(database, "_path_locks", None)
                    guard = (
                        manager.lock_for(key) if manager is not None
                        else nullcontext()
                    )
                    with guard:
                        cache[key] = reorganizes_on_read(
                            database, step.table, step.column
                        )
                exclusive = cache[key]
        existing = claims.get(key)
        if existing is None or (exclusive and not existing.exclusive):
            claims[key] = AccessPathClaim(key, exclusive)
    return list(claims.values())


def schedule_batch(database, plans: Sequence) -> BatchSchedule:
    """Partition a batch of plans into independently executable tasks.

    Queries whose exclusive claims touch a common access path land on the
    same task, in submission order (transitively: a query claiming two
    paths merges their tasks), so per-path execution order — and with it
    the reorganisation sequence — matches sequential execution exactly.
    Queries with only shared claims become singleton tasks.
    """
    cache: Dict[PathKey, bool] = {}
    schedule = BatchSchedule()
    schedule.claims = [classify_plan(database, plan, cache) for plan in plans]

    # union-find over exclusive path keys: one component = one task
    parent: Dict[PathKey, PathKey] = {}

    def find(key: PathKey) -> PathKey:
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:  # path compression
            parent[key], key = root, parent[key]
        return root

    for claims in schedule.claims:
        exclusive_keys = [c.key for c in claims if c.exclusive]
        for key in exclusive_keys:
            parent.setdefault(key, key)
        for left, right in zip(exclusive_keys, exclusive_keys[1:]):
            parent[find(left)] = find(right)

    groups: Dict[PathKey, List[int]] = {}
    for position, claims in enumerate(schedule.claims):
        exclusive_keys = [c.key for c in claims if c.exclusive]
        if not exclusive_keys:
            schedule.tasks.append([position])
            schedule.read_only_queries += 1
            continue
        root = find(exclusive_keys[0])
        group = groups.get(root)
        if group is None:
            group = groups[root] = []
            schedule.tasks.append(group)
            schedule.exclusive_groups += 1
        group.append(position)
    return schedule


class AccessPathLockManager:
    """One lock per access-path key, created on first use.

    The scheduler already keeps exclusive claims of one batch on disjoint
    tasks, so within a batch these locks never contend; they additionally
    serialize mutating access across *concurrent* batches issued from
    different threads.  Keys are never removed: the registry stays small
    (one entry per (table, column) ever claimed) and a lock outliving a
    dropped table is harmless.
    """

    def __init__(self) -> None:
        self._locks: Dict[PathKey, threading.Lock] = {}
        self._registry_guard = threading.Lock()

    def lock_for(self, key: PathKey) -> threading.Lock:
        """The lock guarding ``key`` (created on first request)."""
        with self._registry_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    @contextmanager
    def locked(self, claims: Sequence[AccessPathClaim]):
        """Hold the locks of every exclusive claim (sorted, deadlock-free)."""
        keys = sorted({claim.key for claim in claims if claim.exclusive})
        locks = [self.lock_for(key) for key in keys]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()


class TableGate:
    """A fair readers-writer gate fencing DML against in-flight queries.

    Queries (single, pipelined, or whole batches) hold the gate *shared*:
    any number run at once, with the per-access-path locks arbitrating
    mutating selections among them.  DML holds the gate *exclusive*: an
    insert, delete or update waits until every in-flight query on the
    table drains, then appends rows / rebuilds access paths / mutates
    tombstones with nothing else running on the table.  This is the
    batch-aware DML queue of the session front door — DML issued
    mid-batch queues on the gate instead of racing the rebuild.

    The gate is writer-preferring: once a DML operation is waiting, newly
    arriving readers queue behind it, so a continuous query stream cannot
    starve updates (the workload shape adaptive indexing is built for —
    queries vastly outnumber updates — makes the symmetric starvation
    direction a non-issue).  Not reentrant: neither side may re-acquire.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._waiting_writers = 0
        #: times a DML operation had to wait for in-flight queries (or
        #: another DML op) to drain — the observable "fence" count
        self.fenced_writes = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._waiting_writers:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            if self._writer_active or self._active_readers:
                self.fenced_writes += 1
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read(self):
        """Hold the gate shared (query side)."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Hold the gate exclusive (DML side)."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def pending_writers(self) -> int:
        """DML operations currently queued on the gate."""
        with self._condition:
            return self._waiting_writers


class TableGateRegistry:
    """One :class:`TableGate` per table name, created on first use.

    Like the path-lock registry, entries are never removed: a gate
    outliving a dropped table is harmless and the registry stays small.
    Multi-table acquisition (a cross-table batch) must enter gates in
    sorted table order; DML only ever holds one gate.
    """

    def __init__(self) -> None:
        self._gates: Dict[str, TableGate] = {}
        self._registry_guard = threading.Lock()

    def gate(self, table: str) -> TableGate:
        with self._registry_guard:
            gate = self._gates.get(table)
            if gate is None:
                gate = self._gates[table] = TableGate()
            return gate

    @contextmanager
    def read(self, tables: Sequence[str]):
        """Hold the gates of ``tables`` shared (sorted, deadlock-free)."""
        gates = [self.gate(name) for name in sorted(set(tables))]
        entered: List[TableGate] = []
        try:
            for gate in gates:
                gate.acquire_read()
                entered.append(gate)
            yield
        finally:
            for gate in reversed(entered):
                gate.release_read()

    @contextmanager
    def write(self, table: str):
        """Hold one table's gate exclusive (the DML side)."""
        with self.gate(table).write():
            yield
