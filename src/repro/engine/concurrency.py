"""Per-access-path concurrency control for batch execution.

The tutorial's central premise is that adaptive indexes physically
reorganise *during reads*: a selection through cracking, adaptive merging, a
hybrid or an updatable column moves data and rewrites index bookkeeping as a
side effect of answering.  Two such selections over one access path must
therefore never run concurrently.  But the opposite is just as important:
an access path that does **not** reorganise on read — a plain scan, a full
offline index, a cracked column that has become fully sorted, an adaptive
merging index whose runs are drained, a converged hybrid — is a pure reader
and any number of queries may fan out over it at once.

This module gives :meth:`~repro.engine.database.Database.execute_many` that
distinction:

* :func:`reorganizes_on_read` asks the configured access path of one
  ``(table, column)`` whether a selection can still mutate it, preferring
  the ``reorganizes_on_read`` capability flag every
  :class:`~repro.core.strategies.SearchStrategy` carries;
* :func:`classify_plan` turns a planned query into
  :class:`AccessPathClaim` records — one per access path the plan
  dispatches through, shared (read-only) or exclusive (mutating);
* :func:`schedule_batch` partitions a batch into tasks: queries claiming
  the same exclusive access path stay on one task in submission order
  (so the physical reorganisation sequence — and with it every answer and
  every cost counter — is identical to sequential execution), while
  read-only queries become singleton tasks that fan out freely;
* :class:`AccessPathLockManager` hands out one lock per access-path key so
  exclusive execution is also protected against concurrent batches.

Classification happens once per batch, before any query runs: a path that
converges (for example, a cracked column that becomes fully sorted) in the
middle of a batch keeps its exclusive claim until the batch ends, which is
conservative but keeps scheduling deterministic.

Scope of the protection: since the session front door
(:mod:`repro.engine.session`) every entry point — single-query
``execute``, pipelined ``submit``, batches and DML — runs under the same
two-level protocol.  Level one is a per-table :class:`TableGate` (a fair
readers-writer gate): queries hold it shared, DML holds it exclusive, so
an insert or delete issued mid-batch is *fenced* behind the in-flight
cracks instead of racing the access-path rebuild.  Level two is the
per-access-path lock of :class:`AccessPathLockManager`, serializing
mutating selections per path.  Gates are always acquired before path
locks, gates in sorted table order, path locks in sorted key order — a
fixed two-level hierarchy, so the protocol is deadlock-free.
"""

from __future__ import annotations

import logging
import os
import threading
import traceback
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis_tools.guards import guarded_by

logger = logging.getLogger(__name__)

#: access-path key: ("path", table, column) or ("sideways", table)
PathKey = Tuple[str, ...]


# -- runtime lock-order witness -------------------------------------------------
#
# The static analyzer (repro.analysis_tools.reprolint) checks the documented
# acquisition order lexically; the witness checks it *dynamically*, across
# call boundaries the analyzer cannot see.  Every instrumented acquisition
# pushes onto a thread-local held-lock stack and records the edge
# (top-of-stack -> new lock) into a global acquisition-order graph.  An edge
# that would close a cycle — or that acquires a table gate while a path lock
# is held (rank regression) — is a potential deadlock and is reported with
# both stacks: the acquiring thread's, and the sample stack recorded when
# the conflicting edge was first observed.
#
# Off by default with zero overhead beyond one global read per acquisition;
# enabled by ``REPRO_LOCK_WITNESS=1`` (raise) / ``=log`` (warn only) or
# programmatically via :func:`enable_lock_witness`.


class LockOrderViolation(RuntimeError):
    """A lock acquisition violated the two-level order (possible deadlock)."""


#: acquisition ranks: gates strictly before path locks
_WITNESS_RANKS = {"gate": 0, "path": 1}


@guarded_by(_edges="_graph_lock", _violations="_graph_lock")
class LockOrderWitness:
    """Thread-local held-lock stacks feeding a global acquisition graph.

    Nodes are lock names (``gate:<table>``, ``path:<key>``); a directed
    edge ``a -> b`` means some thread acquired ``b`` while holding ``a``.
    The graph is append-only and shared by every thread; violating edges
    are reported (never added), so the published graph stays acyclic.
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "log"):
            raise ValueError(f"witness mode must be 'raise' or 'log', got {mode!r}")
        self.mode = mode
        self._tls = threading.local()
        self._graph_lock = threading.Lock()
        #: edge -> formatted stack of the thread that first recorded it
        self._edges: Dict[Tuple[str, str], str] = {}
        #: violation messages (also raised in ``raise`` mode)
        self._violations: List[str] = []

    # -- per-thread state ------------------------------------------------------

    def held(self) -> List[str]:
        """This thread's held-lock stack (outermost first)."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- graph inspection ------------------------------------------------------

    def edges(self) -> List[Tuple[str, str]]:
        """Every acquisition-order edge observed so far (sorted)."""
        with self._graph_lock:
            return sorted(self._edges)

    def violations(self) -> List[str]:
        """Messages of every violation reported so far."""
        with self._graph_lock:
            return list(self._violations)

    def is_acyclic(self) -> bool:
        """True when the observed acquisition graph has no cycle."""
        edges = self.edges()
        adjacent: Dict[str, List[str]] = {}
        for source, target in edges:
            adjacent.setdefault(source, []).append(target)
        done: Dict[str, bool] = {}  # False = on stack, True = finished

        def visit(node: str) -> bool:
            state = done.get(node)
            if state is False:
                return False
            if state is True:
                return True
            done[node] = False
            for successor in adjacent.get(node, ()):
                if not visit(successor):
                    return False
            done[node] = True
            return True

        return all(visit(node) for node in adjacent)

    # -- recording -------------------------------------------------------------

    def acquired(self, name: str) -> None:
        """Record that the current thread acquired ``name``."""
        stack = self.held()
        if stack:
            self._check_edge(stack[-1], name)
        stack.append(name)

    def released(self, name: str) -> None:
        """Record that the current thread released ``name``."""
        stack = self.held()
        # releases may be out of LIFO order: drop the innermost occurrence
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _rank(name: str) -> int:
        return _WITNESS_RANKS.get(name.split(":", 1)[0], len(_WITNESS_RANKS))

    def _find_path(self, source: str, target: str) -> Optional[List[str]]:
        """Nodes of a path ``source -> ... -> target``, or None (lock held)."""
        parents: Dict[str, str] = {source: source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for edge_source, edge_target in self._edges:
                if edge_source != node or edge_target in parents:
                    continue
                parents[edge_target] = node
                if edge_target == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return path[::-1]
                frontier.append(edge_target)
        return None

    def _check_edge(self, holding: str, acquiring: str) -> None:
        edge = (holding, acquiring)
        sample = "".join(traceback.format_stack(limit=16))
        with self._graph_lock:
            if edge in self._edges:
                return
            problem = None
            conflict_stack = ""
            if holding == acquiring:
                problem = f"re-acquisition of non-reentrant lock {acquiring!r}"
            elif self._rank(acquiring) < self._rank(holding):
                problem = (
                    f"rank regression: acquired {acquiring!r} while holding "
                    f"{holding!r} (table gates must be taken before path locks)"
                )
            else:
                reverse = self._find_path(acquiring, holding)
                if reverse is not None:
                    problem = (
                        "cycle-forming edge: "
                        + " -> ".join(reverse + [acquiring])
                    )
                    first_hop = (reverse[0], reverse[1])
                    conflict_stack = self._edges.get(first_hop, "")
            if problem is None:
                self._edges[edge] = sample
                return
            message = (
                f"lock-order violation ({problem})\n"
                f"held by this thread: {self.held() + [acquiring]}\n"
                f"--- acquiring thread stack ---\n{sample}"
            )
            if conflict_stack:
                message += (
                    f"--- stack that first recorded the conflicting edge ---\n"
                    f"{conflict_stack}"
                )
            self._violations.append(message)
        if self.mode == "raise":
            raise LockOrderViolation(message)
        logger.warning(message)


_WITNESS: Optional[LockOrderWitness] = None


def lock_witness() -> Optional[LockOrderWitness]:
    """The active witness, or None when witnessing is disabled."""
    return _WITNESS


def enable_lock_witness(mode: str = "raise") -> LockOrderWitness:
    """Install (and return) a fresh witness; replaces any previous one."""
    global _WITNESS
    _WITNESS = LockOrderWitness(mode)
    return _WITNESS


def disable_lock_witness() -> None:
    """Remove the active witness (instrumentation reverts to no-ops)."""
    global _WITNESS
    _WITNESS = None


_env_witness = os.environ.get("REPRO_LOCK_WITNESS", "").strip().lower()
if _env_witness in {"1", "true", "raise", "strict"}:
    enable_lock_witness("raise")
elif _env_witness in {"log", "warn"}:
    enable_lock_witness("log")
del _env_witness


class _WitnessedLock:
    """Thin path-lock wrapper reporting acquisitions to the witness.

    ``threading.Lock`` cannot be subclassed, so :meth:`lock_for` hands out
    this wrapper (same underlying lock, so raw and witnessed handles
    interoperate) whenever a witness is active.
    """

    __slots__ = ("_lock", "_name")

    def __init__(self, lock: threading.Lock, name: str) -> None:
        self._lock = lock
        self._name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            witness = _WITNESS
            if witness is not None:
                try:
                    witness.acquired(self._name)
                except BaseException:
                    # never leave the lock held when the witness raises
                    self._lock.release()
                    raise
        return acquired

    def release(self) -> None:
        witness = _WITNESS
        if witness is not None:
            witness.released(self._name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "_WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass(frozen=True)
class AccessPathClaim:
    """One access path a planned query dispatches through.

    ``exclusive`` is True when a selection through the path can physically
    reorganise it (so queries claiming it must serialize, in submission
    order), False when the path is read-only under selection.
    """

    key: PathKey
    exclusive: bool


@dataclass
class BatchSchedule:
    """The task decomposition of one batch (see :func:`schedule_batch`)."""

    #: query positions per task; exclusive tasks preserve submission order
    tasks: List[List[int]] = field(default_factory=list)
    #: claims per query position (aligned with the submitted batch)
    claims: List[List[AccessPathClaim]] = field(default_factory=list)
    #: number of tasks serialized by at least one exclusive access path
    exclusive_groups: int = 0
    #: number of queries that claim no exclusive access path
    read_only_queries: int = 0

    @property
    def max_concurrency(self) -> int:
        """Number of tasks that could run at the same time."""
        return len(self.tasks)


@dataclass
class BatchExecutionReport:
    """Introspection record of the last ``execute_many`` call."""

    query_count: int = 0
    task_count: int = 0
    exclusive_groups: int = 0
    read_only_queries: int = 0
    parallel: bool = False
    workers_used: int = 0
    #: distinct worker thread names that executed at least one query
    worker_names: Tuple[str, ...] = ()


def reorganizes_on_read(database, table: str, column: str) -> bool:
    """True when a selection on ``table.column`` can mutate its access path.

    Managed modes are classified directly: a plain scan reads the base
    column, a full offline index answers with pure binary searches, while
    the online and soft-index tuners update recommendation statistics (and
    may build an index) on every selection.  Adaptive strategies are asked
    through their ``reorganizes_on_read`` capability flag; a path without
    the flag is conservatively treated as mutating.
    """
    mode = database.indexing_mode(table, column) or "scan"
    path = database.access_path(table, column)
    if mode == "scan" or path is None:
        return False
    if mode == "full-index":
        return False
    if mode in ("online", "soft"):
        return True
    return bool(getattr(path, "reorganizes_on_read", True))


def classify_plan(
    database,
    plan,
    exclusivity_cache: Optional[Dict[PathKey, bool]] = None,
) -> List[AccessPathClaim]:
    """Access-path claims of one planned query.

    Only the selection steps that dispatch through an access path generate
    claims; refinement, reconstruction and aggregation read base columns
    (immutable during a batch) and tombstones (lock-protected) only.
    Sideways cracking always claims exclusively: the cracker maps — and a
    possibly shared storage budget — mutate on every select, so sideways
    queries serialize per table.
    """
    cache = exclusivity_cache if exclusivity_cache is not None else {}
    claims: Dict[PathKey, AccessPathClaim] = {}
    for step in plan.access_path_steps():
        if step.operator == "sideways_select":
            key: PathKey = ("sideways", step.table)
            exclusive = True
        else:
            key = ("path", step.table, step.column)
            if step.operator == "scan_select":
                exclusive = False
            else:  # index_select
                if key not in cache:
                    # classify under the path's execution lock: a batch
                    # issued from another thread may be cracking this very
                    # column, and a convergence check (which latches) must
                    # never observe a mid-crack array
                    manager = getattr(database, "_path_locks", None)
                    guard = (
                        manager.lock_for(key) if manager is not None
                        else nullcontext()
                    )
                    with guard:
                        cache[key] = reorganizes_on_read(
                            database, step.table, step.column
                        )
                exclusive = cache[key]
        existing = claims.get(key)
        if existing is None or (exclusive and not existing.exclusive):
            claims[key] = AccessPathClaim(key, exclusive)
    return list(claims.values())


def schedule_batch(database, plans: Sequence) -> BatchSchedule:
    """Partition a batch of plans into independently executable tasks.

    Queries whose exclusive claims touch a common access path land on the
    same task, in submission order (transitively: a query claiming two
    paths merges their tasks), so per-path execution order — and with it
    the reorganisation sequence — matches sequential execution exactly.
    Queries with only shared claims become singleton tasks.
    """
    cache: Dict[PathKey, bool] = {}
    schedule = BatchSchedule()
    schedule.claims = [classify_plan(database, plan, cache) for plan in plans]

    # union-find over exclusive path keys: one component = one task
    parent: Dict[PathKey, PathKey] = {}

    def find(key: PathKey) -> PathKey:
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:  # path compression
            parent[key], key = root, parent[key]
        return root

    for claims in schedule.claims:
        exclusive_keys = [c.key for c in claims if c.exclusive]
        for key in exclusive_keys:
            parent.setdefault(key, key)
        for left, right in zip(exclusive_keys, exclusive_keys[1:]):
            parent[find(left)] = find(right)

    groups: Dict[PathKey, List[int]] = {}
    for position, claims in enumerate(schedule.claims):
        exclusive_keys = [c.key for c in claims if c.exclusive]
        if not exclusive_keys:
            schedule.tasks.append([position])
            schedule.read_only_queries += 1
            continue
        root = find(exclusive_keys[0])
        group = groups.get(root)
        if group is None:
            group = groups[root] = []
            schedule.tasks.append(group)
            schedule.exclusive_groups += 1
        group.append(position)
    return schedule


@guarded_by(_locks="_registry_guard", _witnessed="_registry_guard")
class AccessPathLockManager:
    """One lock per access-path key, created on first use.

    The scheduler already keeps exclusive claims of one batch on disjoint
    tasks, so within a batch these locks never contend; they additionally
    serialize mutating access across *concurrent* batches issued from
    different threads.  Keys are never removed: the registry stays small
    (one entry per (table, column) ever claimed) and a lock outliving a
    dropped table is harmless.
    """

    def __init__(self) -> None:
        self._locks: Dict[PathKey, threading.Lock] = {}
        self._witnessed: Dict[PathKey, "_WitnessedLock"] = {}
        self._registry_guard = threading.Lock()

    def lock_for(self, key: PathKey):
        """The lock guarding ``key`` (created on first request).

        With a lock witness active the lock comes wrapped in a (cached,
        so identity is stable) :class:`_WitnessedLock`; raw and witnessed
        handles share the underlying lock and interoperate freely.
        """
        witness_active = _WITNESS is not None
        with self._registry_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            if not witness_active:
                return lock
            wrapped = self._witnessed.get(key)
            if wrapped is None:
                parts = key[1:] if key and key[0] == "path" else key
                name = "path:" + ":".join(map(str, parts))
                wrapped = self._witnessed[key] = _WitnessedLock(lock, name)
            return wrapped

    @contextmanager
    def locked(self, claims: Sequence[AccessPathClaim]):
        """Hold the locks of every exclusive claim (sorted, deadlock-free)."""
        keys = sorted({claim.key for claim in claims if claim.exclusive})
        locks = [self.lock_for(key) for key in keys]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()


@guarded_by(
    _active_readers="_condition",
    _writer_active="_condition",
    _waiting_writers="_condition",
    fenced_writes="_condition",
)
class TableGate:
    """A fair readers-writer gate fencing DML against in-flight queries.

    Queries (single, pipelined, or whole batches) hold the gate *shared*:
    any number run at once, with the per-access-path locks arbitrating
    mutating selections among them.  DML holds the gate *exclusive*: an
    insert, delete or update waits until every in-flight query on the
    table drains, then appends rows / rebuilds access paths / mutates
    tombstones with nothing else running on the table.  This is the
    batch-aware DML queue of the session front door — DML issued
    mid-batch queues on the gate instead of racing the rebuild.

    The gate is writer-preferring: once a DML operation is waiting, newly
    arriving readers queue behind it, so a continuous query stream cannot
    starve updates (the workload shape adaptive indexing is built for —
    queries vastly outnumber updates — makes the symmetric starvation
    direction a non-issue).  Not reentrant: neither side may re-acquire.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._waiting_writers = 0
        #: witness node name (the registry passes the table name)
        self._witness_name = f"gate:{name}" if name else f"gate:@{id(self):x}"
        #: times a DML operation had to wait for in-flight queries (or
        #: another DML op) to drain — the observable "fence" count
        self.fenced_writes = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._waiting_writers:
                self._condition.wait()
            self._active_readers += 1
        witness = _WITNESS
        if witness is not None:
            try:
                witness.acquired(self._witness_name)
            except BaseException:
                # never leave the gate held when the witness raises; the
                # failed acquisition was not pushed, so the nested
                # witness.released call is a harmless no-op
                self.release_read()
                raise

    def release_read(self) -> None:
        witness = _WITNESS
        if witness is not None:
            witness.released(self._witness_name)
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            if self._writer_active or self._active_readers:
                self.fenced_writes += 1
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True
        witness = _WITNESS
        if witness is not None:
            try:
                witness.acquired(self._witness_name)
            except BaseException:
                self.release_write()
                raise

    def release_write(self) -> None:
        witness = _WITNESS
        if witness is not None:
            witness.released(self._witness_name)
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read(self):
        """Hold the gate shared (query side)."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Hold the gate exclusive (DML side)."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def pending_writers(self) -> int:
        """DML operations currently queued on the gate."""
        with self._condition:
            return self._waiting_writers


@guarded_by(_gates="_registry_guard")
class TableGateRegistry:
    """One :class:`TableGate` per table name, created on first use.

    Like the path-lock registry, entries are never removed: a gate
    outliving a dropped table is harmless and the registry stays small.
    Multi-table acquisition (a cross-table batch) must enter gates in
    sorted table order; DML only ever holds one gate.
    """

    def __init__(self) -> None:
        self._gates: Dict[str, TableGate] = {}
        self._registry_guard = threading.Lock()

    def gate(self, table: str) -> TableGate:
        with self._registry_guard:
            gate = self._gates.get(table)
            if gate is None:
                gate = self._gates[table] = TableGate(name=table)
            return gate

    @contextmanager
    def read(self, tables: Sequence[str]):
        """Hold the gates of ``tables`` shared (sorted, deadlock-free)."""
        gates = [self.gate(name) for name in sorted(set(tables))]
        entered: List[TableGate] = []
        try:
            for gate in gates:
                gate.acquire_read()
                entered.append(gate)
            yield
        finally:
            for gate in reversed(entered):
                gate.release_read()

    @contextmanager
    def write(self, table: str):
        """Hold one table's gate exclusive (the DML side)."""
        with self.gate(table).write():
            yield

    @contextmanager
    def write_all(self, tables: Sequence[str]):
        """Hold every listed gate exclusive (sorted, deadlock-free).

        The snapshot writer uses this to quiesce the whole store: with
        all gates held exclusive there is no query or DML in flight, so
        the captured column arrays, tombstones and high-water sequence
        are one consistent cut of the database.
        """
        gates = [self.gate(name) for name in sorted(set(tables))]
        entered: List[TableGate] = []
        try:
            for gate in gates:
                gate.acquire_write()
                entered.append(gate)
            yield
        finally:
            for gate in reversed(entered):
                gate.release_write()
