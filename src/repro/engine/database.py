"""The Database facade: tables, physical design modes, query execution.

A :class:`Database` owns tables and, for each (table, column), an *indexing
mode* describing the physical design used to answer selections on that
column:

``"scan"``
    no index; every selection scans (the default);
``"full-index"``
    a full offline index, built when the mode is set (idle time);
``"online"``
    the online tuner (:class:`~repro.indexes.online_tuner.OnlineIndexTuner`)
    monitors selections and builds a full index when the benefit threshold
    is crossed;
``"soft"``
    soft indexes: recommendation during processing, non-incremental build
    piggy-backed on a scan;
any adaptive strategy name (``"cracking"``, ``"adaptive-merging"``,
``"hybrid-crack-sort"``, ...)
    the corresponding :class:`~repro.core.strategies.SearchStrategy` answers
    and refines itself incrementally.

Additionally a table can be put under **sideways cracking** for a selection
attribute (:meth:`enable_sideways`), which takes over multi-column
select/project queries on that attribute.

Execution goes through the **session front door**
(:mod:`repro.engine.session`): ``db.session()`` yields a handle whose
``execute``/``submit``/``execute_many`` and DML methods all run under the
same two-level concurrency protocol — a per-table readers-writer gate
fencing DML against in-flight queries, plus the per-access-path locks of
:mod:`repro.engine.concurrency` serializing mutating selections.  The
historical ``Database.execute`` / ``execute_many`` / ``run_workload`` and
DML methods remain as thin wrappers delegating to a shared default
session, so every entry point is safe to use concurrently and results
plus cost counters stay bit-identical to a sequential per-access-path
ordering of the same operations.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis_tools.guards import guarded_by
from repro.columnstore.column import Column
from repro.columnstore.select import RangePredicate
from repro.columnstore.storage import MemoryTracker, StorageBudget
from repro.columnstore.table import Table
from repro.core.cracking.sideways import SidewaysCracker
from repro.core.strategies import SearchStrategy, available_strategies, create_strategy
from repro.cost.counters import CostCounters
from repro.cost.stats import WorkloadStatistics
from repro.cost.timer import Timer
from repro.cost.witness import cost_witness
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    has_durable_state,
)
from repro.durability.record import ColumnDump, WalRecord
from repro.durability.snapshot import IndexModeState, SnapshotState, TableState
from repro.engine.concurrency import (
    AccessPathLockManager,
    BatchExecutionReport,
    TableGate,
    TableGateRegistry,
)
from repro.engine.executor import Executor, QueryResult
from repro.engine.planner import Plan, Planner
from repro.engine.query import Query, QueryBuilder
from repro.engine.session import OperationRecord, Session
from repro.indexes.full_index import FullIndex
from repro.indexes.online_tuner import OnlineIndexTuner
from repro.indexes.soft_index import SoftIndexManager


_MANAGED_MODES = ("scan", "full-index", "online", "soft")


@guarded_by(
    # tombstone state: parallel batch workers read concurrently with DML
    _deleted_rows="_tombstone_lock",
    _tombstone_cache="_tombstone_lock",
    # engine-level bookkeeping shared by every session
    queries_executed="_engine_stats_lock",
    rows_inserted="_engine_stats_lock",
    rows_deleted="_engine_stats_lock",
    last_batch_report="_engine_stats_lock",
    _journal="_engine_stats_lock",
    _op_sequence="_engine_stats_lock",
    _wrapper_session="_engine_stats_lock",
    journal_retention="_engine_stats_lock",
)
class Database:
    """An in-memory column-store database with pluggable physical design."""

    def __init__(
        self,
        name: str = "db",
        data_dir: Optional[Union[str, Path]] = None,
        durability: Optional[DurabilityConfig] = None,
        fault_injector=None,
    ) -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        # (table, column) -> mode string
        self._modes: Dict[Tuple[str, str], str] = {}
        # (table, column) -> options passed to set_indexing (for rebuilds)
        self._mode_options: Dict[Tuple[str, str], Dict] = {}
        # (table, column) -> access-path object for that mode
        self._access_paths: Dict[Tuple[str, str], object] = {}
        # table -> head column -> SidewaysCracker
        self._sideways: Dict[str, Dict[str, SidewaysCracker]] = {}
        # table -> positions deleted by DML (tombstones; appends keep all
        # other positions stable, so visible rowids never shift)
        self._deleted_rows: Dict[str, set] = {}
        # table -> sorted tombstone array, rebuilt lazily when stale
        self._tombstone_cache: Dict[str, np.ndarray] = {}
        # guards tombstone-set mutation and cache rebuild: parallel batch
        # workers read tombstones concurrently, and without the lock two
        # rebuilds could race a concurrent delete mid-iteration
        self._tombstone_lock = threading.Lock()
        # per-access-path execution locks shared by every session
        self._path_locks = AccessPathLockManager()
        # per-table readers-writer gates: queries shared, DML exclusive
        self._table_gates = TableGateRegistry()
        # guards engine-level bookkeeping (queries_executed,
        # last_batch_report, the operation journal) across sessions
        self._engine_stats_lock = threading.Lock()
        # journal-order mutex: held across sequence assignment *and* the
        # WAL append so records reach the journal in linearization order
        # (two sessions writing different tables hold different gates, so
        # the gates alone cannot order their appends; WalScan treats a
        # non-increasing sequence as corruption).  Taken only on durable
        # paths; ordering: table gates > this > _engine_stats_lock / the
        # WAL's internal mutex.
        self._wal_order_lock = threading.Lock()
        # schema mutex: create_table/drop_table/set_indexing run under it,
        # and snapshot() holds it across its all-gate quiesce — DML is
        # excluded by the gates, DDL by this lock, so the snapshot's cut
        # (tables, modes, high-water sequence) is consistent with the
        # journal.  Ordering: this > table gates.
        self._schema_lock = threading.Lock()
        #: introspection record of the most recent execute_many call
        self.last_batch_report: Optional[BatchExecutionReport] = None
        #: when True, every session operation is appended to the journal
        #: (the linearized history replayed by the sequential oracle)
        self.record_journal = False
        self._journal: List[OperationRecord] = []
        #: in-memory journal bound (None = unbounded; see set_journal_retention)
        self.journal_retention: Optional[int] = None
        self._op_sequence = 0
        # shared session backing the legacy execute/execute_many/DML wrappers
        self._wrapper_session: Optional[Session] = None
        self.memory = MemoryTracker()
        self.planner = Planner(self)
        self.executor = Executor(self)
        self.queries_executed = 0
        self.rows_inserted = 0
        self.rows_deleted = 0
        #: durable journal + snapshot manager (None = in-memory only, the
        #: default: the hooks below are single is-None checks, zero cost)
        self._durability: Optional[DurabilityManager] = None
        #: populated by Database.open with what recovery did
        self.recovery_report = None
        if data_dir is not None:
            if has_durable_state(data_dir):
                raise ValueError(
                    f"data directory {str(data_dir)!r} already holds durable "
                    "state; use Database.open() to recover it instead of "
                    "constructing a fresh database over it"
                )
            self._durability = DurabilityManager(
                data_dir, config=durability, injector=fault_injector
            )

    # -- durability ---------------------------------------------------------------

    @classmethod
    def open(
        cls,
        data_dir: Union[str, Path],
        name: Optional[str] = None,
        durability: Optional[DurabilityConfig] = None,
        fault_injector=None,
    ) -> "Database":
        """Recover a database from ``data_dir`` (crash-safe open).

        Loads the newest valid snapshot, replays the surviving journal
        tail through the ordinary session path (tolerating a torn final
        record), resumes the linearization counter, and re-attaches the
        durability layer.  The recovery details — snapshot used, replayed
        operation counts, elapsed time, any tolerated torn tail — are on
        :attr:`recovery_report`.  Raises
        :class:`~repro.durability.recovery.RecoveryError` instead of ever
        building a silently incomplete state.
        """
        # imported lazily: recovery sits above the engine in the layering
        from repro.durability.recovery import recover

        database, _ = recover(
            data_dir, name=name, config=durability, injector=fault_injector
        )
        return database

    def _attach_durability(self, manager: DurabilityManager) -> None:
        """Install the journal/snapshot manager (recovery's last step)."""
        self._durability = manager

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The attached durability manager (None = in-memory only)."""
        return self._durability

    def snapshot(self) -> Path:
        """Write a durable snapshot now; returns the snapshot's path.

        Quiesces the store (every table gate held exclusive), captures a
        consistent cut — column arrays, tombstones, indexing modes, the
        journal high-water sequence — writes it atomically, truncates the
        journal through the high-water mark, and trims the in-memory
        journal the same way.  Requires durability (``data_dir``).
        """
        manager = self._durability
        if manager is None:
            raise RuntimeError(
                "durability is not enabled; construct the database with "
                "data_dir=... or recover one with Database.open()"
            )
        # the schema lock (held before the gates, matching every DDL path)
        # extends the quiesce to create_table/drop_table/set_indexing: the
        # gates only exclude DML and queries, so without it a racing DDL op
        # could land in the captured tables *and* carry a sequence past the
        # recorded high-water mark, making recovery replay it twice
        with self._schema_lock:
            with self._table_gates.write_all(self.table_names):
                state = self._capture_snapshot_state()
                # the dump (and its fsyncs) runs inside the quiesced section
                # by design: a consistent cut needs no concurrent DML —
                # flagged by reprolint RL005 and baselined with this
                # reasoning
                path = manager.write_snapshot(state)
                self._trim_journal(state.high_water)
        return path

    def _capture_snapshot_state(self) -> SnapshotState:
        """Capture a consistent dump; the caller holds every write gate."""
        with self._engine_stats_lock:
            op_sequence = self._op_sequence
        tables = []
        for table_name in self.table_names:
            table = self._tables[table_name]
            with self._tombstone_lock:
                deleted = tuple(sorted(self._deleted_rows.get(table_name, ())))
            dumps = tuple(
                ColumnDump(
                    column_name,
                    column.dtype,
                    np.frombuffer(
                        column.tobytes(), dtype=column.dtype.numpy_dtype
                    ),
                )
                for column_name, column in table.columns.items()
            )
            tables.append(
                TableState(name=table_name, columns=dumps, deleted_rows=deleted)
            )
        modes = tuple(
            IndexModeState(
                table=table_name,
                column=column_name,
                mode=mode,
                options=dict(self._mode_options.get((table_name, column_name), {})),
            )
            for (table_name, column_name), mode in sorted(self._modes.items())
        )
        return SnapshotState(
            name=self.name,
            high_water=op_sequence - 1,
            op_sequence=op_sequence,
            tables=tuple(tables),
            modes=modes,
        )

    def _next_sequence(self) -> int:
        """Consume one linearization sequence number (no journal entry)."""
        with self._engine_stats_lock:
            sequence = self._op_sequence
            self._op_sequence += 1
            return sequence

    def _durable_schema_record(self, kind: str, table: str, **fields) -> None:
        """Journal one schema operation (no-op without durability).

        The caller holds ``_schema_lock``; the order mutex additionally
        spans sequence assignment and the append so a schema record can
        never reach the WAL out of linearization order relative to a
        concurrent DML append on some table gate.
        """
        manager = self._durability
        if manager is None:
            return
        with self._wal_order_lock:
            sequence = self._next_sequence()
            manager.append_record(
                WalRecord(sequence=sequence, kind=kind, table=table, **fields)
            )

    def close(self) -> None:
        """Flush and close the durability layer and release execution
        resources — fan-out pools, shared-memory segments, the default
        wrapper session's pool (idempotent).

        The in-memory state stays usable (paths re-create what they need
        lazily; shared segments are copied back into private arrays
        first), but the journal stops: a closed database no longer
        persists anything.
        """
        with self._engine_stats_lock:
            session, self._wrapper_session = self._wrapper_session, None
        if session is not None:
            session.close()
        for path in list(self._access_paths.values()):
            self._close_path(path)
        manager = self._durability
        if manager is not None:
            manager.close()

    # -- sessions -----------------------------------------------------------------

    def session(
        self, name: Optional[str] = None, max_workers: Optional[int] = None
    ) -> Session:
        """Open a lock-aware session handle (use it context-managed).

        All sessions on one database interleave safely: queries, pipelined
        futures, batches and DML from any of them are equivalent to a
        sequential per-access-path ordering of the same operations.
        """
        return Session(self, name=name, max_workers=max_workers)

    def _default_session(self) -> Session:
        """The shared session behind the legacy ``Database`` entry points."""
        with self._engine_stats_lock:
            if self._wrapper_session is None:
                self._wrapper_session = Session(self, name=f"{self.name}-default")
            return self._wrapper_session

    def query(self, table: str) -> QueryBuilder:
        """Fluent query builder bound to the default session.

        ``db.query("T").where("a", lo, hi).select("b").agg("sum", "b").run()``
        desugars to a :class:`Query` and executes it lock-aware.
        """
        session = self._default_session()
        return QueryBuilder(table, runner=session.execute, submitter=session.submit)

    # -- schema management --------------------------------------------------------

    def create_table(
        self, name: str, columns: Mapping[str, Union[Column, np.ndarray, Iterable]]
    ) -> Table:
        """Create and register a table from a mapping column-name -> values."""
        # the schema lock serializes DDL against snapshot(): a table born
        # while a snapshot captures would otherwise land in the snapshot
        # *and* journal a sequence past its high-water mark, so recovery
        # would replay the creation onto an already-existing table
        with self._schema_lock:
            if name in self._tables:
                raise ValueError(f"table {name!r} already exists")
            table = Table(name, columns)
            self._tables[name] = table
            self.memory.set_usage(f"table:{name}", table.nbytes)
            # a table born from data must be reconstructible from the
            # journal alone (no snapshot may ever cover it), so the record
            # carries the full initial column arrays
            self._durable_schema_record(
                "create_table",
                name,
                columns=tuple(
                    ColumnDump(column_name, column.dtype, column.values)
                    for column_name, column in table.columns.items()
                ),
            )
            return table

    @staticmethod
    def _close_path(path) -> None:
        """Release an access path's resources (fan-out pools, shared memory).

        Only adaptive strategies hold releasable resources today; managed
        indexes (full/online/soft) are plain in-process structures.
        """
        close = getattr(path, "close", None)
        if close is not None:
            close()

    def drop_table(self, name: str) -> None:
        """Drop a table and all physical structures attached to it."""
        # under the schema lock so a concurrent snapshot's captured table
        # set stays consistent with its high-water mark (see create_table)
        with self._schema_lock:
            if name not in self._tables:
                raise KeyError(f"no table {name!r}")
            del self._tables[name]
            for dropped_table, dropped_column in list(self._access_paths):
                if dropped_table == name:
                    self.memory.remove(
                        f"index:{dropped_table}.{dropped_column}"
                    )
                    self._close_path(
                        self._access_paths[(dropped_table, dropped_column)]
                    )
            self._modes = {
                k: v for k, v in self._modes.items() if k[0] != name
            }
            self._mode_options = {
                k: v for k, v in self._mode_options.items() if k[0] != name
            }
            self._access_paths = {
                k: v for k, v in self._access_paths.items() if k[0] != name
            }
            self._sideways.pop(name, None)
            with self._tombstone_lock:
                self._deleted_rows.pop(name, None)
                self._tombstone_cache.pop(name, None)
            self.memory.remove(f"table:{name}")
            self._durable_schema_record("drop_table", name)

    def table(self, name: str) -> Table:
        """Return the table named ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r}; available: {sorted(self._tables)}"
            ) from None

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- physical design ------------------------------------------------------------

    def set_indexing(self, table: str, column: str, mode: str, **options) -> None:
        """Choose the indexing mode for selections on ``table.column``."""
        known_adaptive = available_strategies()
        if mode not in _MANAGED_MODES and mode not in known_adaptive:
            raise ValueError(
                f"unknown indexing mode {mode!r}; "
                f"managed modes: {_MANAGED_MODES}, strategies: {known_adaptive}"
            )
        # under the schema lock so a concurrent snapshot's captured mode
        # set stays consistent with its high-water mark (see create_table)
        with self._schema_lock:
            owning_table = self.table(table)
            if column not in owning_table:
                raise KeyError(f"no column {column!r} in table {table!r}")
            key = (table, column)
            self._modes[key] = mode
            self._mode_options[key] = dict(options)
            base_column = owning_table.column(column)
            # a previous mode may have recorded index memory for this
            # column; forget it (and release its resources) before the new
            # mode's
            self.memory.remove(f"index:{table}.{column}")
            self._close_path(self._access_paths.get(key))
            if mode == "scan":
                self._access_paths.pop(key, None)
            elif mode == "full-index":
                index = FullIndex(base_column, name=column)
                self._access_paths[key] = index
                self.memory.set_usage(f"index:{table}.{column}", index.nbytes)
            elif mode == "online":
                self._access_paths[key] = OnlineIndexTuner(
                    build_threshold_factor=options.get(
                        "build_threshold_factor", 1.0
                    ),
                    decay=options.get("decay", 0.995),
                    max_indexes=options.get("max_indexes"),
                )
            elif mode == "soft":
                self._access_paths[key] = SoftIndexManager(
                    recommendation_threshold=options.get(
                        "recommendation_threshold", 3
                    )
                )
            else:
                strategy = create_strategy(mode, base_column, **options)
                if getattr(strategy, "supports_updates", False):
                    # the new column treats every base position as a live
                    # row; replay existing tombstones so rows deleted under
                    # an earlier mode stay deleted (its answers are not
                    # filtered)
                    for rowid in self._deleted_rows.get(table, ()):
                        strategy.delete(rowid)
                self._access_paths[key] = strategy
            # journaled so recovery re-installs the mode (options must stay
            # JSON-serializable scalars, which every registered strategy's
            # are)
            self._durable_schema_record(
                "set_indexing", table, column=column, mode=mode,
                options=dict(options),
            )

    def indexing_mode(self, table: str, column: str) -> Optional[str]:
        """Current indexing mode of ``table.column`` (None = never set = scan)."""
        return self._modes.get((table, column))

    def access_path(self, table: str, column: str):
        """The physical access-path object for ``table.column`` (or None)."""
        return self._access_paths.get((table, column))

    def enable_sideways(
        self,
        table: str,
        head_column: str,
        budget: Optional[StorageBudget] = None,
        **options,
    ) -> SidewaysCracker:
        """Enable sideways cracking for selections on ``table.head_column``."""
        owning_table = self.table(table)
        cracker = SidewaysCracker(
            owning_table, head_column, budget=budget,
            sort_threshold=options.get("sort_threshold", 0),
        )
        self._sideways.setdefault(table, {})[head_column] = cracker
        return cracker

    def has_sideways(self, table: str, column: str) -> bool:
        """True when a sideways map set exists for ``table.column``."""
        return column in self._sideways.get(table, {})

    def sideways_cracker(self, table: str, column: str) -> SidewaysCracker:
        return self._sideways[table][column]

    # -- data manipulation ---------------------------------------------------------------

    def insert_row(
        self,
        table: str,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Insert one row (a mapping column-name -> value); returns its rowid.

        Thin wrapper delegating to the default session: the insert holds
        the table gate exclusive (fenced against in-flight queries and
        batches) and every access-path absorb/rebuild runs under that
        path's lock.  See :meth:`Session.insert_row`.
        """
        return self._default_session().insert_row(table, values, counters)

    def _insert_row_locked(
        self,
        table: str,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Insert one row; the caller holds the table's write gate.

        The row is appended to every column of the table, so existing row
        positions never shift.  Every configured access path stays
        consistent: updatable strategies absorb the insert through their
        pending queues (merge on demand), a full index is rebuilt (offline
        semantics), online/soft managed indexes on the column are dropped
        (their tuners rebuild them when the benefit threshold is crossed
        again), and non-updatable adaptive strategies are rebuilt over the
        grown column — the honest cost of a physical design without update
        support, and exactly what the updatable strategies avoid.
        """
        owning_table = self.table(table)
        rowid = owning_table.row_count
        owning_table.append_rows(dict(values), counters=counters)
        self.memory.set_usage(f"table:{table}", owning_table.nbytes)
        for (owner, column_name), mode in list(self._modes.items()):
            if owner == table:
                # the rebuild/absorb additionally holds the owning
                # access-path lock, so even a caller that bypasses the
                # gates cannot race a selection through this path
                with self._path_locks.lock_for(("path", table, column_name)):
                    self._absorb_insert(
                        table, column_name, mode, values[column_name], rowid,
                        counters,
                    )
        # sideways cracker maps are non-incremental copies: drop them so they
        # re-materialise (and replay the crack history) from the grown table
        with self._path_locks.lock_for(("sideways", table)):
            for cracker in self._sideways.get(table, {}).values():
                for cracker_map in list(cracker.maps.values()):
                    cracker.budget.release(cracker_map.nbytes)
                cracker.maps.clear()
        with self._engine_stats_lock:
            self.rows_inserted += 1
        return rowid

    def _absorb_insert(
        self,
        table: str,
        column: str,
        mode: str,
        value: Union[int, float],
        rowid: int,
        counters: Optional[CostCounters],
    ) -> None:
        """Bring one access path up to date with a newly appended row."""
        key = (table, column)
        path = self._access_paths.get(key)
        if mode == "scan" or path is None:
            return  # scans read the base column, which already has the row
        if getattr(path, "supports_updates", False):
            path.insert(value, counters, rowid=rowid)
            # absorbing (and possibly repartitioning) changes the auxiliary
            # footprint; keep the tracker in step with the live structure
            self.memory.set_usage(f"index:{table}.{column}", path.nbytes)
            return
        base_column = self.table(table).column(column)
        if mode == "full-index":
            index = FullIndex(base_column, name=column)
            self._access_paths[key] = index
            self.memory.set_usage(f"index:{table}.{column}", index.nbytes)
            return
        if mode in ("online", "soft"):
            path.indexes.pop(column, None)
            return
        options = self._mode_options.get(key, {})
        self._close_path(path)
        self._access_paths[key] = create_strategy(mode, base_column, **options)

    def delete_row(
        self,
        table: str,
        rowid: int,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Delete the row identified by ``rowid`` (idempotent).

        Thin wrapper delegating to the default session (fenced on the
        table gate).  See :meth:`Session.delete_row`.
        """
        self._default_session().delete_row(table, rowid, counters)

    def _delete_row_locked(
        self,
        table: str,
        rowid: int,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Delete one row; the caller holds the table's write gate.

        The base columns are not compacted — the position is tombstoned so
        every other rowid stays stable — and updatable access paths queue a
        pending delete, merged on demand by the next query that touches the
        deleted value's range.  All other access paths are filtered against
        the tombstones at query time.
        """
        owning_table = self.table(table)
        rowid = int(rowid)
        if not 0 <= rowid < owning_table.row_count:
            raise KeyError(f"unknown row identifier {rowid} in table {table!r}")
        # mutate the tombstone map and set under the lock so a concurrent
        # cache rebuild never iterates a set that changes size underneath it
        with self._tombstone_lock:
            deleted = self._deleted_rows.setdefault(table, set())
            if rowid in deleted:
                return
            deleted.add(rowid)
        for (owner, column_name), path in self._access_paths.items():
            if owner == table and getattr(path, "supports_updates", False):
                with self._path_locks.lock_for(("path", table, column_name)):
                    path.delete(rowid, counters)
                    self.memory.set_usage(
                        f"index:{table}.{column_name}", path.nbytes
                    )
        if counters is not None:
            counters.record_move(1)
        with self._engine_stats_lock:
            self.rows_deleted += 1

    def update_row(
        self,
        table: str,
        rowid: int,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Update = delete the old row + insert the changed one; returns the new rowid.

        Thin wrapper delegating to the default session: both halves run
        under one table-gate fence.  See :meth:`Session.update_row`.
        """
        return self._default_session().update_row(table, rowid, values, counters)

    def _update_row_locked(
        self,
        table: str,
        rowid: int,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Update one row; the caller holds the table's write gate.

        ``values`` names the columns to change; unmentioned columns keep the
        old row's values.  This mirrors how the update machinery treats an
        update as a delete/insert pair, so the row receives a fresh rowid.
        """
        owning_table = self.table(table)
        rowid = int(rowid)
        if rowid in self._deleted_rows.get(table, set()):
            raise KeyError(f"row {rowid} of table {table!r} has been deleted")
        if not 0 <= rowid < owning_table.row_count:
            raise KeyError(f"unknown row identifier {rowid} in table {table!r}")
        unknown = set(values) - set(owning_table.column_names)
        if unknown:
            raise KeyError(
                f"no columns {sorted(unknown)} in table {table!r}"
            )
        row = {
            name: values_array[0]
            for name, values_array in owning_table.fetch_rows(
                [rowid], counters=counters
            ).items()
        }
        row.update(values)
        # validate the merged row against every column dtype *before*
        # tombstoning, so a rejected value cannot silently lose the row
        for name, value in row.items():
            owning_table.column(name).dtype.validate_array(
                np.atleast_1d(np.asarray(value))
            )
        self._delete_row_locked(table, rowid, counters)
        return self._insert_row_locked(table, row, counters)

    def _tombstones(self, table: str) -> Optional[np.ndarray]:
        """Sorted tombstone positions of ``table`` (None when there are none).

        The array is cached and rebuilt lazily; tombstone sets only grow, so
        a length mismatch is the complete staleness signal.  Parallel batch
        workers call this concurrently: the fast path reads the published
        (immutable once published) array without locking, while a stale or
        missing cache is rebuilt under ``_tombstone_lock`` — build first,
        publish the finished array last, and re-check staleness under the
        lock so concurrent workers never duplicate or tear a rebuild.
        """
        deleted = self._deleted_rows.get(table)
        if not deleted:
            return None
        cached = self._tombstone_cache.get(table)
        if cached is not None and len(cached) == len(deleted):
            return cached
        with self._tombstone_lock:
            # the table may have been dropped (and even recreated) while this
            # worker waited: re-read the live set and never publish an array
            # built from a stale set identity into the cache of the new table
            deleted = self._deleted_rows.get(table)
            if not deleted:
                return None
            # another worker may have rebuilt while this one waited
            cached = self._tombstone_cache.get(table)
            if cached is None or len(cached) != len(deleted):
                rebuilt = np.fromiter(deleted, dtype=np.int64, count=len(deleted))
                rebuilt.sort()
                self._tombstone_cache[table] = rebuilt
                cached = rebuilt
        return cached

    def visible_positions(self, table: str, positions: np.ndarray) -> np.ndarray:
        """Filter DML tombstones out of a position list (no-op when none)."""
        tombstones = self._tombstones(table)
        if tombstones is None or len(positions) == 0:
            return positions
        return positions[~np.isin(positions, tombstones)]

    def visible_row_count(self, table: str) -> int:
        """Rows of ``table`` visible to queries (total minus tombstones)."""
        return self.table(table).row_count - len(self._deleted_rows.get(table, ()))

    # -- access-path dispatch (used by the executor) -------------------------------------

    def index_select(
        self,
        table: str,
        column: str,
        low: Optional[float],
        high: Optional[float],
        counters: CostCounters,
    ) -> np.ndarray:
        """Answer a selection through the configured access path."""
        mode = self.indexing_mode(table, column) or "scan"
        base_column = self.table(table).column(column)
        path = self._access_paths.get((table, column))
        if mode == "scan" or path is None:
            from repro.columnstore.select import scan_select

            positions = scan_select(base_column, RangePredicate(low, high), counters)
        elif mode == "full-index":
            positions = path.search(low, high, counters)
        elif mode in ("online", "soft"):
            positions = path.select(base_column, RangePredicate(low, high), counters)
        else:
            positions = path.search(low, high, counters)
            if getattr(path, "supports_updates", False):
                # updatable strategies receive every DML delete themselves,
                # so their answers already exclude tombstoned rows
                return positions
        return self.visible_positions(table, positions)

    def sideways_select(
        self,
        table: str,
        head_column: str,
        low: Optional[float],
        high: Optional[float],
        query: Query,
        counters: CostCounters,
    ) -> Dict[str, np.ndarray]:
        """Answer a (possibly multi-column) select/project via sideways cracking."""
        cracker = self.sideways_cracker(table, head_column)
        extra_predicates = {
            s.column: (s.low, s.high)
            for s in query.selections
            if s.column != head_column
        }
        needed = list(
            dict.fromkeys(
                list(query.projections)
                + [a.column for a in query.aggregates]
                + list(extra_predicates)
            )
        )
        needed = [name for name in needed if name != head_column] or needed
        if extra_predicates:
            result = cracker.select_project_where(
                low, high, extra_predicates, needed, counters
            )
        else:
            result = cracker.select_project(low, high, needed or [head_column], counters)
        tombstones = self._tombstones(table)
        if tombstones is not None:
            mask = ~np.isin(result["__rowids__"], tombstones)
            result = {name: array[mask] for name, array in result.items()}
        return result

    # -- query execution -------------------------------------------------------------------

    def plan(self, query: Query) -> Plan:
        """Plan a query without executing it (EXPLAIN)."""
        return self.planner.plan(query)

    def execute(self, query: Query) -> QueryResult:
        """Plan and execute a query, recording per-query statistics.

        Thin wrapper delegating to the default session: the query holds
        its table's gate shared and the exclusive locks of every mutating
        access path it dispatches through, so this front door is safe to
        call concurrently with batches, pipelined sessions and DML.  See
        :meth:`Session.execute`.
        """
        return self._default_session().execute(query)

    def _execute_single(
        self, query: Query, plan: Optional[Plan] = None
    ) -> QueryResult:
        """Plan (unless pre-planned) and execute one query without touching
        shared bookkeeping; stamps the executing thread on the result.

        Both session execution paths route through here while holding the
        plan's path locks, which makes this the cost-conformance hook site:
        the witness (when armed, see :mod:`repro.cost.witness`) fingerprints
        every access path the plan dispatches through before and after the
        executor runs and checks the structural delta against the query's
        counters."""
        counters = CostCounters()
        timer = Timer()
        if plan is None:
            plan = self.planner.plan(query)
        witness = cost_witness()
        snapshots = None
        if witness is not None:
            snapshots = witness.before(
                (step.table, step.column, self.access_path(step.table, step.column))
                for step in plan.access_path_steps()
            )
        with timer:
            result = self.executor.execute(plan, counters)
        if witness is not None:
            witness.after(
                query.description or query.table, snapshots, result.counters
            )
        result.elapsed_seconds = timer.elapsed
        result.worker = threading.current_thread().name
        return result

    def execute_many(
        self,
        queries: Sequence[Query],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Execute a batch of queries, each with its own :class:`CostCounters`.

        Thin wrapper delegating to the default session.  Results come back
        in submission order; with ``parallel=True`` the batch fans out over
        a thread pool under per-access-path concurrency control — queries
        through read-only paths (scans, full indexes, converged adaptive
        structures) run any number at a time, queries through mutating
        paths (cracking et al.) serialize per path in submission order, so
        answers and cost counters stay bit-identical to sequential
        execution.  The batch holds the gates of every referenced table
        shared for its duration, so DML issued meanwhile queues behind it
        instead of racing the in-flight cracks.  The task decomposition of
        the last call is exposed as :attr:`last_batch_report`.  See
        :meth:`Session.execute_many`.
        """
        return self._default_session().execute_many(
            queries, parallel=parallel, max_workers=max_workers
        )

    def run_workload(
        self, queries: Iterable[Query], strategy_label: str = ""
    ) -> WorkloadStatistics:
        """Execute a sequence of queries, returning per-query statistics.

        Thin wrapper delegating to the default session (see
        :meth:`Session.run_workload`).
        """
        return self._default_session().run_workload(queries, strategy_label)

    # -- linearization journal ------------------------------------------------------------

    def _journal_record(
        self, kind: str, table: str, payload, result, session: str = ""
    ) -> int:
        """Stamp one operation with the next linearization sequence number.

        Called by sessions while the operation still holds its gate / path
        locks, so sequence order restricted to any single access path (and
        to any single table's DML-vs-query order) matches the order the
        operations actually touched that path.  Records are only kept when
        :attr:`record_journal` is set; the sequence always advances.  The
        ``queries_executed`` counter piggybacks on the same critical
        section — every query flows through here exactly once.
        """
        with self._engine_stats_lock:
            sequence = self._op_sequence
            self._op_sequence += 1
            if kind == "query":
                self.queries_executed += 1
            if self.record_journal:
                self._journal.append(
                    OperationRecord(
                        sequence=sequence,
                        kind=kind,
                        table=table,
                        payload=payload,
                        result=result,
                        session=session,
                    )
                )
                retention = self.journal_retention
                if retention is not None and len(self._journal) > retention:
                    del self._journal[: len(self._journal) - retention]
        return sequence

    def operation_journal(self) -> List[OperationRecord]:
        """Snapshot of the recorded operation journal, in sequence order."""
        with self._engine_stats_lock:
            return list(self._journal)

    def clear_journal(self) -> None:
        """Drop all recorded journal entries (the sequence keeps advancing)."""
        with self._engine_stats_lock:
            self._journal.clear()

    def set_journal_retention(self, max_records: Optional[int]) -> None:
        """Bound the in-memory journal to its newest ``max_records`` entries.

        ``None`` (the default) keeps the journal unbounded — the property
        suites rely on the complete history, so nothing changes unless a
        bound is requested.  With durability enabled the journal is
        additionally trimmed through each snapshot's high-water mark
        (entries a snapshot covers are replayable from disk, not memory).
        """
        if max_records is not None and max_records < 0:
            raise ValueError(
                f"max_records must be >= 0 or None, got {max_records}"
            )
        with self._engine_stats_lock:
            self.journal_retention = max_records
            if max_records is not None and len(self._journal) > max_records:
                del self._journal[: len(self._journal) - max_records]

    def _trim_journal(self, high_water: int) -> None:
        """Drop in-memory journal entries a snapshot now covers."""
        with self._engine_stats_lock:
            self._journal = [
                record for record in self._journal
                if record.sequence > high_water
            ]

    # -- introspection --------------------------------------------------------------------

    def table_gate(self, table: str) -> TableGate:
        """The readers-writer gate fencing DML on ``table`` (introspection:
        ``fenced_writes`` counts DML operations that had to wait)."""
        return self._table_gates.gate(table)

    def rebalance_stats(self) -> List[Dict[str, object]]:
        """One record per partitioned access path: partition load and
        adaptive-repartitioning counters (splits, merges, row skew)."""
        report: List[Dict[str, object]] = []
        for (table, column), mode in sorted(self._modes.items()):
            path = self._access_paths.get((table, column))
            cracked = getattr(path, "cracked", None)
            if cracked is None or not hasattr(cracked, "partition_splits"):
                continue
            loads = cracked.partition_loads()
            sizes = [load["rows"] for load in loads]
            mean_rows = (sum(sizes) / len(sizes)) if sizes else 0.0
            report.append(
                {
                    "table": table,
                    "column": column,
                    "mode": mode,
                    "repartition": cracked.repartition,
                    "partitions": cracked.partition_count,
                    "splits": cracked.partition_splits,
                    "merges": cracked.partition_merges,
                    "max_rows": max(sizes) if sizes else 0,
                    "mean_rows": mean_rows,
                    "skew": (max(sizes) / mean_rows) if mean_rows else 0.0,
                }
            )
        return report

    def physical_design_report(self) -> List[Dict[str, str]]:
        """One record per configured access path (for documentation / examples)."""
        report = []
        for (table, column), mode in sorted(self._modes.items()):
            path = self._access_paths.get((table, column))
            description = ""
            if isinstance(path, SearchStrategy):
                description = path.structure_description
            elif isinstance(path, FullIndex):
                description = f"full index ({path.nbytes} bytes)"
            elif isinstance(path, OnlineIndexTuner):
                description = (
                    f"online tuner ({len(path.indexes)} indexes built)"
                )
            elif isinstance(path, SoftIndexManager):
                description = f"soft indexes ({len(path.indexes)} built)"
            report.append(
                {
                    "table": table,
                    "column": column,
                    "mode": mode,
                    "structure": description,
                }
            )
        for table, crackers in sorted(self._sideways.items()):
            for head, cracker in sorted(crackers.items()):
                report.append(
                    {
                        "table": table,
                        "column": head,
                        "mode": "sideways-cracking",
                        "structure": f"{len(cracker.maps)} cracker maps",
                    }
                )
        return report
