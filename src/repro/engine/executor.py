"""Plan executor.

Interprets the linear plans produced by the
:class:`~repro.engine.planner.Planner` against the physical structures owned
by the :class:`~repro.engine.database.Database`, recording all work on a
single :class:`~repro.cost.counters.CostCounters` instance per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.columnstore.operators import aggregate as aggregate_values
from repro.columnstore.reconstruct import late_reconstruct
from repro.columnstore.select import RangePredicate, refine_select, scan_select
from repro.cost.counters import CostCounters
from repro.engine.planner import Plan


@dataclass
class QueryResult:
    """Result of executing one query."""

    positions: np.ndarray
    columns: Dict[str, np.ndarray] = field(default_factory=dict)
    aggregates: Dict[str, float] = field(default_factory=dict)
    counters: CostCounters = field(default_factory=CostCounters)
    elapsed_seconds: float = 0.0
    plan_description: str = ""
    #: name of the thread that executed the query (batch fan-out visibility)
    worker: str = ""
    #: engine-wide linearization stamp assigned by the session front door
    #: (-1 when the query bypassed it); orders this query against every
    #: other session operation per access path
    sequence: int = -1

    @property
    def row_count(self) -> int:
        return len(self.positions)


class Executor:
    """Executes plans step by step against a database's physical design."""

    def __init__(self, database) -> None:
        self.database = database

    def execute(self, plan: Plan, counters: Optional[CostCounters] = None) -> QueryResult:
        """Run every plan step, threading the candidate position list through."""
        counters = counters if counters is not None else CostCounters()
        table = self.database.table(plan.query.table)
        positions: Optional[np.ndarray] = None
        columns: Dict[str, np.ndarray] = {}
        aggregates: Dict[str, float] = {}
        sideways_result: Optional[Dict[str, np.ndarray]] = None

        def all_positions() -> np.ndarray:
            if counters is not None:
                counters.record_scan(table.row_count)
            return self.database.visible_positions(
                plan.query.table, np.arange(table.row_count, dtype=np.int64)
            )

        for step in plan.steps:
            if step.operator == "scan_select":
                positions = self.database.visible_positions(
                    plan.query.table,
                    scan_select(
                        table.column(step.column),
                        RangePredicate(step.low, step.high),
                        counters,
                    ),
                )
            elif step.operator == "index_select":
                positions = self.database.index_select(
                    plan.query.table, step.column, step.low, step.high, counters
                )
            elif step.operator == "sideways_select":
                sideways_result = self.database.sideways_select(
                    plan.query.table,
                    step.column,
                    step.low,
                    step.high,
                    plan.query,
                    counters,
                )
                positions = sideways_result.pop("__rowids__")
                columns.update(sideways_result)
            elif step.operator == "refine":
                if positions is None:
                    raise RuntimeError("refine step executed before any selection")
                positions = refine_select(
                    table.column(step.column),
                    positions,
                    RangePredicate(step.low, step.high),
                    counters,
                )
            elif step.operator == "reconstruct":
                if positions is None:
                    # projection without any selection: all rows qualify
                    positions = all_positions()
                needed = [name for name in step.columns if name not in columns]
                fetched = late_reconstruct(table, positions, needed, counters)
                columns.update(fetched)
            elif step.operator == "aggregate":
                if positions is None:
                    # aggregation without any selection: all rows qualify
                    positions = all_positions()
                if step.column in columns:
                    values = columns[step.column]
                else:
                    values = late_reconstruct(
                        table, positions, [step.column], counters
                    )[step.column]
                key = f"{step.function}({step.column})"
                if step.function != "count" and len(values) == 0:
                    aggregates[key] = float("nan")
                else:
                    aggregates[key] = aggregate_values(values, step.function, counters)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown plan operator {step.operator!r}")

        if positions is None:
            positions = all_positions()

        # keep only the requested projections in the result columns
        requested = set(plan.query.projections)
        columns = {name: values for name, values in columns.items() if name in requested}
        return QueryResult(
            positions=positions,
            columns=columns,
            aggregates=aggregates,
            counters=counters,
            plan_description=plan.explain(),
        )
