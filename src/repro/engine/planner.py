"""Query planner: choose access paths based on the current physical design.

The planner's job mirrors what the tutorial calls the "optimizer rules"
needed by an auto-tuning kernel: for each selection it picks the best
available access path for that column *right now* —

* an adaptive index (cracking, adaptive merging, a hybrid, ...),
* a sideways-cracking map set (multi-column selections over one table),
* a full offline index,
* an online-tuning or soft-index managed path (which may decide to build), or
* a plain scan —

and orders the remaining work (predicate refinement, tuple reconstruction,
aggregation) behind it.  The produced plan is a linear list of steps; the
executor interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.query import Query, RangeSelection


@dataclass(frozen=True)
class PlanStep:
    """One step of a physical plan."""

    operator: str  # index_select | sideways_select | scan_select | refine |
    #               reconstruct | aggregate
    table: str
    column: str = ""
    low: Optional[float] = None
    high: Optional[float] = None
    columns: tuple = ()
    function: str = ""
    access_path: str = ""  # strategy / mode handling an index_select


@dataclass
class Plan:
    """An ordered list of plan steps plus bookkeeping for explain output."""

    query: Query
    steps: List[PlanStep] = field(default_factory=list)

    def access_path_steps(self) -> List[PlanStep]:
        """Steps that dispatch through a (table, column) access path.

        These are the steps whose execution can touch a shared physical
        structure — the batch scheduler
        (:mod:`repro.engine.concurrency`) classifies a query's concurrency
        claims from exactly this list.  Refinement, reconstruction and
        aggregation steps read immutable base columns only and are absent.
        """
        return [
            step for step in self.steps
            if step.operator in ("scan_select", "index_select", "sideways_select")
        ]

    def explain(self) -> str:
        """Human-readable plan description (EXPLAIN-style)."""
        lines = [f"plan for: {self.query.description or self.query.table}"]
        for index, step in enumerate(self.steps):
            detail = ""
            if step.operator in ("index_select", "scan_select", "refine"):
                detail = f" {step.column} in [{step.low}, {step.high})"
                if step.access_path:
                    detail += f" via {step.access_path}"
            elif step.operator == "sideways_select":
                detail = f" head={step.column}, attributes={list(step.columns)}"
            elif step.operator == "reconstruct":
                detail = f" columns={list(step.columns)}"
            elif step.operator == "aggregate":
                detail = f" {step.function}({step.column})"
            lines.append(f"  {index}: {step.operator}{detail}")
        return "\n".join(lines)


class Planner:
    """Plans queries against the physical design registered in a Database."""

    def __init__(self, database) -> None:
        self.database = database

    # -- selection ordering -----------------------------------------------------------

    def _selection_priority(self, table: str, selection: RangeSelection) -> int:
        """Lower is better: indexed columns first, then scans."""
        mode = self.database.indexing_mode(table, selection.column)
        if mode in ("scan", None):
            return 2
        if mode in ("online", "soft"):
            return 1
        return 0

    def plan(self, query: Query) -> Plan:
        """Produce a plan for ``query`` against the current physical design."""
        table = query.table
        plan = Plan(query=query)
        selections = list(query.selections)

        # Sideways cracking handles the whole select-project in one step when
        # a map set exists for the first selection column of this table.
        if selections:
            head_candidates = [
                s for s in selections
                if self.database.has_sideways(table, s.column)
            ]
            if head_candidates:
                head = head_candidates[0]
                other_columns = tuple(
                    [s.column for s in selections if s is not head]
                    + list(query.projections)
                    + [a.column for a in query.aggregates]
                )
                plan.steps.append(
                    PlanStep(
                        operator="sideways_select",
                        table=table,
                        column=head.column,
                        low=head.low,
                        high=head.high,
                        columns=other_columns,
                        access_path="sideways-cracking",
                    )
                )
                for aggregate in query.aggregates:
                    plan.steps.append(
                        PlanStep(
                            operator="aggregate",
                            table=table,
                            column=aggregate.column,
                            function=aggregate.function,
                        )
                    )
                return plan

        ordered = sorted(
            selections, key=lambda s: self._selection_priority(table, s)
        )
        for index, selection in enumerate(ordered):
            mode = self.database.indexing_mode(table, selection.column) or "scan"
            if index == 0:
                operator = "scan_select" if mode == "scan" else "index_select"
                plan.steps.append(
                    PlanStep(
                        operator=operator,
                        table=table,
                        column=selection.column,
                        low=selection.low,
                        high=selection.high,
                        access_path=mode,
                    )
                )
            else:
                plan.steps.append(
                    PlanStep(
                        operator="refine",
                        table=table,
                        column=selection.column,
                        low=selection.low,
                        high=selection.high,
                    )
                )

        if query.projections:
            plan.steps.append(
                PlanStep(
                    operator="reconstruct",
                    table=table,
                    columns=tuple(query.projections),
                )
            )
        for aggregate in query.aggregates:
            plan.steps.append(
                PlanStep(
                    operator="aggregate",
                    table=table,
                    column=aggregate.column,
                    function=aggregate.function,
                )
            )
        return plan
