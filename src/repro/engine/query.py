"""Declarative query descriptions.

A :class:`Query` is a conjunctive range-select / project / aggregate over
one table — the query shape used throughout the adaptive-indexing
literature (and by the benchmark of Graefe et al.).  Queries carry no
execution logic; the planner decides how to run them given the table's
current indexing mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class RangeSelection:
    """A half-open range predicate on one column: ``low <= column < high``."""

    column: str
    low: Optional[float] = None
    high: Optional[float] = None

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.high < self.low:
            raise ValueError(
                f"empty selection on {self.column!r}: high ({self.high}) < low ({self.low})"
            )

    @property
    def bounds(self) -> Tuple[Optional[float], Optional[float]]:
        return (self.low, self.high)


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over one projected column."""

    column: str
    function: str = "sum"  # count, sum, min, max, mean


@dataclass
class Query:
    """A conjunctive select-project-aggregate query over one table."""

    table: str
    selections: List[RangeSelection] = field(default_factory=list)
    projections: List[str] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.table:
            raise ValueError("a query must name a table")
        seen = set()
        for selection in self.selections:
            if selection.column in seen:
                raise ValueError(
                    f"duplicate selection on column {selection.column!r}; "
                    "combine the bounds into one RangeSelection"
                )
            seen.add(selection.column)

    @property
    def selection_columns(self) -> List[str]:
        return [selection.column for selection in self.selections]

    @property
    def referenced_columns(self) -> List[str]:
        """All columns the query touches (selection + projection + aggregates)."""
        names: List[str] = []
        for selection in self.selections:
            names.append(selection.column)
        names.extend(self.projections)
        names.extend(a.column for a in self.aggregates)
        return list(dict.fromkeys(names))

    @classmethod
    def range_query(
        cls,
        table: str,
        column: str,
        low: Optional[float],
        high: Optional[float],
        projections: Optional[Sequence[str]] = None,
    ) -> "Query":
        """Convenience constructor for the canonical single-column range query."""
        return cls(
            table=table,
            selections=[RangeSelection(column, low, high)],
            projections=list(projections or []),
            description=f"{table}.{column} in [{low}, {high})",
        )
