"""Declarative query descriptions.

A :class:`Query` is a conjunctive range-select / project / aggregate over
one table — the query shape used throughout the adaptive-indexing
literature (and by the benchmark of Graefe et al.).  Queries carry no
execution logic; the planner decides how to run them given the table's
current indexing mode.

:class:`QueryBuilder` is the fluent front half of the session API::

    db.query("T").where("a", lo, hi).select("b").agg("sum", "b").run()

It desugars to a plain :class:`Query`; ``run()``/``submit()`` hand the
built query to whatever session or database the builder was obtained
from.  A detached builder (constructed directly) can still ``build()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


#: aggregate functions the executor implements (see
#: :func:`repro.columnstore.operators.aggregate`)
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "mean")


@dataclass(frozen=True)
class RangeSelection:
    """A half-open range predicate on one column: ``low <= column < high``."""

    column: str
    low: Optional[float] = None
    high: Optional[float] = None

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.high < self.low:
            raise ValueError(
                f"empty selection on {self.column!r}: high ({self.high}) < low ({self.low})"
            )

    @property
    def bounds(self) -> Tuple[Optional[float], Optional[float]]:
        return (self.low, self.high)


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over one projected column."""

    column: str
    function: str = "sum"

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"unknown aggregate function {self.function!r} on column "
                f"{self.column!r}; supported: {', '.join(AGGREGATE_FUNCTIONS)}"
            )


@dataclass
class Query:
    """A conjunctive select-project-aggregate query over one table."""

    table: str
    selections: List[RangeSelection] = field(default_factory=list)
    projections: List[str] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.table:
            raise ValueError("a query must name a table")
        seen = set()
        for selection in self.selections:
            if selection.column in seen:
                raise ValueError(
                    f"duplicate selection on column {selection.column!r}; "
                    "combine the bounds into one RangeSelection"
                )
            seen.add(selection.column)

    @property
    def selection_columns(self) -> List[str]:
        return [selection.column for selection in self.selections]

    @property
    def referenced_columns(self) -> List[str]:
        """All columns the query touches (selection + projection + aggregates)."""
        names: List[str] = []
        for selection in self.selections:
            names.append(selection.column)
        names.extend(self.projections)
        names.extend(a.column for a in self.aggregates)
        return list(dict.fromkeys(names))

    @classmethod
    def range_query(
        cls,
        table: str,
        column: str,
        low: Optional[float],
        high: Optional[float],
        projections: Optional[Sequence[str]] = None,
    ) -> "Query":
        """Convenience constructor for the canonical single-column range query."""
        return cls(
            table=table,
            selections=[RangeSelection(column, low, high)],
            projections=list(projections or []),
            description=f"{table}.{column} in [{low}, {high})",
        )


class QueryBuilder:
    """Fluent construction of a :class:`Query`, bound to an execution hook.

    Obtained from ``Database.query(table)`` or ``Session.query(table)``;
    every clause method returns the builder, ``build()`` produces the
    immutable :class:`Query`, and ``run()`` / ``submit()`` execute it
    through the owning session's lock-aware front door.  Validation is
    eager: a duplicate ``where`` on one column or an unknown aggregate
    function raises at the clause, not deep inside the executor.
    """

    def __init__(
        self,
        table: str,
        runner: Optional[Callable[["Query"], object]] = None,
        submitter: Optional[Callable[["Query"], object]] = None,
    ) -> None:
        if not table:
            raise ValueError("a query must name a table")
        self._table = table
        self._selections: List[RangeSelection] = []
        self._projections: List[str] = []
        self._aggregates: List[Aggregate] = []
        self._description = ""
        self._runner = runner
        self._submitter = submitter

    def where(
        self,
        column: str,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> "QueryBuilder":
        """Add the conjunct ``low <= column < high`` (None = unbounded)."""
        if any(s.column == column for s in self._selections):
            raise ValueError(
                f"duplicate selection on column {column!r}; "
                "combine the bounds into one where()"
            )
        self._selections.append(RangeSelection(column, low, high))
        return self

    def select(self, *columns: str) -> "QueryBuilder":
        """Project ``columns`` into the result (duplicates collapse)."""
        for column in columns:
            if column not in self._projections:
                self._projections.append(column)
        return self

    def agg(self, function: str, column: str) -> "QueryBuilder":
        """Add ``function(column)`` to the result aggregates."""
        self._aggregates.append(Aggregate(column, function))
        return self

    def describe(self, description: str) -> "QueryBuilder":
        """Attach a human-readable description to the built query."""
        self._description = description
        return self

    def build(self) -> Query:
        """Desugar to the immutable :class:`Query` dataclass."""
        return Query(
            table=self._table,
            selections=list(self._selections),
            projections=list(self._projections),
            aggregates=list(self._aggregates),
            description=self._description or self._default_description(),
        )

    def _default_description(self) -> str:
        clauses = [
            f"{s.column} in [{s.low}, {s.high})" for s in self._selections
        ]
        return f"{self._table}: {' and '.join(clauses)}" if clauses else self._table

    def run(self):
        """Build and execute through the bound session (lock-aware)."""
        if self._runner is None:
            raise RuntimeError(
                "this builder is not bound to a session or database; "
                "use build() and execute the query yourself"
            )
        return self._runner(self.build())

    def submit(self):
        """Build and pipeline through the bound session; returns a future."""
        if self._submitter is None:
            raise RuntimeError(
                "this builder is not bound to a session; "
                "use build() and submit the query yourself"
            )
        return self._submitter(self.build())
