"""The session front door: one lock-aware API for queries, batches and DML.

Adaptive indexing's promise (EDBT 2012 tutorial, Section 3) is that index
refinement rides along with *live* query traffic — there is no offline
window in which the physical design is rebuilt.  That only works if the
concurrent path is the default path: a :class:`Session` is the handle
through which every operation — a single query, a pipelined future, a
whole batch, an insert/delete/update — runs under the same two-level
concurrency protocol (:mod:`repro.engine.concurrency`):

* the **table gate** (a fair readers-writer gate per table): queries hold
  it shared, DML holds it exclusive, so updates issued mid-batch are
  fenced behind in-flight cracks instead of racing the access-path
  rebuild;
* the **per-access-path locks**: selections through paths that physically
  reorganise on read serialize per path, while read-only paths fan out
  freely.

Because every mutation of shared physical state happens inside one of
those critical sections, any concurrent interleaving of sessions is
equivalent — bit-identical results *and* cost counters — to the
sequential execution of the same operations in their per-access-path
order.  The database records that order as an operation journal
(:class:`OperationRecord`, enabled with ``database.record_journal =
True``), which is exactly the sequential oracle the property suite
replays.

Sessions are cheap: they own no data, only a lazily created thread pool
for :meth:`Session.submit` pipelining and a few statistics counters.  Use
them context-managed::

    with db.session() as session:
        future = session.query("T").where("a", lo, hi).agg("sum", "b").submit()
        session.insert_row("T", {"a": 7, "b": 1.5})   # fenced, not racing
        result = future.result()
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.analysis_tools.guards import guarded_by
from repro.cost.counters import CostCounters
from repro.cost.stats import QueryStatistics, WorkloadStatistics
from repro.durability.record import WalRecord
from repro.engine.concurrency import BatchExecutionReport, schedule_batch, classify_plan
from repro.engine.executor import QueryResult
from repro.engine.query import Query, QueryBuilder


@dataclass(frozen=True)
class OperationRecord:
    """One linearized engine operation (query or DML).

    The sequence number is stamped while the operation still holds its
    gate / path locks, so replaying a journal in sequence order applies
    every access path's operations in exactly the order the concurrent
    run did — the sequential oracle for the session property suite.
    """

    sequence: int
    kind: str  # "query" | "insert" | "delete" | "update"
    table: str
    #: the operation input: a Query, an insert values mapping, a deleted
    #: rowid, or an (old rowid, changed values) pair for updates
    payload: object
    #: the operation output: a QueryResult, the assigned rowid, or None
    result: object
    session: str = ""


@dataclass
class SessionStats:
    """Point-in-time counters of one session (see :meth:`Session.stats`)."""

    name: str
    queries_executed: int = 0
    batches_executed: int = 0
    operations_submitted: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    rows_updated: int = 0
    #: introspection record of this session's most recent execute_many
    last_batch_report: Optional[BatchExecutionReport] = None


_SESSION_IDS = itertools.count(1)


def default_worker_count(tasks: Optional[int] = None) -> int:
    """Default worker count for session pools and parallel batches.

    One machine-derived default shared by every fan-out entry point: at
    least 2 workers (pipelining needs overlap even on a single core),
    scaling with the cores actually present.  When ``tasks`` is given the
    count is additionally capped by it — a pool never holds more workers
    than it has tasks to run.
    """
    base = max(2, os.cpu_count() or 2)
    if tasks is None:
        return base
    return max(1, min(int(tasks), base))


def validate_max_workers(max_workers: Optional[int]) -> Optional[int]:
    """Validate an optional explicit worker count (``None`` = use default)."""
    if max_workers is not None and max_workers < 1:
        raise ValueError(
            f"max_workers must be a positive worker count, got {max_workers}"
        )
    return max_workers


@guarded_by(
    _pool="_lock",
    _futures="_lock",
    _closed="_lock",
    _stats="_lock",
)
class Session:
    """A lock-aware handle on a :class:`~repro.engine.database.Database`.

    Thread-safe: one session may be shared across threads (its pipelined
    futures already execute on pool threads), and any number of sessions
    on one database interleave safely — equivalence to a sequential
    per-access-path ordering is the invariant the property suite pins.
    """

    def __init__(
        self,
        database,
        name: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        validate_max_workers(max_workers)
        self._database = database
        self.name = name or f"session-{next(_SESSION_IDS)}"
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._futures: List[Future] = []
        self._closed = False
        self._lock = threading.Lock()
        self._stats = SessionStats(name=self.name)

    # -- lifecycle -----------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def close(self) -> None:
        """Drain pipelined work and release the pool (idempotent)."""
        self.drain()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self) -> None:
        """Block until every future submitted so far has completed.

        Failures stay on their futures (re-raised by ``future.result()``);
        draining only waits.
        """
        with self._lock:
            pending, self._futures = self._futures, []
        for future in pending:
            try:
                future.result()
            except Exception:
                pass  # the caller holds the future; don't swallow its result

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"session {self.name!r} is closed")

    def _submit_task(self, fn, *args) -> Future:
        """Queue work on the session pool, atomically with close().

        The open-check, pool creation and hand-off happen under the
        session lock, so a concurrent :meth:`close` either sees the task
        (and drains it) or the submitter gets the session's own "closed"
        error — never the pool's shutdown exception.
        """
        with self._lock:
            self._check_open()
            if self._pool is None:
                workers = self._max_workers or default_worker_count()
                self._pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"repro-{self.name}",
                )
            future = self._pool.submit(fn, *args)
            self._stats.operations_submitted += 1
            self._futures = [f for f in self._futures if not f.done()]
            self._futures.append(future)
        return future

    # -- queries -------------------------------------------------------------------

    def query(self, table: str) -> QueryBuilder:
        """Fluent builder bound to this session's front door."""
        return QueryBuilder(table, runner=self.execute, submitter=self.submit)

    def execute(self, query: Query) -> QueryResult:
        """Plan and execute one query under the full locking protocol.

        Holds the table gate shared (fencing out DML), classifies the
        plan's access-path claims, and serializes on the exclusive ones —
        so this is safe to call concurrently with batches, pipelined
        futures and DML from any session or thread.
        """
        self._check_open()
        database = self._database
        with database._table_gates.read([query.table]):
            result = self._execute_gated(query)
        with self._lock:
            self._stats.queries_executed += 1
        return result

    def _execute_gated(self, query: Query) -> QueryResult:
        """Classify and execute one query; the table gate is already held."""
        database = self._database
        plan = database.planner.plan(query)
        claims = classify_plan(database, plan)
        with database._path_locks.locked(claims):
            result = database._execute_single(query, plan)
            result.sequence = database._journal_record(
                "query", query.table, query, result, session=self.name
            )
        return result

    def submit(self, query: Query) -> Future:
        """Pipeline one query; returns a future resolving to its result.

        Submitted queries run on the session's pool through the same
        locked :meth:`execute` path; their completion order is arbitrary,
        but every physical reorganisation still serializes per access
        path.
        """
        return self._submit_task(self.execute, query)

    def execute_many(
        self,
        queries: Sequence[Query],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Execute a batch under per-access-path concurrency control.

        The batch holds the gates of every referenced table shared for
        its whole duration: DML issued meanwhile queues on the gates
        (fenced) and the batch's up-front classification stays valid
        until the last query finishes.  Queries through read-only paths
        fan out over a thread pool (``parallel=True``); queries through
        mutating paths serialize per access path in submission order, so
        results and cost counters are bit-identical to sequential
        execution.  See :class:`BatchExecutionReport` for the observed
        decomposition, exposed on both the session and the database.
        """
        self._check_open()
        database = self._database
        validate_max_workers(max_workers)
        queries = list(queries)
        if not queries:
            return self._finish_batch(BatchExecutionReport(parallel=parallel), [])

        with ExitStack() as stack:
            stack.enter_context(
                database._table_gates.read([q.table for q in queries])
            )
            plans = [database.planner.plan(query) for query in queries]
            schedule = schedule_batch(database, plans)
            results: List[Optional[QueryResult]] = [None] * len(queries)

            def run_task(positions: List[int]) -> None:
                for position in positions:
                    claims = schedule.claims[position]
                    with database._path_locks.locked(claims):
                        result = database._execute_single(
                            queries[position], plans[position]
                        )
                        result.sequence = database._journal_record(
                            "query",
                            queries[position].table,
                            queries[position],
                            result,
                            session=self.name,
                        )
                    results[position] = result

            if not parallel or len(schedule.tasks) <= 1:
                for task in schedule.tasks:
                    run_task(task)
            else:
                workers = max_workers or default_worker_count(len(schedule.tasks))
                with ThreadPoolExecutor(
                    max_workers=max(1, workers), thread_name_prefix="repro-batch"
                ) as pool:
                    futures = [pool.submit(run_task, task) for task in schedule.tasks]
                    for future in futures:
                        future.result()

        worker_names = tuple(sorted({r.worker for r in results if r is not None}))
        report = BatchExecutionReport(
            query_count=len(queries),
            task_count=len(schedule.tasks),
            exclusive_groups=schedule.exclusive_groups,
            read_only_queries=schedule.read_only_queries,
            parallel=parallel,
            workers_used=len(worker_names),
            worker_names=worker_names,
        )
        return self._finish_batch(report, results)

    def _finish_batch(
        self, report: BatchExecutionReport, results: List[QueryResult]
    ) -> List[QueryResult]:
        database = self._database
        with database._engine_stats_lock:
            database.last_batch_report = report
        with self._lock:
            self._stats.batches_executed += 1
            self._stats.queries_executed += len(results)
            self._stats.last_batch_report = report
        return results

    def run_workload(
        self, queries: Iterable[Query], strategy_label: str = ""
    ) -> WorkloadStatistics:
        """Execute a query sequence, returning per-query statistics."""
        statistics = WorkloadStatistics(strategy=strategy_label)
        for index, query in enumerate(queries):
            result = self.execute(query)
            statistics.append(
                QueryStatistics(
                    query_index=index,
                    elapsed_seconds=result.elapsed_seconds,
                    counters=result.counters,
                    result_count=result.row_count,
                    strategy=strategy_label,
                    description=query.description,
                )
            )
        return statistics

    # -- DML -----------------------------------------------------------------------

    def insert_row(
        self,
        table: str,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Insert one row, fenced against in-flight queries; returns its rowid.

        Holds the table gate exclusive: the append, every access-path
        absorb/rebuild and the sideways-map invalidation run with no
        query in flight on the table, and each per-path mutation
        additionally holds that path's lock.
        """
        self._check_open()
        database = self._database
        durability = database._durability
        with database._table_gates.write(table):
            rowid = database._insert_row_locked(table, values, counters)
            if durability is None:
                database._journal_record(
                    "insert", table, dict(values), rowid, session=self.name
                )
            else:
                # write-ahead contract: the journal append (and its group
                # commit) completes before the gate releases, i.e. before
                # any other operation can observe the insert — the file
                # I/O inside this critical section is RL005-baselined.
                # The order mutex spans sequence assignment *and* the
                # append: sessions writing different tables hold different
                # gates, so without it their records could reach the WAL
                # out of linearization order (which WalScan rejects as
                # corruption).
                with database._wal_order_lock:
                    sequence = database._journal_record(
                        "insert", table, dict(values), rowid,
                        session=self.name,
                    )
                    durability.append_record(
                        WalRecord(
                            sequence=sequence, kind="insert", table=table,
                            rowid=rowid, values=dict(values),
                        )
                    )
        with self._lock:
            self._stats.rows_inserted += 1
        if durability is not None and durability.snapshot_due():
            database.snapshot()
        return rowid

    def delete_row(
        self,
        table: str,
        rowid: int,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Delete the row identified by ``rowid`` (idempotent), fenced."""
        self._check_open()
        database = self._database
        durability = database._durability
        with database._table_gates.write(table):
            database._delete_row_locked(table, rowid, counters)
            if durability is None:
                database._journal_record(
                    "delete", table, int(rowid), None, session=self.name
                )
            else:
                # journaled before the gate releases, sequenced and
                # appended under the order mutex (see insert_row)
                with database._wal_order_lock:
                    sequence = database._journal_record(
                        "delete", table, int(rowid), None, session=self.name
                    )
                    durability.append_record(
                        WalRecord(
                            sequence=sequence, kind="delete", table=table,
                            rowid=int(rowid),
                        )
                    )
        with self._lock:
            self._stats.rows_deleted += 1
        if durability is not None and durability.snapshot_due():
            database.snapshot()

    def update_row(
        self,
        table: str,
        rowid: int,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Update = delete + insert under one fence; returns the new rowid."""
        self._check_open()
        database = self._database
        durability = database._durability
        with database._table_gates.write(table):
            new_rowid = database._update_row_locked(table, rowid, values, counters)
            if durability is None:
                database._journal_record(
                    "update", table, (int(rowid), dict(values)), new_rowid,
                    session=self.name,
                )
            else:
                # journaled before the gate releases, sequenced and
                # appended under the order mutex (see insert_row)
                with database._wal_order_lock:
                    sequence = database._journal_record(
                        "update", table, (int(rowid), dict(values)),
                        new_rowid, session=self.name,
                    )
                    durability.append_record(
                        WalRecord(
                            sequence=sequence, kind="update", table=table,
                            rowid=new_rowid, old_rowid=int(rowid),
                            values=dict(values),
                        )
                    )
        with self._lock:
            self._stats.rows_updated += 1
        if durability is not None and durability.snapshot_due():
            database.snapshot()
        return new_rowid

    def submit_insert(
        self,
        table: str,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> Future:
        """Queue an insert on the session pipeline (fenced when it runs)."""
        return self._submit_task(self.insert_row, table, values, counters)

    def submit_delete(
        self,
        table: str,
        rowid: int,
        counters: Optional[CostCounters] = None,
    ) -> Future:
        """Queue a delete on the session pipeline (fenced when it runs)."""
        return self._submit_task(self.delete_row, table, rowid, counters)

    def submit_update(
        self,
        table: str,
        rowid: int,
        values: Mapping[str, Union[int, float]],
        counters: Optional[CostCounters] = None,
    ) -> Future:
        """Queue an update on the session pipeline (fenced when it runs)."""
        return self._submit_task(self.update_row, table, rowid, values, counters)

    # -- introspection -------------------------------------------------------------

    def stats(self) -> SessionStats:
        """A snapshot of this session's operation counters."""
        with self._lock:
            return SessionStats(
                name=self._stats.name,
                queries_executed=self._stats.queries_executed,
                batches_executed=self._stats.batches_executed,
                operations_submitted=self._stats.operations_submitted,
                rows_inserted=self._stats.rows_inserted,
                rows_deleted=self._stats.rows_deleted,
                rows_updated=self._stats.rows_updated,
                last_batch_report=self._stats.last_batch_report,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"Session({self.name!r}, {state}, db={self._database.name!r})"
