"""Non-adaptive indexing baselines: offline, online and soft indexes.

The EDBT 2012 tutorial positions adaptive indexing against three families of
prior work, all of which are implemented here so the experiments can compare
against them:

* **Full (offline) indexes** — :class:`~repro.indexes.full_index.FullIndex`
  and :class:`~repro.indexes.btree.BTree`: the a-priori, fully built sorted
  representation that adaptive methods converge to.
* **Offline what-if tuning** — :class:`~repro.indexes.offline_tuner.OfflineTuner`
  with the cost estimates of :mod:`repro.indexes.whatif`: analyse a sample
  workload, pick the best indexes under a budget, build them up front.
* **Online tuning** — :class:`~repro.indexes.online_tuner.OnlineIndexTuner`:
  monitor the live workload and trigger index creation/drop when the
  observed benefit crosses a threshold (COLT-style).
* **Soft indexes** — :class:`~repro.indexes.soft_index.SoftIndexManager`:
  generate index recommendations during query processing and piggy-back the
  (non-incremental) index build on a qualifying scan.
"""

from repro.indexes.btree import BTree
from repro.indexes.full_index import FullIndex
from repro.indexes.offline_tuner import OfflineTuner, TuningRecommendation
from repro.indexes.online_tuner import OnlineIndexTuner
from repro.indexes.soft_index import SoftIndexManager
from repro.indexes.whatif import WhatIfAnalyzer, HypotheticalIndex

__all__ = [
    "BTree",
    "FullIndex",
    "OfflineTuner",
    "TuningRecommendation",
    "OnlineIndexTuner",
    "SoftIndexManager",
    "WhatIfAnalyzer",
    "HypotheticalIndex",
]
