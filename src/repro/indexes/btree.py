"""A B-tree index.

The tutorial's closing discussion asks how adaptive indexing can be adopted
by traditional kernels built around B-trees; adaptive merging itself is
formulated over *partitioned B-trees*.  This module provides an in-memory
B-tree with bulk loading, point/range search, and incremental insertion, used
as a substrate by the adaptive-merging implementation and as a standalone
baseline index.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.columnstore.column import Column
from repro.cost.counters import CostCounters


class _Node:
    """Internal or leaf node of the B-tree."""

    __slots__ = ("keys", "children", "values", "is_leaf", "next_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.keys: List = []
        self.children: List["_Node"] = []
        self.values: List = []  # leaf-only: payloads aligned with keys
        self.is_leaf = is_leaf
        self.next_leaf: Optional["_Node"] = None


class BTree:
    """In-memory B+-tree mapping keys to payloads (row positions).

    Supports duplicate keys.  Leaves are linked so range scans are a leaf
    walk after a root-to-leaf descent.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError("B-tree order must be at least 4")
        self.order = order
        self.root = _Node(is_leaf=True)
        self.size = 0
        self.height = 1

    # -- construction ----------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        column: Union[Column, np.ndarray],
        order: int = 64,
        counters: Optional[CostCounters] = None,
    ) -> "BTree":
        """Build a B-tree over a column by sorting and packing leaves."""
        values = column.values if isinstance(column, Column) else np.asarray(column)
        n = len(values)
        positions = np.argsort(values, kind="stable")
        sorted_values = values[positions]
        tree = cls(order=order)
        tree._load_sorted(sorted_values.tolist(), positions.tolist())
        if counters is not None:
            counters.record_scan(n)
            counters.record_comparisons(int(n * max(1.0, np.log2(max(n, 2)))))
            counters.record_move(n)
            counters.record_allocation(16 * n)
            counters.record_pieces(1)
        return tree

    @classmethod
    def from_sorted(
        cls,
        sorted_keys: Iterable,
        payloads: Iterable,
        order: int = 64,
        counters: Optional[CostCounters] = None,
    ) -> "BTree":
        """Build a B-tree from already-sorted keys with aligned payloads."""
        keys = list(sorted_keys)
        values = list(payloads)
        if len(keys) != len(values):
            raise ValueError("keys and payloads must have equal length")
        tree = cls(order=order)
        tree._load_sorted(keys, values)
        if counters is not None:
            counters.record_scan(len(keys))
            counters.record_move(len(keys))
            counters.record_allocation(16 * len(keys))
        return tree

    def _load_sorted(self, keys: List, payloads: List) -> None:
        """Pack sorted key/payload pairs into leaves and build internal levels."""
        self.size = len(keys)
        leaf_capacity = self.order
        leaves: List[_Node] = []
        for start in range(0, max(len(keys), 1), leaf_capacity):
            leaf = _Node(is_leaf=True)
            leaf.keys = keys[start : start + leaf_capacity]
            leaf.values = payloads[start : start + leaf_capacity]
            leaves.append(leaf)
        if not leaves:
            leaves = [_Node(is_leaf=True)]
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right

        level = leaves
        height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), self.order):
                group = level[start : start + self.order]
                parent = _Node(is_leaf=False)
                parent.children = group
                parent.keys = [child.keys[0] if child.keys else None for child in group[1:]]
                parents.append(parent)
            level = parents
            height += 1
        self.root = level[0]
        self.height = height

    # -- search -----------------------------------------------------------------

    def _descend(self, key, counters: Optional[CostCounters] = None) -> _Node:
        """Walk from the root to the leftmost leaf that may contain ``key``.

        Uses ``bisect_left`` so that, in the presence of duplicate keys that
        span node boundaries, the descent lands on the first leaf holding the
        key; the linked-leaf walk then covers the rest.
        """
        node = self.root
        while not node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if counters is not None:
                counters.record_comparisons(max(1, int(np.ceil(np.log2(len(node.keys) + 1)))))
                counters.record_random_access(1)
            node = node.children[index]
        return node

    def search_point(self, key, counters: Optional[CostCounters] = None) -> List:
        """Payloads of all entries with exactly ``key``."""
        leaf = self._descend(key, counters)
        results: List = []
        node = leaf
        while node is not None:
            index = bisect.bisect_left(node.keys, key)
            if counters is not None:
                counters.record_comparisons(
                    max(1, int(np.ceil(np.log2(len(node.keys) + 1))))
                )
            while index < len(node.keys) and node.keys[index] == key:
                results.append(node.values[index])
                index += 1
            if index < len(node.keys):
                # stopped on a key greater than the probe: no more matches
                break
            node = node.next_leaf
            if node is not None and node.keys and node.keys[0] > key:
                break
        return results

    def search_range(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> np.ndarray:
        """Payloads of all entries with key in the requested range."""
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        start_key = low if low is not None else self.min_key()
        leaf = self._descend(start_key, counters)
        results: List = []
        node = leaf
        while node is not None:
            for key, value in zip(node.keys, node.values):
                if counters is not None:
                    counters.record_comparisons(1)
                if low is not None:
                    if include_low and key < low:
                        continue
                    if not include_low and key <= low:
                        continue
                if high is not None:
                    if include_high and key > high:
                        node = None
                        break
                    if not include_high and key >= high:
                        node = None
                        break
                results.append(value)
            if node is None:
                break
            node = node.next_leaf
            if counters is not None and node is not None:
                counters.record_random_access(1)
        if counters is not None:
            counters.record_scan(len(results))
        return np.asarray(results, dtype=np.int64)

    # -- mutation ---------------------------------------------------------------

    def insert(self, key, payload, counters: Optional[CostCounters] = None) -> None:
        """Insert one key/payload pair (splitting nodes as needed)."""
        path: List[Tuple[_Node, int]] = []
        node = self.root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            path.append((node, index))
            node = node.children[index]
        index = bisect.bisect_right(node.keys, key)
        node.keys.insert(index, key)
        node.values.insert(index, payload)
        self.size += 1
        if counters is not None:
            counters.record_comparisons(self.height)
            counters.record_random_access(self.height)
            counters.record_move(1)
        self._split_if_needed(node, path)

    def _split_if_needed(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        while len(node.keys) > self.order:
            middle = len(node.keys) // 2
            sibling = _Node(is_leaf=node.is_leaf)
            if node.is_leaf:
                sibling.keys = node.keys[middle:]
                sibling.values = node.values[middle:]
                node.keys = node.keys[:middle]
                node.values = node.values[:middle]
                sibling.next_leaf = node.next_leaf
                node.next_leaf = sibling
                separator = sibling.keys[0]
            else:
                separator = node.keys[middle]
                sibling.keys = node.keys[middle + 1 :]
                sibling.children = node.children[middle + 1 :]
                node.keys = node.keys[:middle]
                node.children = node.children[: middle + 1]
            if path:
                parent, child_index = path.pop()
                parent.keys.insert(child_index, separator)
                parent.children.insert(child_index + 1, sibling)
                node = parent
            else:
                new_root = _Node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self.root = new_root
                self.height += 1
                return

    # -- inspection ---------------------------------------------------------------

    def min_key(self):
        """Smallest key in the tree (raises on empty tree)."""
        if self.size == 0:
            raise ValueError("empty B-tree has no minimum key")
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self):
        """Largest key in the tree (raises on empty tree)."""
        if self.size == 0:
            raise ValueError("empty B-tree has no maximum key")
        node = self.root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    def items(self) -> Iterable[Tuple]:
        """Iterate (key, payload) pairs in key order."""
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, value in zip(node.keys, node.values):
                yield key, value
            node = node.next_leaf

    def __len__(self) -> int:
        return self.size

    def validate(self) -> bool:
        """Check structural invariants (sorted keys, linked leaves). Test helper."""
        previous = None
        count = 0
        for key, _ in self.items():
            if previous is not None and key < previous:
                return False
            previous = key
            count += 1
        return count == self.size
