"""The full (offline) index: a completely sorted copy of a column.

This is the "perfect" physical design all adaptive strategies converge to.
Building it costs a full sort up front (paid either offline before the
workload starts, or — for the *sort-first* baseline — by the first query);
afterwards every range query is two binary searches plus a contiguous read
of the qualifying positions.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.columnstore.bulk import binary_search_count
from repro.columnstore.column import Column
from repro.columnstore.select import RangePredicate
from repro.cost.counters import CostCounters


class FullIndex:
    """Fully sorted secondary index over one column.

    The index stores the sorted values and, aligned with them, the original
    row positions, so a range lookup returns positions in the base column
    (late materialisation).
    """

    def __init__(
        self,
        column: Union[Column, np.ndarray],
        counters: Optional[CostCounters] = None,
        name: str = "",
    ) -> None:
        values = column.values if isinstance(column, Column) else np.asarray(column)
        self.name = name or (column.name if isinstance(column, Column) else "")
        n = len(values)
        order = np.argsort(values, kind="stable")
        self.sorted_values = values[order]
        self.sorted_positions = order.astype(np.int64)
        self.build_counters = CostCounters()
        self.build_counters.record_scan(n)
        self.build_counters.record_comparisons(int(n * max(1.0, np.log2(max(n, 2)))))
        self.build_counters.record_move(n)
        self.build_counters.record_allocation(
            self.sorted_values.nbytes + self.sorted_positions.nbytes
        )
        self.build_counters.record_pieces(1)
        if counters is not None:
            counters += self.build_counters

    def __len__(self) -> int:
        return len(self.sorted_values)

    @property
    def nbytes(self) -> int:
        """Bytes used by the index structures."""
        return int(self.sorted_values.nbytes + self.sorted_positions.nbytes)

    # -- lookups -------------------------------------------------------------

    def range_bounds(
        self,
        predicate: RangePredicate,
        counters: Optional[CostCounters] = None,
    ) -> Tuple[int, int]:
        """Offsets ``(begin, end)`` into the sorted arrays for a predicate."""
        n = len(self.sorted_values)
        if predicate.low is None:
            begin = 0
        else:
            side = "left" if predicate.include_low else "right"
            begin = int(np.searchsorted(self.sorted_values, predicate.low, side=side))
        if predicate.high is None:
            end = n
        else:
            side = "right" if predicate.include_high else "left"
            end = int(np.searchsorted(self.sorted_values, predicate.high, side=side))
        if counters is not None:
            counters.record_comparisons(2 * binary_search_count(n))
            counters.record_random_access(2)
        return begin, min(max(end, begin), n)

    def search(
        self,
        low: Optional[float],
        high: Optional[float],
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Positions (in the base column) of rows with ``low <= value < high``."""
        return self.search_predicate(RangePredicate(low, high), counters)

    def search_predicate(
        self,
        predicate: RangePredicate,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Positions satisfying an arbitrary range predicate."""
        begin, end = self.range_bounds(predicate, counters)
        if counters is not None:
            counters.record_scan(end - begin)
        return self.sorted_positions[begin:end]

    def search_values(
        self,
        predicate: RangePredicate,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Qualifying *values* (sorted) rather than positions."""
        begin, end = self.range_bounds(predicate, counters)
        if counters is not None:
            counters.record_scan(end - begin)
        return self.sorted_values[begin:end]

    def count(
        self,
        predicate: RangePredicate,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Number of qualifying rows (no materialisation)."""
        begin, end = self.range_bounds(predicate, counters)
        return end - begin

    def is_consistent_with(self, column: Union[Column, np.ndarray]) -> bool:
        """Verify the index still describes ``column`` (used by tests)."""
        values = column.values if isinstance(column, Column) else np.asarray(column)
        if len(values) != len(self.sorted_values):
            return False
        return bool(np.array_equal(values[self.sorted_positions], self.sorted_values))
