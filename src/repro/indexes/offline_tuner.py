"""Offline what-if index tuner (auto-tuning advisor).

Models the classical advisor loop the tutorial describes: given a *sample*
workload and a storage budget, enumerate candidate indexes, estimate their
benefit with what-if analysis, and recommend the subset with the best
benefit-per-byte that fits the budget.  The recommended indexes are then
built **before** the real workload runs — which is exactly the behaviour
(great steady-state performance, useless when the workload shifts or the
sample was unrepresentative) that motivates online and adaptive indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.indexes.whatif import HypotheticalIndex, WhatIfAnalyzer, WorkloadQuery


@dataclass
class TuningRecommendation:
    """Result of an offline tuning session."""

    indexes: List[HypotheticalIndex] = field(default_factory=list)
    estimated_benefit: float = 0.0
    estimated_build_cost: float = 0.0
    estimated_storage_bytes: int = 0

    def covers(self, table: str, column: str) -> bool:
        """True when the recommendation contains an index on table.column."""
        return any(i.table == table and i.column == column for i in self.indexes)


class OfflineTuner:
    """Greedy benefit-per-byte index advisor over a sample workload."""

    def __init__(
        self,
        analyzer: WhatIfAnalyzer,
        bytes_per_row: int = 16,
    ) -> None:
        self.analyzer = analyzer
        self.bytes_per_row = bytes_per_row

    def index_storage_bytes(self, index: HypotheticalIndex) -> int:
        """Estimated storage of a full index (sorted values + positions)."""
        return self.analyzer._rows(index.table) * self.bytes_per_row

    def recommend(
        self,
        sample_workload: Sequence[WorkloadQuery],
        storage_budget_bytes: Optional[int] = None,
        max_indexes: Optional[int] = None,
        min_benefit: float = 0.0,
    ) -> TuningRecommendation:
        """Pick the best index set for ``sample_workload`` under the budget.

        The selection is the standard greedy heuristic used by advisor
        tools: repeatedly add the candidate with the highest *incremental*
        benefit per storage byte until the budget (or ``max_indexes``) is
        exhausted or no candidate improves the workload by more than
        ``min_benefit``.
        """
        candidates = self.analyzer.candidate_indexes(sample_workload)
        chosen: List[HypotheticalIndex] = []
        remaining = list(candidates)
        used_bytes = 0
        recommendation = TuningRecommendation()
        baseline = self.analyzer.workload_cost(sample_workload, chosen)

        while remaining:
            if max_indexes is not None and len(chosen) >= max_indexes:
                break
            best = None
            best_score = 0.0
            best_benefit = 0.0
            for candidate in remaining:
                storage = self.index_storage_bytes(candidate)
                if storage_budget_bytes is not None and used_bytes + storage > storage_budget_bytes:
                    continue
                cost_with = self.analyzer.workload_cost(sample_workload, chosen + [candidate])
                benefit = baseline - cost_with
                if benefit <= min_benefit:
                    continue
                score = benefit / max(storage, 1)
                if score > best_score:
                    best, best_score, best_benefit = candidate, score, benefit
            if best is None:
                break
            chosen.append(best)
            remaining.remove(best)
            used_bytes += self.index_storage_bytes(best)
            baseline -= best_benefit
            recommendation.estimated_benefit += best_benefit
            recommendation.estimated_build_cost += self.analyzer.build_cost(best)

        recommendation.indexes = chosen
        recommendation.estimated_storage_bytes = used_bytes
        return recommendation
