"""Online index tuning (monitor-and-tune, COLT-style).

Online indexing "transfers the concepts of offline analysis online": while
processing queries the system monitors which columns are touched and how
much an index would have helped; once the accumulated estimated benefit of a
candidate index exceeds its build cost (times a configurable factor), the
index is built — interrupting, and being paid for by, the query that crossed
the threshold.  Indexes whose recent benefit drops can be dropped again under
a storage budget.

This reproduces the behavioural envelope of COLT (Schnaitter et al., SIGMOD
2006) and the online physical-design work of Bruno & Chaudhuri (ICDE 2007):
no query before the threshold benefits at all, and the triggering query pays
a large penalty — the two weaknesses adaptive indexing removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.columnstore.column import Column
from repro.columnstore.select import RangePredicate, scan_select
from repro.cost.counters import CostCounters
from repro.indexes.full_index import FullIndex


@dataclass
class CandidateStatistics:
    """Bookkeeping for one candidate index (one column)."""

    queries_observed: int = 0
    accumulated_benefit: float = 0.0
    recent_benefit: float = 0.0
    last_query_seen: int = 0


class OnlineIndexTuner:
    """Monitors per-column query benefit and builds/drops full indexes online.

    Parameters
    ----------
    build_threshold_factor:
        The index is built once the accumulated estimated benefit exceeds
        ``build_threshold_factor`` times the estimated build cost.  A factor
        of 1.0 means "build as soon as the index would have paid for
        itself"; larger factors are more conservative.
    decay:
        Exponential decay applied to the recent-benefit tracker per query;
        used to decide drops when a storage budget is in place.
    max_indexes:
        Optional cap on the number of concurrently materialised indexes.
    """

    def __init__(
        self,
        build_threshold_factor: float = 1.0,
        decay: float = 0.995,
        max_indexes: Optional[int] = None,
    ) -> None:
        if build_threshold_factor <= 0:
            raise ValueError("build_threshold_factor must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.build_threshold_factor = build_threshold_factor
        self.decay = decay
        self.max_indexes = max_indexes
        self.candidates: Dict[str, CandidateStatistics] = {}
        self.indexes: Dict[str, FullIndex] = {}
        self.queries_processed = 0
        self.builds: list = []
        self.drops: list = []

    # -- cost estimates --------------------------------------------------------

    @staticmethod
    def _scan_cost(rows: int) -> float:
        return 2.0 * rows  # scan + comparison per row, cf. cost model weights

    @staticmethod
    def _indexed_cost(rows: int, qualifying: int) -> float:
        return qualifying + 2.0 * max(1.0, np.log2(max(rows, 2)))

    @staticmethod
    def _build_cost(rows: int) -> float:
        return rows * max(1.0, np.log2(max(rows, 2))) + 2.0 * rows

    # -- the select operator ----------------------------------------------------

    def select(
        self,
        column: Column,
        predicate: RangePredicate,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Answer a range selection, possibly triggering an index build.

        The call path mirrors a monitor-and-tune kernel: if an index exists
        it is used; otherwise the column is scanned, the candidate's benefit
        counter is updated, and — if the threshold is crossed — a full index
        is built right now, charged to this query.
        """
        counters = counters if counters is not None else CostCounters()
        self.queries_processed += 1
        name = column.name or str(id(column))
        rows = len(column)

        # decay all recent-benefit trackers
        for stats in self.candidates.values():
            stats.recent_benefit *= self.decay

        if name in self.indexes:
            index = self.indexes[name]
            stats = self.candidates.setdefault(name, CandidateStatistics())
            stats.queries_observed += 1
            stats.last_query_seen = self.queries_processed
            positions = index.search_predicate(predicate, counters)
            benefit = self._scan_cost(rows) - self._indexed_cost(rows, len(positions))
            stats.recent_benefit += max(benefit, 0.0)
            return positions

        # no index: scan, then update monitoring state
        positions = scan_select(column, predicate, counters)
        stats = self.candidates.setdefault(name, CandidateStatistics())
        stats.queries_observed += 1
        stats.last_query_seen = self.queries_processed
        benefit = self._scan_cost(rows) - self._indexed_cost(rows, len(positions))
        stats.accumulated_benefit += max(benefit, 0.0)
        stats.recent_benefit += max(benefit, 0.0)

        if stats.accumulated_benefit >= self.build_threshold_factor * self._build_cost(rows):
            self._build_index(name, column, counters)
        return positions

    # -- index lifecycle -----------------------------------------------------------

    def _build_index(self, name: str, column: Column, counters: CostCounters) -> None:
        if self.max_indexes is not None and len(self.indexes) >= self.max_indexes:
            victim = self._pick_drop_victim()
            if victim is None:
                return
            self.drop_index(victim)
        self.indexes[name] = FullIndex(column, counters=counters, name=name)
        self.builds.append((self.queries_processed, name))

    def _pick_drop_victim(self) -> Optional[str]:
        """Materialised index with the lowest recent benefit (None if none)."""
        if not self.indexes:
            return None
        return min(
            self.indexes,
            key=lambda name: self.candidates.get(name, CandidateStatistics()).recent_benefit,
        )

    def drop_index(self, name: str) -> None:
        """Drop a materialised index (its statistics are kept)."""
        if name in self.indexes:
            del self.indexes[name]
            self.drops.append((self.queries_processed, name))

    def has_index(self, name: str) -> bool:
        """True when a full index on ``name`` is currently materialised."""
        return name in self.indexes

    def build_query_numbers(self) -> Dict[str, int]:
        """Query number at which each index was (last) built."""
        return {name: query for query, name in self.builds}
