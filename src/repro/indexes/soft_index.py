"""Soft indexes (Lühring et al., SMDB 2007).

Soft indexes sit between online tuning and adaptive indexing: index
recommendations are generated (and dropped) *during query processing*, and —
unlike the monitor-and-tune tools — index creation piggy-backs on a scan that
is already reading the relevant data.  Unlike adaptive indexing, however,
"neither index recommendation nor creation is incremental": when the decision
falls, the full index is built to completion in one go, charged to the query
that carried the scan.

The implementation mirrors that behaviour: every scan feeds a lightweight
recommendation counter; once a column has been scanned ``recommendation_threshold``
times, the *next* qualifying scan also pipes its data into the index-build
routine (charging sort cost but no extra scan, since the data is already
being read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.columnstore.column import Column
from repro.columnstore.select import RangePredicate, scan_select
from repro.cost.counters import CostCounters
from repro.indexes.full_index import FullIndex


@dataclass
class SoftIndexCandidate:
    """Recommendation statistics for one column."""

    scans_observed: int = 0
    recommended: bool = False


class SoftIndexManager:
    """Soft-index style select operator: recommend during processing, build on a scan."""

    def __init__(self, recommendation_threshold: int = 3) -> None:
        if recommendation_threshold < 1:
            raise ValueError("recommendation_threshold must be >= 1")
        self.recommendation_threshold = recommendation_threshold
        self.candidates: Dict[str, SoftIndexCandidate] = {}
        self.indexes: Dict[str, FullIndex] = {}
        self.queries_processed = 0
        self.builds: list = []

    def select(
        self,
        column: Column,
        predicate: RangePredicate,
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Answer a range selection, building a full index when recommended."""
        counters = counters if counters is not None else CostCounters()
        self.queries_processed += 1
        name = column.name or str(id(column))

        if name in self.indexes:
            return self.indexes[name].search_predicate(predicate, counters)

        candidate = self.candidates.setdefault(name, SoftIndexCandidate())
        candidate.scans_observed += 1
        if candidate.scans_observed >= self.recommendation_threshold:
            candidate.recommended = True

        positions = scan_select(column, predicate, counters)

        if candidate.recommended:
            # Piggy-back the index build on this scan: the data was already
            # read, so only the sort and materialisation are charged here.
            n = len(column)
            order = np.argsort(column.values, kind="stable")
            index = FullIndex.__new__(FullIndex)
            index.name = name
            index.sorted_values = column.values[order]
            index.sorted_positions = order.astype(np.int64)
            index.build_counters = CostCounters()
            index.build_counters.record_comparisons(
                int(n * max(1.0, np.log2(max(n, 2))))
            )
            index.build_counters.record_move(n)
            index.build_counters.record_allocation(
                index.sorted_values.nbytes + index.sorted_positions.nbytes
            )
            index.build_counters.record_pieces(1)
            counters += index.build_counters
            self.indexes[name] = index
            self.builds.append((self.queries_processed, name))
        return positions

    def has_index(self, name: str) -> bool:
        """True when a full index on ``name`` has been materialised."""
        return name in self.indexes
