"""What-if analysis: hypothetical indexes and workload cost estimation.

Offline auto-tuning tools (the DB2 Design Advisor, SQL Server's Database
Tuning Advisor, ...) evaluate *hypothetical* indexes: for a sample workload
they ask the optimiser "what would this query cost if index X existed?",
without actually building X.  The :class:`WhatIfAnalyzer` reproduces that
behavioural envelope with the library's deterministic cost model: scan cost
is linear in the column size, indexed cost is a pair of binary searches plus
the qualifying tuples, and building an index costs a full sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.columnstore.bulk import binary_search_count
from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL


@dataclass(frozen=True)
class HypotheticalIndex:
    """A candidate index on one column of one table (never materialised)."""

    table: str
    column: str

    @property
    def key(self) -> Tuple[str, str]:
        return (self.table, self.column)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"idx({self.table}.{self.column})"


@dataclass(frozen=True)
class WorkloadQuery:
    """A simplified workload entry: a range selection on one column.

    ``selectivity`` is the estimated fraction of rows returned; ``weight``
    is how many times this query (pattern) occurs in the sample workload.
    """

    table: str
    column: str
    selectivity: float = 0.01
    weight: float = 1.0


class WhatIfAnalyzer:
    """Estimates query and index-build costs for hypothetical configurations."""

    def __init__(
        self,
        table_sizes: Dict[str, int],
        cost_model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
    ) -> None:
        self.table_sizes = dict(table_sizes)
        self.cost_model = cost_model

    # -- per-query estimates ----------------------------------------------------

    def scan_cost(self, query: WorkloadQuery) -> float:
        """Cost of answering ``query`` with a full column scan."""
        rows = self._rows(query.table)
        return self.cost_model.cost_of(tuples_scanned=rows, comparisons=rows)

    def indexed_cost(self, query: WorkloadQuery) -> float:
        """Cost of answering ``query`` with a full index on its column."""
        rows = self._rows(query.table)
        qualifying = int(rows * min(max(query.selectivity, 0.0), 1.0))
        return self.cost_model.cost_of(
            tuples_scanned=qualifying,
            comparisons=2 * binary_search_count(rows),
            random_accesses=2,
        )

    def query_cost(self, query: WorkloadQuery, indexes: Iterable[HypotheticalIndex]) -> float:
        """Cost of ``query`` given a hypothetical index configuration."""
        for index in indexes:
            if index.table == query.table and index.column == query.column:
                return self.indexed_cost(query)
        return self.scan_cost(query)

    def build_cost(self, index: HypotheticalIndex) -> float:
        """Cost of materialising a hypothetical index (full sort of the column)."""
        rows = self._rows(index.table)
        log_rows = max(1.0, np.log2(max(rows, 2)))
        return self.cost_model.cost_of(
            tuples_scanned=rows,
            comparisons=int(rows * log_rows),
            tuples_moved=rows,
        )

    # -- workload-level estimates --------------------------------------------------

    def workload_cost(
        self,
        workload: Sequence[WorkloadQuery],
        indexes: Iterable[HypotheticalIndex],
        include_build_cost: bool = False,
    ) -> float:
        """Total (weighted) cost of a workload under an index configuration."""
        indexes = list(indexes)
        total = sum(q.weight * self.query_cost(q, indexes) for q in workload)
        if include_build_cost:
            total += sum(self.build_cost(index) for index in indexes)
        return total

    def index_benefit(
        self,
        index: HypotheticalIndex,
        workload: Sequence[WorkloadQuery],
    ) -> float:
        """Workload cost reduction obtained by adding ``index`` (ignoring build cost)."""
        without = self.workload_cost(workload, [])
        with_index = self.workload_cost(workload, [index])
        return without - with_index

    def candidate_indexes(self, workload: Sequence[WorkloadQuery]) -> List[HypotheticalIndex]:
        """One candidate index per (table, column) referenced by the workload."""
        seen = {}
        for query in workload:
            seen.setdefault((query.table, query.column), HypotheticalIndex(query.table, query.column))
        return list(seen.values())

    # -- helpers ----------------------------------------------------------------------

    def _rows(self, table: str) -> int:
        try:
            return self.table_sizes[table]
        except KeyError:
            raise KeyError(
                f"unknown table {table!r}; known tables: {sorted(self.table_sizes)}"
            ) from None
