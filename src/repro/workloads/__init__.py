"""Workload generation and the adaptive-indexing benchmark.

* :mod:`repro.workloads.generators` — range-query workloads with the access
  patterns studied across the adaptive-indexing papers: uniform random,
  skewed (zipfian focus), sequential, periodic, and piecewise-focused
  (workload shifts).
* :mod:`repro.workloads.updates` — interleaved insert/delete streams for the
  cracking-updates experiments.
* :mod:`repro.workloads.tpch_like` — a small synthetic star-schema data
  generator exercising the multi-column / tuple-reconstruction code path
  that sideways cracking targets (stand-in for TPC-H, see DESIGN.md).
* :mod:`repro.workloads.metrics` / :mod:`repro.workloads.benchmark` — the
  benchmark of Graefe, Idreos, Kuno & Manegold (TPCTC 2010): initialization
  cost, convergence point, and a harness that runs many strategies over the
  same workload and reports both.
"""

from repro.workloads.benchmark import AdaptiveIndexingBenchmark, BenchmarkResult
from repro.workloads.generators import (
    RangeQuery,
    WorkloadSpec,
    periodic_workload,
    piecewise_focus_workload,
    random_workload,
    sequential_workload,
    skewed_workload,
)
from repro.workloads.metrics import convergence_point, initialization_overhead
from repro.workloads.updates import UpdateOperation, mixed_update_workload

__all__ = [
    "AdaptiveIndexingBenchmark",
    "BenchmarkResult",
    "RangeQuery",
    "WorkloadSpec",
    "random_workload",
    "skewed_workload",
    "sequential_workload",
    "periodic_workload",
    "piecewise_focus_workload",
    "convergence_point",
    "initialization_overhead",
    "UpdateOperation",
    "mixed_update_workload",
]
