"""The adaptive-indexing benchmark harness (Graefe et al., TPCTC 2010).

The harness runs a set of strategies over the same column and the same
query workload, records per-query logical costs and wall-clock times, and
reports the benchmark's two metrics (initialization cost of the first query,
convergence point) plus total cost — everything the experiment scripts under
``benchmarks/`` need to regenerate the figures listed in EXPERIMENTS.md.

Two execution surfaces are offered: :meth:`run_strategy` drives a bare
strategy object (the historical micro-benchmark path), while
:meth:`run_in_engine` routes the same workload through a full
``Database`` session — planner, executor, table gate and access-path
locks included — so engine-level experiments (concurrent sessions,
DML-during-batch) report metrics comparable to the strategy-level runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.columnstore.column import Column
from repro.core.strategies import create_strategy
from repro.cost.counters import CostCounters
from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL
from repro.cost.stats import QueryStatistics, WorkloadStatistics
from repro.cost.timer import Timer
from repro.engine.database import Database
from repro.workloads.generators import RangeQuery
from repro.workloads.metrics import (
    convergence_point,
    initialization_overhead,
    robustness_ratio,
)


@dataclass
class StrategyRunResult:
    """Everything recorded for one strategy over one workload."""

    strategy: str
    statistics: WorkloadStatistics
    initialization_overhead: Optional[float] = None
    convergence_query: Optional[int] = None
    total_cost: float = 0.0
    total_seconds: float = 0.0
    final_nbytes: int = 0
    robustness: float = 1.0
    #: one-line physical state after the workload (partition/split counts …)
    final_structure: str = ""

    def summary_row(self) -> Dict[str, object]:
        """Flat record for tabular reports."""
        return {
            "strategy": self.strategy,
            "first_query_overhead_vs_scan": self.initialization_overhead,
            "convergence_query": self.convergence_query,
            "total_logical_cost": self.total_cost,
            "total_seconds": self.total_seconds,
            "auxiliary_bytes": self.final_nbytes,
            "robustness_max_over_median": self.robustness,
        }


@dataclass
class BenchmarkResult:
    """Results of one benchmark run across several strategies."""

    column_size: int
    query_count: int
    runs: Dict[str, StrategyRunResult] = field(default_factory=dict)
    scan_cost: float = 0.0
    full_index_cost: float = 0.0

    def summary_table(self) -> List[Dict[str, object]]:
        """One summary row per strategy, ordered by total cost."""
        rows = [run.summary_row() for run in self.runs.values()]
        return sorted(rows, key=lambda row: row["total_logical_cost"])

    def per_query_costs(self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL) -> Dict[str, List[float]]:
        """Per-query logical cost series per strategy (for the figures)."""
        return {
            name: run.statistics.per_query_cost(model)
            for name, run in self.runs.items()
        }

    def cumulative_costs(self, model: CostModel = DEFAULT_MAIN_MEMORY_MODEL) -> Dict[str, List[float]]:
        """Cumulative logical cost series per strategy."""
        return {
            name: run.statistics.cumulative_cost(model)
            for name, run in self.runs.items()
        }


class AdaptiveIndexingBenchmark:
    """Run several strategies over one column and one query sequence."""

    def __init__(
        self,
        values: Union[Column, np.ndarray],
        queries: Sequence[RangeQuery],
        cost_model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
        convergence_tolerance: float = 1.25,
        convergence_consecutive: int = 5,
    ) -> None:
        self.values = values.values if isinstance(values, Column) else np.asarray(values)
        self.queries = list(queries)
        if not self.queries:
            raise ValueError("the benchmark needs at least one query")
        self.cost_model = cost_model
        self.convergence_tolerance = convergence_tolerance
        self.convergence_consecutive = convergence_consecutive
        self._scan_cost = self._estimate_scan_cost()
        self._full_index_cost = self._estimate_full_index_cost()

    # -- reference costs -----------------------------------------------------------

    def _estimate_scan_cost(self) -> float:
        n = len(self.values)
        return self.cost_model.cost_of(tuples_scanned=n, comparisons=2 * n)

    def _estimate_full_index_cost(self) -> float:
        """Steady-state cost of one query on a full index (lookup + result scan)."""
        n = len(self.values)
        average_result = max(
            1,
            int(np.mean([q.width for q in self.queries]) / self._domain_width() * n),
        )
        log_n = max(1.0, np.log2(max(n, 2)))
        return self.cost_model.cost_of(
            tuples_scanned=average_result,
            comparisons=int(2 * log_n),
            random_accesses=2,
        )

    def _domain_width(self) -> float:
        if len(self.values) == 0:
            return 1.0
        width = float(self.values.max() - self.values.min())
        return width if width > 0 else 1.0

    @property
    def scan_cost(self) -> float:
        """Logical cost of answering one query with a full scan."""
        return self._scan_cost

    @property
    def full_index_cost(self) -> float:
        """Logical steady-state cost of one query on a full index."""
        return self._full_index_cost

    # -- running -----------------------------------------------------------------------

    def run_strategy(
        self, name: str, label: Optional[str] = None, **options
    ) -> StrategyRunResult:
        """Run the full query sequence against a fresh instance of one strategy.

        ``label`` names the run in the result (defaults to ``name``); distinct
        labels let the same strategy be compared at several configurations,
        e.g. partitioned cracking at different partition counts.
        """
        label = label or name
        strategy = create_strategy(name, self.values, **options)
        statistics = WorkloadStatistics(strategy=label)
        total_timer = Timer()
        with total_timer:
            for index, query in enumerate(self.queries):
                counters = CostCounters()
                timer = Timer()
                with timer:
                    positions = strategy.search(query.low, query.high, counters)
                statistics.append(
                    QueryStatistics(
                        query_index=index,
                        elapsed_seconds=timer.elapsed,
                        counters=counters,
                        result_count=len(positions),
                        strategy=label,
                        description=f"[{query.low}, {query.high})",
                    )
                )
        per_query = statistics.per_query_cost(self.cost_model)
        return StrategyRunResult(
            strategy=label,
            statistics=statistics,
            initialization_overhead=initialization_overhead(
                statistics, self._scan_cost, self.cost_model
            ),
            convergence_query=convergence_point(
                statistics,
                self._full_index_cost,
                tolerance=self.convergence_tolerance,
                consecutive=self.convergence_consecutive,
                model=self.cost_model,
            ),
            total_cost=sum(per_query),
            total_seconds=statistics.total_seconds,
            final_nbytes=strategy.nbytes,
            robustness=robustness_ratio(per_query) if per_query else 1.0,
            final_structure=strategy.structure_description,
        )

    def run_in_engine(
        self, mode: str, label: Optional[str] = None, **options
    ) -> StrategyRunResult:
        """Run the workload through a Database session (the engine front door).

        Builds a fresh single-table database, puts its key column under
        ``mode`` (any managed mode or registered strategy; ``"scan"``
        leaves it unindexed) and executes every query through the
        lock-aware session builder.  For a pure selection workload the
        recorded counters are identical to :meth:`run_strategy`'s — the
        engine dispatches to the same structures — so both surfaces feed
        the same summary tables.
        """
        label = label or f"engine:{mode}"
        database = Database(f"bench-{mode}")
        database.create_table("data", {"key": self.values})
        if mode != "scan":
            database.set_indexing("data", "key", mode, **options)
        statistics = WorkloadStatistics(strategy=label)
        total_timer = Timer()
        with total_timer, database.session(name=label) as session:
            for index, query in enumerate(self.queries):
                result = (
                    session.query("data").where("key", query.low, query.high).run()
                )
                statistics.append(
                    QueryStatistics(
                        query_index=index,
                        elapsed_seconds=result.elapsed_seconds,
                        counters=result.counters,
                        result_count=result.row_count,
                        strategy=label,
                        description=f"[{query.low}, {query.high})",
                    )
                )
        path = database.access_path("data", "key")
        structure = next(
            (
                record["structure"]
                for record in database.physical_design_report()
                if record["column"] == "key"
            ),
            "",
        )
        per_query = statistics.per_query_cost(self.cost_model)
        return StrategyRunResult(
            strategy=label,
            statistics=statistics,
            initialization_overhead=initialization_overhead(
                statistics, self._scan_cost, self.cost_model
            ),
            convergence_query=convergence_point(
                statistics,
                self._full_index_cost,
                tolerance=self.convergence_tolerance,
                consecutive=self.convergence_consecutive,
                model=self.cost_model,
            ),
            total_cost=sum(per_query),
            total_seconds=statistics.total_seconds,
            final_nbytes=int(getattr(path, "nbytes", 0) or 0),
            robustness=robustness_ratio(per_query) if per_query else 1.0,
            final_structure=structure,
        )

    def run(
        self,
        strategies: Iterable[str],
        options: Optional[Dict[str, dict]] = None,
    ) -> BenchmarkResult:
        """Run every strategy in ``strategies`` over the same workload."""
        options = options or {}
        result = BenchmarkResult(
            column_size=len(self.values),
            query_count=len(self.queries),
            scan_cost=self._scan_cost,
            full_index_cost=self._full_index_cost,
        )
        for name in strategies:
            result.runs[name] = self.run_strategy(name, **options.get(name, {}))
        return result

    def run_labeled(
        self, variants: Mapping[str, Tuple[str, dict]]
    ) -> BenchmarkResult:
        """Run labelled strategy variants: ``label -> (strategy name, options)``.

        Unlike :meth:`run`, the same strategy may appear several times under
        different labels (and option sets) in one result.
        """
        result = BenchmarkResult(
            column_size=len(self.values),
            query_count=len(self.queries),
            scan_cost=self._scan_cost,
            full_index_cost=self._full_index_cost,
        )
        for label, (name, variant_options) in variants.items():
            result.runs[label] = self.run_strategy(
                name, label=label, **dict(variant_options)
            )
        return result
