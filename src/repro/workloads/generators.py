"""Range-query workload generators.

All generators produce sequences of :class:`RangeQuery` (half-open value
ranges) over a numeric key domain.  The patterns mirror the workloads used
across the adaptive-indexing papers:

* ``random``      — query position uniform over the domain (CIDR 2007);
* ``skewed``      — query focus drawn from a zipf-like distribution so a few
  hot regions receive most queries (PVLDB 2011 robustness studies);
* ``sequential``  — ranges sweep the domain left to right (the adversarial
  pattern for plain cracking);
* ``periodic``    — sequential sweep that restarts every ``period`` queries;
* ``piecewise focus`` — the workload concentrates on one region for a while,
  then jumps to another (workload-shift experiments for online tuning
  versus adaptive indexing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class RangeQuery:
    """A half-open range query ``low <= key < high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"invalid range query: high ({self.high}) < low ({self.low})")

    @property
    def width(self) -> float:
        return self.high - self.low

    def as_tuple(self) -> Tuple[float, float]:
        return (self.low, self.high)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters shared by all workload generators."""

    domain_low: float = 0.0
    domain_high: float = 1_000_000.0
    query_count: int = 1000
    selectivity: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.domain_high <= self.domain_low:
            raise ValueError("domain_high must be greater than domain_low")
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")
        if self.query_count < 1:
            raise ValueError("query_count must be >= 1")

    @property
    def domain_width(self) -> float:
        return self.domain_high - self.domain_low

    @property
    def range_width(self) -> float:
        return self.domain_width * self.selectivity


def _clamp_query(low: float, width: float, spec: WorkloadSpec) -> RangeQuery:
    low = min(max(low, spec.domain_low), spec.domain_high - width)
    low = max(low, spec.domain_low)
    return RangeQuery(low=low, high=min(low + width, spec.domain_high))


def random_workload(spec: WorkloadSpec) -> List[RangeQuery]:
    """Uniformly random range queries of fixed selectivity."""
    rng = np.random.default_rng(spec.seed)
    width = spec.range_width
    lows = rng.uniform(spec.domain_low, spec.domain_high - width, size=spec.query_count)
    return [_clamp_query(low, width, spec) for low in lows]


def skewed_workload(spec: WorkloadSpec, alpha: float = 1.0, hot_regions: int = 8) -> List[RangeQuery]:
    """Zipf-skewed workload: region ``k`` is queried with weight ``1/(k+1)**alpha``.

    ``alpha = 0`` degenerates to uniform; larger values concentrate queries
    on fewer regions, which is the setting where adaptive indexing optimises
    only the hot key ranges and leaves the rest untouched.
    """
    if hot_regions < 1:
        raise ValueError("hot_regions must be >= 1")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    rng = np.random.default_rng(spec.seed)
    width = spec.range_width
    weights = np.array([1.0 / (k + 1) ** alpha for k in range(hot_regions)])
    weights /= weights.sum()
    region_width = spec.domain_width / hot_regions
    # shuffle region order so the hottest region is not always the leftmost
    region_order = rng.permutation(hot_regions)
    queries: List[RangeQuery] = []
    regions = rng.choice(hot_regions, size=spec.query_count, p=weights)
    for region in regions:
        base = spec.domain_low + region_order[region] * region_width
        offset = rng.uniform(0.0, max(region_width - width, 1e-9))
        queries.append(_clamp_query(base + offset, width, spec))
    return queries


def sequential_workload(spec: WorkloadSpec, overlap: float = 0.0) -> List[RangeQuery]:
    """Ranges sweeping the domain left to right.

    ``overlap`` in [0, 1) controls how much consecutive ranges overlap; the
    default 0 gives disjoint consecutive ranges, the classic adversarial
    pattern for plain cracking (every query shaves a sliver off the one huge
    remaining piece).
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    width = spec.range_width
    step = width * (1.0 - overlap)
    queries: List[RangeQuery] = []
    position = spec.domain_low
    for _ in range(spec.query_count):
        if position + width > spec.domain_high:
            position = spec.domain_low
        queries.append(_clamp_query(position, width, spec))
        position += step
    return queries


def periodic_workload(spec: WorkloadSpec, period: int = 100) -> List[RangeQuery]:
    """Sequential sweep that restarts from the domain start every ``period`` queries."""
    if period < 1:
        raise ValueError("period must be >= 1")
    width = spec.range_width
    step = max((spec.domain_width - width) / max(period - 1, 1), 0.0)
    queries: List[RangeQuery] = []
    for index in range(spec.query_count):
        position_in_period = index % period
        low = spec.domain_low + position_in_period * step
        queries.append(_clamp_query(low, width, spec))
    return queries


def piecewise_focus_workload(
    spec: WorkloadSpec,
    shift_every: int = 250,
    focus_fraction: float = 0.1,
) -> List[RangeQuery]:
    """Workload that concentrates on one sub-domain, then shifts to another.

    Every ``shift_every`` queries the focus jumps to a new random sub-domain
    covering ``focus_fraction`` of the key space.  Offline tuning indexes the
    wrong region after each shift; online tuning needs to re-observe; adaptive
    indexing starts refining the new region with the first query that touches
    it — which is exactly the comparison experiment E13/E14 runs.
    """
    if shift_every < 1:
        raise ValueError("shift_every must be >= 1")
    if not 0.0 < focus_fraction <= 1.0:
        raise ValueError("focus_fraction must be in (0, 1]")
    rng = np.random.default_rng(spec.seed)
    width = spec.range_width
    focus_width = spec.domain_width * focus_fraction
    queries: List[RangeQuery] = []
    focus_low = spec.domain_low
    for index in range(spec.query_count):
        if index % shift_every == 0:
            focus_low = rng.uniform(
                spec.domain_low, max(spec.domain_high - focus_width, spec.domain_low)
            )
        low = rng.uniform(focus_low, max(focus_low + focus_width - width, focus_low + 1e-9))
        queries.append(_clamp_query(low, width, spec))
    return queries


WORKLOAD_PATTERNS = {
    "random": random_workload,
    "skewed": skewed_workload,
    "sequential": sequential_workload,
    "periodic": periodic_workload,
    "piecewise": piecewise_focus_workload,
}


def make_workload(pattern: str, spec: WorkloadSpec, **kwargs) -> List[RangeQuery]:
    """Dispatch helper: build a workload by pattern name."""
    try:
        generator = WORKLOAD_PATTERNS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown workload pattern {pattern!r}; "
            f"available: {sorted(WORKLOAD_PATTERNS)}"
        ) from None
    return generator(spec, **kwargs)


def generate_column_data(
    size: int,
    domain_low: float = 0.0,
    domain_high: float = 1_000_000.0,
    distribution: str = "uniform",
    seed: int = 0,
    dtype=np.int64,
) -> np.ndarray:
    """Generate base column data for the experiments.

    ``distribution`` is one of ``uniform`` (default), ``normal`` (clipped to
    the domain) or ``clustered`` (values clustered around a few centroids,
    giving duplicate-heavy columns).
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        data = rng.uniform(domain_low, domain_high, size=size)
    elif distribution == "normal":
        centre = (domain_low + domain_high) / 2.0
        spread = (domain_high - domain_low) / 6.0
        data = np.clip(rng.normal(centre, spread, size=size), domain_low, domain_high)
    elif distribution == "clustered":
        centroids = rng.uniform(domain_low, domain_high, size=max(4, size // 10_000 or 4))
        picks = rng.integers(0, len(centroids), size=size)
        spread = (domain_high - domain_low) / 100.0
        data = np.clip(
            centroids[picks] + rng.normal(0.0, spread, size=size),
            domain_low,
            domain_high,
        )
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    if np.issubdtype(np.dtype(dtype), np.integer):
        return data.astype(np.int64).astype(dtype)
    return data.astype(dtype)
