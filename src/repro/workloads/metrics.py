"""The two metrics of the adaptive-indexing benchmark (TPCTC 2010).

"Two measures are crucial to characterize how quickly and efficiently a
technique adapts index structures to a dynamic workload.  These are: (1) the
initialization cost incurred by the first query and (2) the number of
queries that must be processed before a random query benefits from the index
structure without incurring any overhead." (EDBT 2012 tutorial, Section 2)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL
from repro.cost.stats import WorkloadStatistics


def initialization_overhead(
    statistics: WorkloadStatistics,
    scan_cost: float,
    model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
) -> Optional[float]:
    """Metric (1): first-query cost relative to a plain scan.

    Returns ``first_query_cost / scan_cost``; a value of 1.0 means the first
    query was as cheap as a scan (no initialization overhead at all), larger
    values quantify how much the first query paid for future benefit.
    ``None`` for an empty workload.
    """
    if scan_cost <= 0:
        raise ValueError("scan_cost must be positive")
    first = statistics.first_query_cost(model)
    if first is None:
        return None
    return first / scan_cost


def convergence_point(
    statistics: WorkloadStatistics,
    full_index_cost: float,
    tolerance: float = 1.1,
    consecutive: int = 5,
    model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
) -> Optional[int]:
    """Metric (2): queries needed before queries run at (near) full-index cost.

    Returns the 0-based index of the first query from which ``consecutive``
    queries in a row cost at most ``tolerance`` times ``full_index_cost``,
    or ``None`` when the workload never converges.
    """
    return statistics.convergence_query(
        reference_cost=full_index_cost,
        tolerance=tolerance,
        model=model,
        consecutive=consecutive,
    )


def cost_crossover(
    cumulative_a: Sequence[float],
    cumulative_b: Sequence[float],
) -> Optional[int]:
    """First query index where cumulative cost of A drops below B (None if never).

    Used for the classic "after how many queries does adaptive indexing beat
    scanning / up-front sorting cumulatively" readings.
    """
    for index, (a, b) in enumerate(zip(cumulative_a, cumulative_b)):
        if a < b:
            return index
    return None


def robustness_ratio(per_query_costs: Sequence[float]) -> float:
    """Max-over-median per-query cost: how spiky a strategy's behaviour is.

    1.0 means perfectly even per-query cost; large values mean some queries
    paid far more than the typical query (the variance criticism of online
    indexing and of aggressive merging).
    """
    costs: List[float] = [float(c) for c in per_query_costs]
    if not costs:
        raise ValueError("per_query_costs must be non-empty")
    ordered = sorted(costs)
    median = ordered[len(ordered) // 2]
    if median == 0:
        return float("inf") if max(costs) > 0 else 1.0
    return max(costs) / median
