"""Rendering and exporting benchmark results.

The benchmark harness returns structured
:class:`~repro.workloads.benchmark.BenchmarkResult` objects; this module
turns them into the artefacts an experimenter actually wants: aligned text
tables for the console, Markdown tables for reports (EXPERIMENTS.md is built
from these), and CSV files of the per-query series for plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List

from repro.cost.model import CostModel, DEFAULT_MAIN_MEMORY_MODEL
from repro.workloads.benchmark import BenchmarkResult


_SUMMARY_COLUMNS = [
    ("strategy", "strategy"),
    ("first_query_overhead_vs_scan", "first-query/scan"),
    ("convergence_query", "converged@"),
    ("total_logical_cost", "total cost"),
    ("total_seconds", "seconds"),
    ("auxiliary_bytes", "aux bytes"),
    ("robustness_max_over_median", "max/median"),
]


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def summary_rows(result: BenchmarkResult) -> List[dict]:
    """The summary table as a list of dictionaries (one per strategy)."""
    return result.summary_table()


def render_text_table(result: BenchmarkResult) -> str:
    """Fixed-width text table of the benchmark summary."""
    rows = summary_rows(result)
    widths = {}
    for key, title in _SUMMARY_COLUMNS:
        widths[key] = max(
            len(title), *(len(_format_value(row[key])) for row in rows)
        ) if rows else len(title)
    header = "  ".join(title.rjust(widths[key]) for key, title in _SUMMARY_COLUMNS)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(
                _format_value(row[key]).rjust(widths[key])
                for key, _ in _SUMMARY_COLUMNS
            )
        )
    return "\n".join(lines)


def render_markdown_table(result: BenchmarkResult) -> str:
    """GitHub-flavoured Markdown table of the benchmark summary."""
    rows = summary_rows(result)
    titles = [title for _, title in _SUMMARY_COLUMNS]
    lines = [
        "| " + " | ".join(titles) + " |",
        "|" + "|".join(["---"] * len(titles)) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_format_value(row[key]) for key, _ in _SUMMARY_COLUMNS)
            + " |"
        )
    return "\n".join(lines)


def per_query_series_csv(
    result: BenchmarkResult,
    cumulative: bool = False,
    model: CostModel = DEFAULT_MAIN_MEMORY_MODEL,
) -> str:
    """CSV text of the per-query (or cumulative) cost series, one column per strategy."""
    series = (
        result.cumulative_costs(model) if cumulative else result.per_query_costs(model)
    )
    names = sorted(series)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["query"] + names)
    length = min(len(values) for values in series.values()) if names else 0
    for index in range(length):
        writer.writerow([index] + [f"{series[name][index]:.1f}" for name in names])
    return buffer.getvalue()


def write_csv(path: str, result: BenchmarkResult, cumulative: bool = False) -> None:
    """Write the per-query series CSV to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(per_query_series_csv(result, cumulative=cumulative))


def summary_csv(result: BenchmarkResult) -> str:
    """CSV text of the summary table."""
    rows = summary_rows(result)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([key for key, _ in _SUMMARY_COLUMNS])
    for row in rows:
        writer.writerow([_format_value(row[key]) for key, _ in _SUMMARY_COLUMNS])
    return buffer.getvalue()


def compare_results(
    baseline: BenchmarkResult,
    candidate: BenchmarkResult,
    metric: str = "total_logical_cost",
) -> Dict[str, float]:
    """Ratio candidate/baseline of one summary metric per shared strategy.

    Useful for ablation studies: run the same workload with a design knob
    flipped and report the relative change per strategy.
    """
    baseline_rows = {row["strategy"]: row for row in summary_rows(baseline)}
    candidate_rows = {row["strategy"]: row for row in summary_rows(candidate)}
    ratios: Dict[str, float] = {}
    for name in sorted(set(baseline_rows) & set(candidate_rows)):
        base_value = baseline_rows[name][metric]
        new_value = candidate_rows[name][metric]
        if base_value in (None, 0) or new_value is None:
            continue
        ratios[name] = float(new_value) / float(base_value)
    return ratios
