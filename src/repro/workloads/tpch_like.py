"""A small synthetic star-schema generator (TPC-H stand-in).

The sideways-cracking experiments of SIGMOD 2009 run on TPC-H, whose dbgen
tool is not available here.  This module generates a scaled-down synthetic
star schema with the properties those experiments rely on:

* a wide fact table (``lineorder``) with several numeric measure columns and
  a few foreign keys, so multi-column selections plus projections exercise
  tuple reconstruction;
* value correlations between columns (dates correlate with order keys,
  prices correlate with quantities), so selections on different columns have
  different selectivities over the same rows;
* small dimension tables for join experiments.

The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.engine.database import Database
from repro.engine.query import Aggregate, Query, RangeSelection


@dataclass(frozen=True)
class TPCHLikeConfig:
    """Scale parameters for the synthetic star schema."""

    fact_rows: int = 100_000
    customers: int = 1_000
    parts: int = 2_000
    date_range_days: int = 2_400  # ~ the 7 years of TPC-H dates
    seed: int = 42

    def __post_init__(self) -> None:
        if self.fact_rows < 1:
            raise ValueError("fact_rows must be >= 1")
        if self.customers < 1 or self.parts < 1:
            raise ValueError("dimension sizes must be >= 1")


def generate_tables(config: TPCHLikeConfig = TPCHLikeConfig()) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate the star schema as plain column dictionaries."""
    rng = np.random.default_rng(config.seed)
    n = config.fact_rows

    orderkey = np.arange(n, dtype=np.int64)
    # order date correlates with order key (orders arrive over time)
    orderdate = (
        orderkey * config.date_range_days // max(n, 1)
        + rng.integers(-5, 6, size=n)
    ).clip(0, config.date_range_days).astype(np.int64)
    quantity = rng.integers(1, 51, size=n).astype(np.int64)
    # price correlates with quantity plus noise
    extendedprice = (quantity * rng.integers(900, 1100, size=n)).astype(np.int64)
    discount = rng.integers(0, 11, size=n).astype(np.int64)  # percent
    custkey = rng.integers(0, config.customers, size=n).astype(np.int64)
    partkey = rng.integers(0, config.parts, size=n).astype(np.int64)
    shipdate = (orderdate + rng.integers(1, 122, size=n)).astype(np.int64)

    lineorder = {
        "orderkey": orderkey,
        "orderdate": orderdate,
        "shipdate": shipdate,
        "quantity": quantity,
        "extendedprice": extendedprice,
        "discount": discount,
        "custkey": custkey,
        "partkey": partkey,
    }
    customer = {
        "custkey": np.arange(config.customers, dtype=np.int64),
        "nation": rng.integers(0, 25, size=config.customers).astype(np.int64),
        "segment": rng.integers(0, 5, size=config.customers).astype(np.int64),
    }
    part = {
        "partkey": np.arange(config.parts, dtype=np.int64),
        "brand": rng.integers(0, 25, size=config.parts).astype(np.int64),
        "size": rng.integers(1, 51, size=config.parts).astype(np.int64),
    }
    return {"lineorder": lineorder, "customer": customer, "part": part}


def build_database(config: TPCHLikeConfig = TPCHLikeConfig()) -> Database:
    """Generate the schema and load it into a :class:`Database`."""
    database = Database(name="tpch-like")
    for table_name, columns in generate_tables(config).items():
        database.create_table(table_name, columns)
    return database


def shipping_priority_queries(
    config: TPCHLikeConfig = TPCHLikeConfig(),
    query_count: int = 200,
    seed: int = 7,
) -> List[Query]:
    """A TPC-H Q3/Q6-flavoured workload: date range + quantity/discount filters.

    Each query selects a sliding date window on ``orderdate``, filters on
    ``quantity`` and ``discount``, projects ``extendedprice`` and aggregates
    its sum — the select/project/aggregate shape sideways cracking targets.
    """
    rng = np.random.default_rng(seed)
    queries: List[Query] = []
    window = max(config.date_range_days // 20, 1)
    for _ in range(query_count):
        start = int(rng.integers(0, max(config.date_range_days - window, 1)))
        quantity_low = int(rng.integers(1, 40))
        discount_low = int(rng.integers(0, 8))
        queries.append(
            Query(
                table="lineorder",
                selections=[
                    RangeSelection("orderdate", start, start + window),
                    RangeSelection("quantity", quantity_low, quantity_low + 10),
                    RangeSelection("discount", discount_low, discount_low + 3),
                ],
                projections=["extendedprice"],
                aggregates=[Aggregate("extendedprice", "sum")],
                description=(
                    f"orderdate in [{start}, {start + window}) and quantity/discount filters"
                ),
            )
        )
    return queries
