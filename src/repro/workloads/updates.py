"""Update workload generation (for the cracking-updates experiments)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.workloads.generators import RangeQuery, WorkloadSpec, random_workload


@dataclass(frozen=True)
class UpdateOperation:
    """One operation of a mixed query/update stream."""

    kind: str  # "query" | "insert" | "delete"
    query: Optional[RangeQuery] = None
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("query", "insert", "delete"):
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind == "query" and self.query is None:
            raise ValueError("query operations need a RangeQuery")
        if self.kind == "insert" and self.value is None:
            raise ValueError("insert operations need a value")


def mixed_update_workload(
    spec: WorkloadSpec,
    updates_per_query: float = 0.1,
    insert_fraction: float = 0.5,
    integer_values: bool = True,
) -> List[UpdateOperation]:
    """Interleave range queries with inserts and deletes.

    ``updates_per_query`` is the expected number of update operations issued
    between consecutive queries (the SIGMOD 2007 experiments use ratios from
    one update per hundred queries up to ten updates per query);
    ``insert_fraction`` splits updates between inserts and deletes.  Delete
    operations carry no target row (the harness picks a victim from the rows
    currently visible) — only their position in the stream matters here.
    """
    if updates_per_query < 0:
        raise ValueError("updates_per_query must be non-negative")
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must be in [0, 1]")
    rng = np.random.default_rng(spec.seed + 1)
    queries = random_workload(spec)
    stream: List[UpdateOperation] = []
    for query in queries:
        update_count = rng.poisson(updates_per_query)
        for _ in range(update_count):
            if rng.random() < insert_fraction:
                value = rng.uniform(spec.domain_low, spec.domain_high)
                if integer_values:
                    value = float(int(value))
                stream.append(UpdateOperation(kind="insert", value=value))
            else:
                stream.append(UpdateOperation(kind="delete"))
        stream.append(UpdateOperation(kind="query", query=query))
    return stream


def split_operations(
    stream: Sequence[UpdateOperation],
) -> dict:
    """Summary counts of a mixed stream (used by tests and reports)."""
    summary = {"query": 0, "insert": 0, "delete": 0}
    for operation in stream:
        summary[operation.kind] += 1
    return summary
