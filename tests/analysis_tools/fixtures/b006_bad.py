# ruff: noqa: B006  (fixture file: the gate skips it, the test strips this line)
"""B006 fixture: every default below is mutable and shared across calls."""

from typing import Dict, List


def append_row(row: int, rows: List[int] = []) -> List[int]:  # expect[B006]
    rows.append(row)
    return rows


def register(name: str, registry: Dict[str, int] = {}) -> Dict[str, int]:  # expect[B006]
    registry[name] = len(registry)
    return registry


def tag(value: int, *, seen=set()) -> bool:  # expect[B006]
    fresh = value not in seen
    seen.add(value)
    return fresh


def collect(n: int, out=list()) -> List[int]:  # expect[B006]
    out.extend(range(n))
    return out


def squares(limit: int, cache=[i * i for i in range(4)]) -> List[int]:  # expect[B006]
    return cache[:limit]


take = lambda item, bag=[]: bag + [item]  # noqa: E731  # expect[B006]
