"""B006 fixture: the clean counterparts — None defaults and immutables."""

from typing import Dict, List, Optional, Tuple


def append_row(row: int, rows: Optional[List[int]] = None) -> List[int]:
    if rows is None:
        rows = []
    rows.append(row)
    return rows


def register(name: str, registry: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    if registry is None:
        registry = {}
    registry[name] = len(registry)
    return registry


def tag(value: int, *, seen: Optional[set] = None) -> bool:
    if seen is None:
        seen = set()
    fresh = value not in seen
    seen.add(value)
    return fresh


def window(values: List[int], bounds: Tuple[int, int] = (0, 10)) -> List[int]:
    low, high = bounds
    return values[low:high]


def label(item: int, suffix: str = "", scale: float = 1.0) -> str:
    return f"{item * scale}{suffix}"


def build(n: int, factory=list) -> List[int]:
    # passing the *callable* (not a call) is the idiomatic escape hatch
    return factory(range(n))
