"""Fixture: PF001 — object allocation inside a per-row loop.

Every flagged line boxes a fresh Python object per element; hot kernels
must preallocate outside the loop or operate on typed buffers.
"""


def gather(values, rowids, low, high):
    out = []
    for position in range(len(values)):
        value = values[position]
        if low <= value < high:
            pair = [value, rowids[position]]  # expect[PF001]
            row = {"value": value}  # expect[PF001]
            tag = lambda item: item  # expect[PF001]
            boxed = list(pair)  # expect[PF001]
            doubled = [v + v for v in pair]  # expect[PF001]
            out.append((row, tag, boxed, doubled))  # expect[PF001]
    return out
