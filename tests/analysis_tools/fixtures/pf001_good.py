"""Fixture: PF001 clean — buffers built once, parallel lists in the loop."""


def gather(values, rowids, low, high):
    out_values = []
    out_rowids = []
    for position in range(len(values)):
        value = values[position]
        if low <= value < high:
            out_values.append(value)
            out_rowids.append(rowids[position])
    return out_values, out_rowids
