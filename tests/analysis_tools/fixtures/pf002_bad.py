"""Fixture: PF002 — the same attribute chain loaded repeatedly per iteration."""


class Cracker:
    def __init__(self, values, base):
        self.values = values
        self.base = base

    def count_in_range(self, low, high):
        total = 0
        for position in range(1000):
            if low <= self.values[position]:  # expect[PF002]
                if self.values[position] < high:
                    total += 1
        return total

    def span(self, pieces):
        width = 0
        for piece in pieces:
            width += self.base.offset + piece  # expect[PF002]
            width -= self.base.offset % 2
        return width
