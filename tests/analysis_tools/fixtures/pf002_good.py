"""Fixture: PF002 clean — attribute chains hoisted to locals before the loop."""


class Cracker:
    def __init__(self, values, base):
        self.values = values
        self.base = base

    def count_in_range(self, low, high):
        values = self.values
        total = 0
        for position in range(1000):
            if low <= values[position] < high:
                total += 1
        return total

    def span(self, pieces):
        offset = self.base.offset
        width = 0
        for piece in pieces:
            width += offset + piece
            width -= offset % 2
        return width
